"""Tracing and visualisation: recording what happened, building Gantt charts.

The paper's Gantt-chart figure ("Dark portions denote computations, light
portions denote communications") is regenerated from the
:class:`~repro.tracing.recorder.Recorder` attached to an MSG environment:
every completed computation and communication is recorded as an interval on
its host's row, and :class:`~repro.tracing.gantt.GanttChart` turns those
intervals into a printable/exportable chart.
"""

from repro.tracing.recorder import Interval, Recorder
from repro.tracing.gantt import GanttChart
from repro.tracing.export import intervals_to_csv, render_ascii_gantt

__all__ = ["Interval", "Recorder", "GanttChart", "intervals_to_csv",
           "render_ascii_gantt"]
