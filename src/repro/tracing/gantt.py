"""Gantt-chart model built from recorded intervals.

Reproduces the paper's execution figure: one row per host, dark blocks for
computations, light blocks for communications, idle gaps in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.tracing.recorder import Interval, Recorder

__all__ = ["GanttChart", "GanttRow"]

#: Categories considered "computation" (dark) vs "communication" (light).
COMPUTE_CATEGORIES = frozenset({"compute", "exec"})
COMM_CATEGORIES = frozenset({"comm", "comm-send", "comm-recv"})


@dataclass
class GanttRow:
    """One row of the chart: a host and its busy intervals."""

    name: str
    intervals: List[Interval]

    def busy_time(self) -> float:
        """Total busy time (computations + communications)."""
        return sum(i.duration for i in self.intervals)

    def compute_time(self) -> float:
        return sum(i.duration for i in self.intervals
                   if i.category in COMPUTE_CATEGORIES)

    def comm_time(self) -> float:
        return sum(i.duration for i in self.intervals
                   if i.category in COMM_CATEGORIES)

    def idle_time(self, horizon: float) -> float:
        """Idle time up to ``horizon``, merging overlapping busy intervals."""
        merged = _merge_intervals([(i.start, i.end) for i in self.intervals])
        busy = sum(end - start for start, end in merged)
        return max(0.0, horizon - busy)


def _merge_intervals(spans: Sequence[Tuple[float, float]]
                     ) -> List[Tuple[float, float]]:
    if not spans:
        return []
    ordered = sorted(spans)
    merged = [list(ordered[0])]
    for start, end in ordered[1:]:
        if start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return [(s, e) for s, e in merged]


class GanttChart:
    """A per-host timeline of computations and communications."""

    def __init__(self, recorder: Recorder,
                 rows: Optional[Sequence[str]] = None) -> None:
        self.recorder = recorder
        row_names = list(rows) if rows is not None else recorder.rows()
        self.rows: List[GanttRow] = [
            GanttRow(name, recorder.by_row(name)) for name in row_names
        ]

    @property
    def horizon(self) -> float:
        """End date of the chart (the simulation makespan)."""
        return self.recorder.makespan()

    def row(self, name: str) -> GanttRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-row totals: compute, communication and idle time."""
        horizon = self.horizon
        return {
            row.name: {
                "compute": row.compute_time(),
                "comm": row.comm_time(),
                "idle": row.idle_time(horizon),
            }
            for row in self.rows
        }

    def overlapping_comms(self) -> int:
        """Number of pairs of communications that overlap in time.

        The paper's figure highlights that *"concurrent communications
        interfere with each other as the TCP flows share network links"*;
        this metric makes that interference measurable in tests.
        """
        comms = sorted((i for i in self.recorder.intervals
                        if i.category in COMM_CATEGORIES),
                       key=lambda i: i.start)
        count = 0
        for idx, first in enumerate(comms):
            for second in comms[idx + 1:]:
                if second.start >= first.end:
                    break
                count += 1
        return count
