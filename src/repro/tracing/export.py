"""Exporting traces: CSV rows and ASCII-art Gantt charts."""

from __future__ import annotations

import io
from typing import List, Optional, Sequence

from repro.tracing.gantt import COMM_CATEGORIES, COMPUTE_CATEGORIES, GanttChart
from repro.tracing.recorder import Interval, Recorder

__all__ = ["intervals_to_csv", "render_ascii_gantt"]


def intervals_to_csv(recorder: Recorder) -> str:
    """Serialise recorded intervals as CSV text (row,category,start,end,label)."""
    out = io.StringIO()
    out.write("row,category,start,end,label\n")
    for interval in sorted(recorder.intervals,
                           key=lambda i: (i.row, i.start, i.end)):
        label = interval.label.replace(",", ";")
        out.write(f"{interval.row},{interval.category},"
                  f"{interval.start:.9g},{interval.end:.9g},{label}\n")
    return out.getvalue()


def render_ascii_gantt(chart: GanttChart, width: int = 72,
                       compute_char: str = "#", comm_char: str = "-",
                       idle_char: str = ".") -> str:
    """Render the Gantt chart as fixed-width ASCII art.

    ``#`` marks computation (the paper's dark portions), ``-`` marks
    communication (light portions) and ``.`` marks idle time.
    """
    horizon = chart.horizon
    if horizon <= 0 or width <= 0:
        return ""
    lines: List[str] = []
    name_width = max((len(row.name) for row in chart.rows), default=0)
    for row in chart.rows:
        cells = [idle_char] * width
        # paint communications first so computations overwrite them
        for interval in row.intervals:
            char: Optional[str] = None
            if interval.category in COMM_CATEGORIES:
                char = comm_char
            if char is None:
                continue
            _paint(cells, interval, horizon, width, char)
        for interval in row.intervals:
            if interval.category in COMPUTE_CATEGORIES:
                _paint(cells, interval, horizon, width, compute_char)
        lines.append(f"{row.name.ljust(name_width)} |{''.join(cells)}|")
    scale = (f"{'':{name_width}} |0{'':{max(0, width - 2)}}"
             f"{horizon:.3g}|")
    lines.append(scale)
    return "\n".join(lines)


def _paint(cells: List[str], interval: Interval, horizon: float, width: int,
           char: str) -> None:
    start_idx = int(interval.start / horizon * width)
    end_idx = int(interval.end / horizon * width)
    start_idx = max(0, min(width - 1, start_idx))
    end_idx = max(start_idx, min(width - 1, end_idx if end_idx > start_idx
                                 else start_idx))
    for idx in range(start_idx, end_idx + 1):
        cells[idx] = char
