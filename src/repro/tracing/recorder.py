"""Event recorder: collects timed intervals during a simulation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

__all__ = ["Interval", "Recorder"]


@dataclass(frozen=True)
class Interval:
    """One recorded interval on a row (usually a host) of the timeline."""

    row: str
    category: str
    start: float
    end: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("interval end must be >= start")

    @property
    def duration(self) -> float:
        return self.end - self.start


class Recorder:
    """Collects intervals and point events during a simulation.

    Attach an instance to an :class:`~repro.s4u.engine.Engine`
    (``Engine(platform, recorder=recorder)``) and it will receive one
    interval per completed computation and communication.
    """

    def __init__(self) -> None:
        self.intervals: List[Interval] = []
        self.events: List[Dict] = []

    # -- recording -------------------------------------------------------------------
    def record_interval(self, row: str, category: str, start: float,
                        end: float, label: str = "") -> Interval:
        """Record one interval; returns it for convenience."""
        interval = Interval(row=row, category=category, start=start, end=end,
                            label=label)
        self.intervals.append(interval)
        return interval

    def record_event(self, row: str, category: str, time: float,
                     label: str = "") -> None:
        """Record a zero-duration point event."""
        self.events.append({"row": row, "category": category, "time": time,
                            "label": label})

    # -- querying ---------------------------------------------------------------------
    def rows(self) -> List[str]:
        """Sorted list of rows that received at least one interval."""
        return sorted({i.row for i in self.intervals})

    def by_row(self, row: str) -> List[Interval]:
        """Intervals of one row, ordered by start time."""
        return sorted((i for i in self.intervals if i.row == row),
                      key=lambda i: (i.start, i.end))

    def by_category(self, category: str) -> List[Interval]:
        """All intervals of one category, ordered by start time."""
        return sorted((i for i in self.intervals if i.category == category),
                      key=lambda i: (i.start, i.end))

    def total_time(self, row: str, category: Optional[str] = None) -> float:
        """Total busy time of a row (optionally restricted to a category)."""
        return sum(i.duration for i in self.intervals
                   if i.row == row and (category is None
                                        or i.category == category))

    def makespan(self) -> float:
        """Date of the last recorded interval end (0 when empty)."""
        if not self.intervals:
            return 0.0
        return max(i.end for i in self.intervals)

    def clear(self) -> None:
        """Drop everything recorded so far."""
        self.intervals.clear()
        self.events.clear()

    def __len__(self) -> int:
        return len(self.intervals)
