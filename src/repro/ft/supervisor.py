"""Supervision trees: declarative restart of actor fleets.

A :class:`Supervisor` owns a set of children described by
:class:`ChildSpec` entries and restarts them when they die, Erlang/OTP
style, built purely on the public surface — ``Actor.on_exit`` for death
notification, ``engine.add_actor`` for the respawn, the host-state
observer for parking children whose host is down.  Two strategies:

* ``one_for_one`` — a dead child is restarted alone;
* ``all_for_one`` — a dead child takes its siblings down with it and the
  whole group is restarted in declaration order.

Restart intensity is bounded: more than ``max_restarts`` restart cycles
within a sliding ``window`` escalates — the supervisor kills its
remaining children and dies *failed*, so a parent supervisor (a
supervisor is itself supervisable via :meth:`Supervisor.as_child`) sees
an ordinary child failure and applies its own policy.  Trees nest.

Everything here runs in kernel context (``on_exit`` callbacks, timer
callbacks, host-state observers) and therefore never blocks; the
supervisor actor itself just parks on ``suspend()`` until the tree
reaches a terminal state.  All callbacks are named picklable objects and
children are keyed by spec name — never by ``id()`` — so a mid-churn
``engine.snapshot()`` restores a live tree bit-identically.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.s4u import this_actor

__all__ = ["ChildSpec", "Supervisor"]

#: Valid ``ChildSpec.restart`` values.
RESTART_POLICIES = ("permanent", "transient", "temporary")
#: Valid ``Supervisor`` strategies.
STRATEGIES = ("one_for_one", "all_for_one")


class ChildSpec:
    """Recipe for one supervised child actor.

    ``restart`` selects when the child is respawned after it dies:
    ``permanent`` always, ``transient`` only when it *failed* (was killed
    or lost its host — a normal return is final), ``temporary`` never.
    """

    def __init__(self, name: str, host: str, func: Callable, *args,
                 restart: str = "permanent", daemon: bool = True,
                 **kwargs) -> None:
        if restart not in RESTART_POLICIES:
            raise ValueError(f"unknown restart policy {restart!r}; "
                             f"pick one of {RESTART_POLICIES}")
        self.name = name
        self.host = host if isinstance(host, str) else host.name
        self.func = func
        self.args = args
        self.kwargs = kwargs
        self.restart = restart
        self.daemon = daemon

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ChildSpec({self.name!r}, host={self.host!r}, "
                f"restart={self.restart!r})")


class _ChildExit:
    """Picklable ``on_exit`` hook: routes a child death to its supervisor."""

    __slots__ = ("supervisor", "child")

    def __init__(self, supervisor: "Supervisor", child: str) -> None:
        self.supervisor = supervisor
        self.child = child

    def __call__(self, failed: bool) -> None:
        self.supervisor._child_exited(self.child, failed)


class _DeadlineStop:
    """Picklable timer callback: shuts the tree down at its deadline."""

    __slots__ = ("supervisor",)

    def __init__(self, supervisor: "Supervisor") -> None:
        self.supervisor = supervisor

    def __call__(self) -> None:
        self.supervisor._deadline_fired()


def _supervisor_body(actor, sup: "Supervisor"):
    """The supervisor actor: spawn the children, then park until done.

    All real work happens in kernel context (exit hooks, host observers,
    the deadline timer); the body only exists so the tree has a liveness
    anchor — a non-daemon supervisor keeps ``engine.run()`` going while
    any child may still be restarted.
    """
    sup._attach(actor)
    while not sup._done:
        yield this_actor.suspend()


class Supervisor:
    """Restart controller for a group of child actors.

    Parameters
    ----------
    engine:
        The :class:`~repro.s4u.engine.Engine` to deploy on.
    children:
        The :class:`ChildSpec` entries, in declaration order (the
        ``all_for_one`` restart order).
    strategy:
        ``one_for_one`` or ``all_for_one``.
    max_restarts / window:
        Intensity bound: strictly more than ``max_restarts`` restart
        cycles within ``window`` simulated seconds escalates.
    host:
        Host of the supervisor actor itself (should be reliable).
    daemon:
        Spawn the supervisor actor as a daemon.  Keep the default
        (non-daemon) when the supervisor is the run's liveness anchor.
    deadline:
        Optional absolute simulated date at which the tree is shut down
        (children killed, supervisor returns) — the bounded-horizon knob
        for churn studies whose permanent children never finish.
    on_escalate:
        Optional ``cb(supervisor)`` invoked (kernel context, no simcalls)
        when the intensity bound trips, before the children are killed.
    """

    def __init__(self, engine, children: Iterable[ChildSpec], *,
                 strategy: str = "one_for_one", max_restarts: int = 3,
                 window: float = 5.0, name: str = "supervisor",
                 host: Optional[str] = None, daemon: bool = False,
                 deadline: Optional[float] = None,
                 on_escalate: Optional[Callable[["Supervisor"], None]] = None
                 ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; "
                             f"pick one of {STRATEGIES}")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if window <= 0:
            raise ValueError("window must be > 0")
        self.engine = engine
        self.specs: List[ChildSpec] = list(children)
        if not self.specs:
            raise ValueError("a supervisor needs at least one child")
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("child names must be unique")
        self._spec_by_name: Dict[str, ChildSpec] = {
            spec.name: spec for spec in self.specs}
        self.strategy = strategy
        self.max_restarts = int(max_restarts)
        self.window = float(window)
        self.name = name
        self.host = host if (host is None or isinstance(host, str)) \
            else host.name
        self.daemon = daemon
        self.deadline = deadline
        self.on_escalate = on_escalate
        #: Chronological ``(date, event, child_name)`` log; events are
        #: ``start``, ``restart``, ``park``, ``finish``, ``escalate``,
        #: ``deadline`` and ``stop`` — the replay fingerprint of a tree.
        self.events: List[Tuple[float, str, str]] = []
        self.restarts = 0
        self.escalated = False
        self.timed_out = False
        self._live: Dict[str, "object"] = {}     # name -> Actor
        self._parked: Dict[str, List[str]] = {}  # host name -> child names
        self._finished: set = set()              # names done for good
        self._restart_dates: List[float] = []
        self._actor = None
        self._deadline_timer = None
        self._done = False
        self._stopping = False
        self._suppress = False  # we are killing children ourselves
        self._observing = False

    # ------------------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------------------
    def start(self, host: Optional[str] = None) -> "Supervisor":
        """Spawn the supervisor actor (which spawns the children)."""
        if self._actor is not None:
            raise RuntimeError("the supervisor was already started")
        where = host or self.host
        if where is None:
            raise ValueError("no host given for the supervisor actor")
        self.host = where
        self.engine.add_actor(self.name, where, _supervisor_body, self,
                              daemon=self.daemon)
        return self

    def as_child(self, restart: str = "transient") -> ChildSpec:
        """This tree as a child spec for a parent supervisor (nesting).

        An escalated subtree dies *failed*, so the parent sees a regular
        child failure and applies its own strategy/intensity to it.
        """
        if self.host is None:
            raise ValueError("set the supervisor host before nesting")
        return ChildSpec(self.name, self.host, _supervisor_body, self,
                         restart=restart, daemon=self.daemon)

    def stop(self) -> None:
        """Shut the tree down: kill the children, let the actor return."""
        if not self._done:
            self._shutdown("stop")

    def child(self, name: str):
        """The currently live actor of child ``name`` (or None)."""
        return self._live.get(name)

    @property
    def live_children(self) -> List[str]:
        return sorted(self._live)

    @property
    def parked_children(self) -> List[str]:
        return sorted(n for names in self._parked.values() for n in names)

    @property
    def done(self) -> bool:
        return self._done

    # ------------------------------------------------------------------------------
    # kernel-context machinery
    # ------------------------------------------------------------------------------
    def _attach(self, actor) -> None:
        # A nested tree restarted by its parent re-enters here with the
        # same Supervisor object: reset the terminal state so the new
        # incarnation starts clean (the events log keeps accumulating).
        self._actor = actor
        self._done = False
        self._stopping = False
        self._suppress = False
        self._restart_dates = []
        self._finished = set()
        self._live = {}
        self._parked = {}
        if not self._observing:
            self._observing = True
            self.engine.on_host_state_change(self._host_state)
        if self.deadline is not None:
            self._deadline_timer = self.engine.timers.schedule(
                self.deadline, _DeadlineStop(self))
        for spec in self.specs:
            self._spawn(spec, "start")

    def _spawn(self, spec: ChildSpec, event: str) -> None:
        if not self.engine.host(spec.host).is_on:
            self._park(spec)
            return
        child = self.engine.add_actor(spec.name, spec.host, spec.func,
                                      *spec.args, daemon=spec.daemon,
                                      **spec.kwargs)
        child.on_exit(_ChildExit(self, spec.name))
        self._live[spec.name] = child
        self.events.append((self.engine.now, event, spec.name))
        if event == "restart":
            self.restarts += 1

    def _park(self, spec: ChildSpec) -> None:
        names = self._parked.setdefault(spec.host, [])
        if spec.name not in names:
            names.append(spec.name)
            self.events.append((self.engine.now, "park", spec.name))

    def _host_state(self, host, is_on: bool) -> None:
        """Respawn children parked on a host that just came back up."""
        if not is_on or self._done or self._stopping:
            return
        for name in self._parked.pop(host.name, []):
            self._spawn(self._spec_by_name[name], "restart")

    def _child_exited(self, name: str, failed: bool) -> None:
        self._live.pop(name, None)
        if (self._done or self._stopping or self._suppress
                or self.engine.is_tearing_down):
            return
        spec = self._spec_by_name[name]
        wants_restart = (spec.restart == "permanent"
                         or (spec.restart == "transient" and failed))
        if not wants_restart:
            self._finished.add(name)
            self.events.append((self.engine.now, "finish", name))
            self._check_done()
            return
        if (self.strategy == "one_for_one"
                and not self.engine.host(spec.host).is_on):
            # The child died with its host: park it for the host-up
            # respawn without spending an intensity token — host churn
            # mirrors ``auto_restart``, which is unbounded by design.
            self._park(spec)
            return
        if not self._spend_restart_token():
            self._escalate()
            return
        if self.strategy == "all_for_one":
            self._suppress = True
            try:
                for other in list(self._live.values()):
                    self.engine.kill_actor(other)
            finally:
                self._suppress = False
            self._live.clear()
            self._parked.clear()
            for sibling in self.specs:
                if sibling.name not in self._finished:
                    self._spawn(sibling, "restart")
        else:
            self._spawn(spec, "restart")
        self._check_done()

    def _spend_restart_token(self) -> bool:
        """One token per restart cycle; False when the bound is tripped."""
        now = self.engine.now
        cutoff = now - self.window
        self._restart_dates = [d for d in self._restart_dates if d > cutoff]
        if len(self._restart_dates) >= self.max_restarts:
            return False
        self._restart_dates.append(now)
        return True

    def _escalate(self) -> None:
        self.escalated = True
        self.events.append((self.engine.now, "escalate", ""))
        if self.on_escalate is not None:
            self.on_escalate(self)
        self._shutdown(None)
        # Die failed, so a parent supervisor sees a child failure (its
        # own policy decides whether the subtree is rebuilt).
        if self._actor is not None and self._actor.is_alive:
            self.engine.kill_actor(self._actor)

    def _deadline_fired(self) -> None:
        if self._done or self._stopping:
            return
        self.timed_out = True
        self._shutdown("deadline")

    def _shutdown(self, event: Optional[str]) -> None:
        self._stopping = True
        if event is not None:
            self.events.append((self.engine.now, event, ""))
        self._suppress = True
        try:
            for child in list(self._live.values()):
                if child.is_alive:
                    self.engine.kill_actor(child)
        finally:
            self._suppress = False
        self._live.clear()
        self._parked.clear()
        self._finish()

    def _check_done(self) -> None:
        if self._live or any(self._parked.values()):
            return
        if len(self._finished) == len(self.specs):
            self._finish()

    def _finish(self) -> None:
        self._done = True
        if self._deadline_timer is not None:
            self._deadline_timer.cancel()
            self._deadline_timer = None
        if self._actor is not None and self._actor.is_alive:
            self.engine.resume_actor(self._actor)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Supervisor({self.name!r}, strategy={self.strategy!r}, "
                f"live={self.live_children}, restarts={self.restarts}, "
                f"escalated={self.escalated})")
