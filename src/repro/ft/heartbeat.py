"""Heartbeat failure detection: suspect/alive events from missing beats.

A :class:`HeartbeatMonitor` deploys one *emitter* actor per watched host
(a daemon with ``auto_restart``, so it resumes beating the moment its
host reboots) and one *monitor* actor on a reliable host.  Emitters send
seq-numbered heartbeats to the monitor's mailbox every ``period``; the
monitor scans its deadline table and marks a host **suspect** once no
beat arrived for more than ``timeout``, and **alive** again on the next
beat received from it.

Accuracy contract (fuzz-tested against the ground-truth
``on_host_state_change`` events in ``tests/test_failure_fuzz.py``): the
detector never suspects a host that has been continuously up for longer
than ``period + timeout`` since its last down-event — a live host beats
every ``period``, so at most one in-flight beat can be lost to an
unluckily timed scan, which ``timeout >= 2 * period`` absorbs.  All
suspect/alive flip dates are a deterministic function of the simulation,
so a seeded churn run replays them bit-identically.

Events can also be forwarded to a mailbox (``notify_mailbox``) as
``(kind, host_name, date)`` detached sends, so other actors — e.g. the
at-least-once resubmitter of :class:`~repro.replay.cluster.ClusterReplay`
— can consume them without sharing callbacks.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import SimTimeoutError, TransferFailureError
from repro.s4u import this_actor

__all__ = ["HeartbeatMonitor"]


# -- actor bodies (module-level so snapshotted engines can name them) ----------

def _hb_emitter(actor, monitor: "HeartbeatMonitor"):
    """Beat every ``period``; a reboot restarts the body (seq from 0)."""
    box = actor.engine.mailbox(monitor.beat_mailbox)
    seq = 0
    while True:
        yield box.put_async((actor.host.name, seq),
                            size=monitor.payload_size, detached=True)
        seq += 1
        yield this_actor.sleep_for(monitor.period)


def _hb_monitor(actor, monitor: "HeartbeatMonitor"):
    """Collect beats, scan deadlines, fire/forward suspect-alive flips."""
    engine = actor.engine
    box = engine.mailbox(monitor.beat_mailbox)
    notify = (engine.mailbox(monitor.notify_mailbox)
              if monitor.notify_mailbox else None)
    monitor._arm(actor.now)
    while True:
        flips: List[Tuple[str, str]] = []
        try:
            name, seq = yield box.get(timeout=monitor.check_period)
            flips += monitor._record(name, seq, actor.now)
        except (SimTimeoutError, TransferFailureError):
            pass  # no beat this scan window (or one died mid-transfer)
        flips += monitor._scan(actor.now)
        if notify is not None:
            for kind, host_name in flips:
                yield notify.put_async((kind, host_name, actor.now),
                                       size=monitor.payload_size,
                                       detached=True)


class HeartbeatMonitor:
    """Mailbox-heartbeat failure detector over a set of hosts.

    Parameters
    ----------
    engine:
        The :class:`~repro.s4u.engine.Engine` to deploy on.
    hosts:
        Names of the hosts to watch (an emitter actor is spawned on each).
    monitor_host:
        The host running the monitor actor.  It must be reliable: a
        churned monitor is itself a failure study, not a detector.
    period:
        Emitter beat interval, simulated seconds.
    timeout:
        Freshness deadline: a host is suspected once no beat arrived for
        more than this.  Must be at least ``2 * period`` so one beat lost
        to an unluckily timed receive cannot falsely suspect a live host.
    check_period:
        Monitor scan interval (defaults to ``period``).
    on_suspect / on_alive:
        Optional callbacks ``cb(host_name, date)`` fired from the monitor
        actor's context at each flip.
    notify_mailbox:
        Optional mailbox name to forward ``(kind, host_name, date)``
        events to (detached sends).
    """

    def __init__(self, engine, hosts: Iterable[str], monitor_host: str,
                 period: float = 0.5, timeout: Optional[float] = None,
                 check_period: Optional[float] = None,
                 on_suspect: Optional[Callable[[str, float], None]] = None,
                 on_alive: Optional[Callable[[str, float], None]] = None,
                 notify_mailbox: Optional[str] = None,
                 payload_size: float = 64.0, name: str = "hb") -> None:
        if period <= 0:
            raise ValueError("period must be > 0")
        self.engine = engine
        self.hosts: List[str] = [h if isinstance(h, str) else h.name
                                 for h in hosts]
        if not self.hosts:
            raise ValueError("a heartbeat monitor needs at least one host")
        self.monitor_host = monitor_host
        self.period = float(period)
        self.timeout = float(timeout) if timeout is not None else 2.5 * period
        if self.timeout < 2.0 * self.period:
            raise ValueError(
                "timeout must be >= 2 * period (one lost beat must not "
                "falsely suspect a live host)")
        self.check_period = (float(check_period) if check_period is not None
                             else self.period)
        self.on_suspect = on_suspect
        self.on_alive = on_alive
        self.notify_mailbox = notify_mailbox
        self.payload_size = float(payload_size)
        self.name = name
        self.beat_mailbox = f"{name}:beats"
        #: Chronological ``(date, kind, host_name)`` flip log — the replay
        #: fingerprint of a detector run (kind is "suspect" or "alive").
        self.events: List[Tuple[float, str, str]] = []
        #: Currently suspected hosts, name -> suspicion date.
        self.suspected: Dict[str, float] = {}
        self._last_seen: Dict[str, float] = {}
        self._last_seq: Dict[str, int] = {}
        self.beats = 0
        self.stale_beats = 0
        self._started = False

    # ------------------------------------------------------------------------------
    def start(self) -> "HeartbeatMonitor":
        """Spawn the emitters and the monitor actor; returns self."""
        if self._started:
            raise RuntimeError("the monitor was already started")
        self._started = True
        for host in self.hosts:
            self.engine.add_actor(f"{self.name}:emit:{host}", host,
                                  _hb_emitter, self, daemon=True,
                                  auto_restart=True)
        self.engine.add_actor(f"{self.name}:monitor", self.monitor_host,
                              _hb_monitor, self, daemon=True)
        return self

    def is_suspected(self, host_name: str) -> bool:
        return host_name in self.suspected

    # -- monitor-side bookkeeping (called from the monitor actor) ------------------
    def _arm(self, now: float) -> None:
        for host in self.hosts:
            self._last_seen.setdefault(host, now)

    def _record(self, name: str, seq: int, now: float
                ) -> List[Tuple[str, str]]:
        self.beats += 1
        if seq <= self._last_seq.get(name, -1):
            # A rebooted emitter restarts at 0: stale numbering, but the
            # beat itself is live evidence all the same.
            self.stale_beats += 1
        self._last_seq[name] = seq
        self._last_seen[name] = now
        if name in self.suspected:
            del self.suspected[name]
            self.events.append((now, "alive", name))
            if self.on_alive is not None:
                self.on_alive(name, now)
            return [("alive", name)]
        return []

    def _scan(self, now: float) -> List[Tuple[str, str]]:
        flips: List[Tuple[str, str]] = []
        for name in self.hosts:
            if (name not in self.suspected
                    and now - self._last_seen[name] > self.timeout):
                self.suspected[name] = now
                self.events.append((now, "suspect", name))
                if self.on_suspect is not None:
                    self.on_suspect(name, now)
                flips.append(("suspect", name))
        return flips

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"HeartbeatMonitor(hosts={len(self.hosts)}, "
                f"period={self.period}, timeout={self.timeout}, "
                f"suspected={sorted(self.suspected)})")
