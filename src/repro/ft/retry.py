"""Seeded retry policies: bounded attempts, exponential backoff, jitter.

A :class:`RetryPolicy` wraps any activity-producing callable executed
inside an actor body.  Like :class:`~repro.s4u.failure.FailureInjector`,
it owns a private seeded :class:`random.Random` for its backoff jitter,
so a fixed seed replays bit-identical retry dates — and the RNG pickles
with its full Mersenne state, so a policy restored from an
``engine.snapshot()`` blob continues the exact jitter stream the
never-snapshotted run would have drawn.

Usage, inside a generator actor body::

    policy = RetryPolicy(max_attempts=4, base_delay=0.2, seed=7)

    def body(actor):
        # retry an exec until it survives the churn
        yield from policy.run(lambda: actor.exec_async(1e9))
        # retry a blocking receive (per-call timeouts stay the caller's
        # business for blocking calls; async activities use the policy's
        # per-attempt timeout)
        job = yield from policy.run(lambda: inbox.get(timeout=0.5))

The callable may return an :class:`~repro.s4u.activity.Activity` (async
calls — the policy ``wait()``-s it with ``attempt_timeout``), a blocking
simcall (its result is returned as-is) or a plain value.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple, Type

from repro.exceptions import (
    CancelledError,
    HostFailureError,
    SimGridError,
    SimTimeoutError,
    TransferFailureError,
)
from repro.kernel.simcall import Simcall
from repro.s4u import this_actor
from repro.s4u.activity import Activity

__all__ = ["RetryError", "RetryPolicy", "DEFAULT_RETRY_ON"]

#: The activity failures a policy retries by default: everything the
#: kernel raises when a host/link/peer died or a wait timed out.
DEFAULT_RETRY_ON: Tuple[Type[BaseException], ...] = (
    HostFailureError, TransferFailureError, SimTimeoutError, CancelledError)


class RetryError(SimGridError):
    """Every attempt of a :meth:`RetryPolicy.run` failed; the last
    underlying failure is chained as ``__cause__``."""


class RetryPolicy:
    """Deterministic bounded retry with seeded exponential backoff.

    Parameters
    ----------
    max_attempts:
        Total attempts (first try included); must be >= 1.
    base_delay / factor / max_delay:
        The backoff before attempt ``k+1`` is
        ``min(max_delay, base_delay * factor**(k-1))``, then jittered.
    jitter:
        Relative jitter amplitude in ``[0, 1)``: the delay is scaled by a
        seeded uniform draw from ``[1-jitter, 1+jitter]``.  ``0`` disables
        jitter (and draws nothing from the RNG, keeping seed streams
        comparable across configurations).
    seed:
        Seed of the private RNG; the whole jitter stream is a pure
        function of it.
    attempt_timeout:
        Per-attempt ``wait()`` timeout applied when the factory returned
        an async :class:`Activity`; ``None`` waits forever.
    retry_on:
        Exception types that trigger a retry (``DEFAULT_RETRY_ON`` — the
        kernel's failure exceptions).  Anything else propagates
        immediately.
    """

    def __init__(self, max_attempts: int = 3, base_delay: float = 0.1,
                 factor: float = 2.0, max_delay: float = 60.0,
                 jitter: float = 0.5, seed: int = 0,
                 attempt_timeout: Optional[float] = None,
                 retry_on: Tuple[Type[BaseException], ...] = DEFAULT_RETRY_ON
                 ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.factor = float(factor)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.seed = seed
        self.attempt_timeout = attempt_timeout
        self.retry_on = tuple(retry_on)
        self._rng = random.Random(seed)
        #: Counters: attempts started, retries performed (= backoffs
        #: slept), calls that exhausted every attempt.
        self.attempts = 0
        self.retries = 0
        self.giveups = 0

    def backoff(self, attempt: int) -> float:
        """The (jittered) delay slept after failed attempt ``attempt``.

        Draws from the policy's seeded RNG when jitter is enabled, so
        calling it advances the deterministic jitter stream.
        """
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        delay = min(self.max_delay,
                    self.base_delay * self.factor ** (attempt - 1))
        if self.jitter and delay > 0:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    def run(self, factory):
        """Drive ``factory`` with retries; use as ``yield from policy.run(f)``.

        ``factory()`` is invoked once per attempt and may return an async
        :class:`Activity` (the policy waits on it with
        ``attempt_timeout``), a blocking simcall (the call's own result
        is returned) or a plain value.  On a ``retry_on`` failure the
        policy sleeps the seeded backoff and tries again; when the last
        attempt fails, :class:`RetryError` is raised with the final
        failure chained.
        """
        last: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            self.attempts += 1
            try:
                outcome = factory()
                if isinstance(outcome, Simcall):
                    outcome = yield outcome
                if isinstance(outcome, Activity):
                    outcome = yield outcome.wait(timeout=self.attempt_timeout)
                return outcome
            except self.retry_on as exc:
                last = exc
                if attempt == self.max_attempts:
                    break
                self.retries += 1
                delay = self.backoff(attempt)
                if delay > 0:
                    yield this_actor.sleep_for(delay)
        self.giveups += 1
        raise RetryError(
            f"gave up after {self.max_attempts} attempts: "
            f"{type(last).__name__}: {last}") from last

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RetryPolicy(max_attempts={self.max_attempts}, "
                f"seed={self.seed}, attempts={self.attempts}, "
                f"retries={self.retries}, giveups={self.giveups})")
