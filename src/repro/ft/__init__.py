"""repro.ft — fault-tolerance primitives on the public s4u surface.

The failure model (PR 4) made injectors, auto-restart and resource state
observers first-class; this package layers the *policies* the paper's
fault-tolerance studies need on top, as reusable building blocks instead
of per-frontend copies:

* :class:`~repro.ft.retry.RetryPolicy` — seeded exponential backoff with
  deterministic jitter around any activity-producing callable
  (``result = yield from policy.run(lambda: actor.exec_async(1e9))``);
* :class:`~repro.ft.heartbeat.HeartbeatMonitor` — a monitor actor
  exchanging seq-numbered heartbeats over mailboxes, firing
  suspect/alive callbacks consistent with the ground-truth
  ``on_host_state_change`` events;
* :class:`~repro.ft.supervisor.Supervisor` /
  :class:`~repro.ft.supervisor.ChildSpec` — supervision trees with
  one-for-one / all-for-one restart strategies and bounded restart
  intensity, built purely on ``on_exit`` + ``add_actor``.

Everything is deterministic under a fixed seed and follows the PR-8
snapshot rules: no lambdas in timer callbacks, no ``id()``-keyed state,
module-level actor bodies — so the same dates replay bit-identically on
the flat, sharded and parallel-solve kernels and across an
``engine.snapshot()`` / ``Engine.restore()`` round-trip.
"""

from repro.ft.heartbeat import HeartbeatMonitor
from repro.ft.retry import RetryError, RetryPolicy
from repro.ft.supervisor import ChildSpec, Supervisor

__all__ = [
    "ChildSpec",
    "HeartbeatMonitor",
    "RetryError",
    "RetryPolicy",
    "Supervisor",
]
