"""A packet-level network simulator (the NS2 / GTNetS stand-in).

The paper's validation experiment compares SimGrid's fluid MaxMin model to
the NS2 and GTNetS packet-level simulators.  Those are external C++
projects, so this package provides a from-scratch packet-level simulator
with the ingredients that matter for the comparison:

* store-and-forward links with finite drop-tail queues, serialisation time
  and propagation latency (:mod:`repro.packet.nic`);
* per-flow TCP Reno congestion control — slow start, congestion avoidance,
  duplicate-ACK fast retransmit, retransmission timeouts
  (:mod:`repro.packet.tcp`);
* a :class:`~repro.packet.simulator.PacketSimulator` facade that consumes
  the very same :class:`~repro.platform.platform.Platform` and flow list as
  the fluid model, so experiment E1 runs both on identical inputs.
"""

from repro.packet.event_queue import EventQueue
from repro.packet.nic import DropTailQueue, PacketLink
from repro.packet.simulator import FlowResult, FlowSpec, PacketSimulator
from repro.packet.tcp import TcpFlow, TcpConfig

__all__ = [
    "DropTailQueue",
    "EventQueue",
    "FlowResult",
    "FlowSpec",
    "PacketLink",
    "PacketSimulator",
    "TcpConfig",
    "TcpFlow",
]
