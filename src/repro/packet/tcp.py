"""TCP Reno flows for the packet-level simulator.

Implements the congestion-control behaviour that makes packet-level
simulators (NS2, GTNetS) share bandwidth the way real TCP does:

* **slow start**: the congestion window doubles every RTT until it reaches
  the slow-start threshold;
* **congestion avoidance**: the window then grows by one segment per RTT;
* **fast retransmit / fast recovery**: three duplicate ACKs trigger a
  retransmission and halve the window;
* **retransmission timeout**: silence for an RTO collapses the window to
  one segment and re-enters slow start.

The receiver sends one cumulative ACK per received segment (no delayed
ACKs, like NS2's default ``Agent/TCP`` + ``Agent/TCPSink``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.packet.event_queue import EventQueue, ScheduledEvent
from repro.packet.nic import PacketLink

__all__ = ["Packet", "TcpConfig", "TcpFlow"]


class Packet:
    """A data segment or an ACK travelling through the network."""

    __slots__ = ("flow", "seq", "size", "is_ack", "ack_seq",
                 "pending_delivery", "path", "hop")

    def __init__(self, flow: "TcpFlow", seq: int, size: float,
                 is_ack: bool = False, ack_seq: int = 0) -> None:
        self.flow = flow
        self.seq = seq
        self.size = size
        self.is_ack = is_ack
        self.ack_seq = ack_seq
        self.pending_delivery: Optional[Callable[["Packet"], None]] = None
        self.path: Sequence[PacketLink] = ()
        self.hop = 0


@dataclass
class TcpConfig:
    """Tunable TCP parameters (NS2-like defaults)."""

    segment_size: float = 1500.0        # bytes per data segment
    ack_size: float = 40.0              # bytes per ACK
    initial_cwnd: float = 2.0           # segments
    initial_ssthresh: float = 64.0      # segments
    max_cwnd: float = 10000.0           # segments (window clamp)
    min_rto: float = 0.2                # seconds
    rto_alpha: float = 0.125            # RTT EWMA weight (RFC 6298)
    rto_beta: float = 0.25              # RTT variance EWMA weight
    dupack_threshold: int = 3

    def __post_init__(self) -> None:
        if self.segment_size <= 0:
            raise ValueError("segment_size must be > 0")
        if self.initial_cwnd < 1:
            raise ValueError("initial_cwnd must be >= 1")


class TcpFlow:
    """One TCP Reno transfer of ``total_bytes`` along a fixed path."""

    def __init__(self, flow_id: int, events: EventQueue,
                 forward_path: Sequence[PacketLink],
                 reverse_path: Sequence[PacketLink],
                 total_bytes: float,
                 config: Optional[TcpConfig] = None,
                 on_complete: Optional[Callable[["TcpFlow"], None]] = None
                 ) -> None:
        self.id = flow_id
        self.events = events
        self.forward_path = list(forward_path)
        self.reverse_path = list(reverse_path)
        self.config = config or TcpConfig()
        self.total_segments = max(1, int(math.ceil(
            total_bytes / self.config.segment_size)))
        self.total_bytes = total_bytes
        self.on_complete = on_complete

        # sender state
        self.cwnd = float(self.config.initial_cwnd)
        self.ssthresh = float(self.config.initial_ssthresh)
        self.next_seq = 0                 # next new segment to send
        self.highest_acked = -1           # last cumulatively acked segment
        self.dupacks = 0
        self.in_fast_recovery = False
        self.retransmit_seq: Optional[int] = None
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.completed = False

        # receiver state
        self.received: set = set()
        self.next_expected = 0

        # RTT estimation / RTO
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.rto = 1.0
        self._rto_event: Optional[ScheduledEvent] = None
        self._send_times: Dict[int, float] = {}

        # statistics
        self.retransmissions = 0
        self.timeouts = 0

    # -- public ------------------------------------------------------------------------
    def start(self) -> None:
        """Begin transmitting."""
        self.start_time = self.events.now
        self._send_window()

    @property
    def inflight(self) -> int:
        return self.next_seq - (self.highest_acked + 1)

    def throughput(self) -> float:
        """Average throughput in bytes/s (0 until the flow completes)."""
        if self.finish_time is None or self.start_time is None:
            return 0.0
        duration = self.finish_time - self.start_time
        return self.total_bytes / duration if duration > 0 else math.inf

    # -- sending -----------------------------------------------------------------------
    def _send_window(self) -> None:
        while (not self.completed
               and self.next_seq < self.total_segments
               and self.inflight < int(self.cwnd)):
            self._send_segment(self.next_seq)
            self.next_seq += 1
        self._arm_rto()

    def _send_segment(self, seq: int, retransmission: bool = False) -> None:
        packet = Packet(self, seq, self.config.segment_size)
        packet.path = self.forward_path
        packet.hop = 0
        if retransmission:
            self.retransmissions += 1
        else:
            self._send_times[seq] = self.events.now
        self._forward(packet)

    def _forward(self, packet: Packet) -> None:
        """Send ``packet`` over the next hop of its path."""
        if packet.hop >= len(packet.path):
            # reached the destination
            if packet.is_ack:
                self._on_ack(packet)
            else:
                self._on_data_arrival(packet)
            return
        link = packet.path[packet.hop]
        packet.hop += 1
        link.transmit(packet, self._forward)

    # -- receiver side -------------------------------------------------------------------
    def _on_data_arrival(self, packet: Packet) -> None:
        self.received.add(packet.seq)
        while self.next_expected in self.received:
            self.next_expected += 1
        ack = Packet(self, packet.seq, self.config.ack_size, is_ack=True,
                     ack_seq=self.next_expected - 1)
        ack.path = self.reverse_path
        ack.hop = 0
        self._forward(ack)

    # -- sender side: ACK processing -------------------------------------------------------
    def _on_ack(self, ack: Packet) -> None:
        if self.completed:
            return
        acked = ack.ack_seq
        if acked > self.highest_acked:
            newly = acked - self.highest_acked
            self.highest_acked = acked
            self.dupacks = 0
            self._update_rtt(acked)
            if self.in_fast_recovery:
                self.cwnd = self.ssthresh
                self.in_fast_recovery = False
            else:
                for _ in range(newly):
                    if self.cwnd < self.ssthresh:
                        self.cwnd += 1.0                       # slow start
                    else:
                        self.cwnd += 1.0 / max(1.0, self.cwnd)  # cong. avoid
            self.cwnd = min(self.cwnd, self.config.max_cwnd)
            if self.highest_acked >= self.total_segments - 1:
                self._complete()
                return
            self._send_window()
        else:
            # duplicate ACK
            self.dupacks += 1
            if (self.dupacks == self.config.dupack_threshold
                    and not self.in_fast_recovery):
                # fast retransmit + fast recovery
                self.ssthresh = max(2.0, self.cwnd / 2.0)
                self.cwnd = self.ssthresh + self.config.dupack_threshold
                self.in_fast_recovery = True
                self._send_segment(self.highest_acked + 1, retransmission=True)
            elif self.in_fast_recovery:
                self.cwnd += 1.0
                self._send_window()

    def _update_rtt(self, acked_seq: int) -> None:
        sent_at = self._send_times.pop(acked_seq, None)
        if sent_at is None:
            return
        sample = self.events.now - sent_at
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            alpha, beta = self.config.rto_alpha, self.config.rto_beta
            self.rttvar = (1 - beta) * self.rttvar + beta * abs(self.srtt - sample)
            self.srtt = (1 - alpha) * self.srtt + alpha * sample
        self.rto = max(self.config.min_rto, self.srtt + 4 * self.rttvar)

    # -- timeouts ----------------------------------------------------------------------------
    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        if self.completed or self.inflight <= 0:
            self._rto_event = None
            return
        self._rto_event = self.events.schedule(self.rto, self._on_timeout)

    def _on_timeout(self) -> None:
        if self.completed or self.inflight <= 0:
            return
        self.timeouts += 1
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = float(self.config.initial_cwnd)
        self.in_fast_recovery = False
        self.dupacks = 0
        self.rto = min(60.0, self.rto * 2.0)  # exponential backoff
        # Go-back-N from the first unacked segment.
        self.next_seq = self.highest_acked + 1
        self._send_segment(self.next_seq, retransmission=True)
        self.next_seq += 1
        self._arm_rto()

    # -- completion ---------------------------------------------------------------------------
    def _complete(self) -> None:
        self.completed = True
        self.finish_time = self.events.now
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        if self.on_complete is not None:
            self.on_complete(self)
