"""The packet-level simulator facade.

Takes the same inputs as the fluid model — a
:class:`~repro.platform.platform.Platform` and a list of flows — and runs
them through the packet-level TCP machinery, so experiment E1 can compare
the two simulators on identical topologies and workloads (exactly what the
paper does against NS2 and GTNetS).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.packet.event_queue import EventQueue
from repro.packet.nic import PacketLink
from repro.packet.tcp import TcpConfig, TcpFlow
from repro.platform.platform import Platform

__all__ = ["FlowSpec", "FlowResult", "PacketSimulator"]


@dataclass
class FlowSpec:
    """One transfer to simulate: ``size`` bytes from ``src`` to ``dst``."""

    src: str
    dst: str
    size: float
    flow_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("flow size must be > 0")


@dataclass
class FlowResult:
    """Outcome of one simulated flow."""

    flow_id: int
    src: str
    dst: str
    size: float
    start_time: float
    finish_time: float
    retransmissions: int
    timeouts: int

    @property
    def duration(self) -> float:
        return self.finish_time - self.start_time

    @property
    def throughput(self) -> float:
        """Average transfer rate in bytes/s."""
        return self.size / self.duration if self.duration > 0 else math.inf


class PacketSimulator:
    """Runs TCP flows at packet granularity over a platform description."""

    def __init__(self, platform: Platform,
                 tcp_config: Optional[TcpConfig] = None,
                 queue_capacity: int = 100) -> None:
        self.platform = platform
        self.tcp_config = tcp_config or TcpConfig()
        self.queue_capacity = queue_capacity
        self.events = EventQueue()
        # One PacketLink per (platform link, direction).
        self._links: Dict[Tuple[str, str], PacketLink] = {}
        self.flows: List[TcpFlow] = []
        self._results: List[FlowResult] = []
        self._specs: Dict[int, FlowSpec] = {}

    # -- construction ------------------------------------------------------------------
    def _link_for(self, name: str, direction: str) -> PacketLink:
        key = (name, direction)
        link = self._links.get(key)
        if link is None:
            spec = self.platform.links[name]
            link = PacketLink(f"{name}:{direction}", spec.bandwidth,
                              spec.latency, self.events,
                              queue_capacity=self.queue_capacity)
            self._links[key] = link
        return link

    def _paths_for(self, src: str, dst: str
                   ) -> Tuple[List[PacketLink], List[PacketLink]]:
        forward_names = self.platform.route_links(src, dst)
        reverse_names = self.platform.route_links(dst, src)
        forward = [self._link_for(n, "fwd") for n in forward_names]
        # The reverse path uses the opposite direction of each link so data
        # and ACKs never compete for the same transmitter (full duplex).
        reverse = [self._link_for(n, "rev") for n in reverse_names]
        return forward, reverse

    def add_flow(self, spec: FlowSpec) -> TcpFlow:
        """Register a flow (it starts when :meth:`run` is called)."""
        flow_id = spec.flow_id if spec.flow_id is not None else len(self.flows)
        forward, reverse = self._paths_for(spec.src, spec.dst)
        flow = TcpFlow(flow_id, self.events, forward, reverse, spec.size,
                       config=self.tcp_config,
                       on_complete=self._on_flow_complete)
        self.flows.append(flow)
        self._specs[flow.id] = spec
        return flow

    def _on_flow_complete(self, flow: TcpFlow) -> None:
        spec = self._specs[flow.id]
        self._results.append(FlowResult(
            flow_id=flow.id, src=spec.src, dst=spec.dst, size=spec.size,
            start_time=flow.start_time or 0.0,
            finish_time=flow.finish_time or 0.0,
            retransmissions=flow.retransmissions,
            timeouts=flow.timeouts))

    # -- running ------------------------------------------------------------------------
    def run(self, flows: Optional[Sequence[FlowSpec]] = None,
            max_time: float = math.inf,
            max_events: Optional[int] = None) -> List[FlowResult]:
        """Start every flow at t=0 and run until all complete.

        Returns the per-flow results ordered by flow id.
        """
        if flows is not None:
            for spec in flows:
                self.add_flow(spec)
        if not self.flows:
            return []
        for flow in self.flows:
            flow.start()
        self.events.run(until=max_time, max_events=max_events)
        return sorted(self._results, key=lambda r: r.flow_id)

    @property
    def results(self) -> List[FlowResult]:
        """Results of the flows completed so far."""
        return sorted(self._results, key=lambda r: r.flow_id)

    def link_statistics(self) -> Dict[str, Dict[str, float]]:
        """Per-direction link statistics (bytes sent, packets, drops)."""
        stats: Dict[str, Dict[str, float]] = {}
        for (name, direction), link in self._links.items():
            stats[f"{name}:{direction}"] = {
                "bytes": link.bytes_sent,
                "packets": float(link.packets_sent),
                "drops": float(link.queue.dropped),
            }
        return stats
