"""The discrete-event core of the packet-level simulator."""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, List, Optional, Tuple

__all__ = ["EventQueue", "ScheduledEvent"]


class ScheduledEvent:
    """Handle on a scheduled event; allows cancellation (lazy deletion)."""

    __slots__ = ("time", "callback", "cancelled")

    def __init__(self, time: float, callback: Callable[[], None]) -> None:
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """A time-ordered queue of callbacks with a simulated clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, ScheduledEvent]] = []
        self._seq = itertools.count()

    def schedule(self, delay: float, callback: Callable[[], None]
                 ) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be >= 0")
        event = ScheduledEvent(self.now + delay, callback)
        heapq.heappush(self._heap, (event.time, next(self._seq), event))
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]
                    ) -> ScheduledEvent:
        """Schedule ``callback`` at an absolute date (>= now)."""
        if time < self.now - 1e-12:
            raise ValueError("cannot schedule in the past")
        event = ScheduledEvent(max(time, self.now), callback)
        heapq.heappush(self._heap, (event.time, next(self._seq), event))
        return event

    def empty(self) -> bool:
        return not any(not evt.cancelled for _, _, evt in self._heap)

    def run(self, until: float = math.inf,
            max_events: Optional[int] = None) -> int:
        """Process events in order until the queue drains or ``until``.

        Returns the number of events processed.
        """
        processed = 0
        while self._heap:
            time, _, event = self._heap[0]
            if time > until:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = time
            event.callback()
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        return processed
