"""Packet-level links: drop-tail queues, serialisation and propagation.

Each :class:`PacketLink` is unidirectional (the simulator creates one per
direction from each platform link) and models the three classic components
of packet forwarding:

* a finite FIFO **drop-tail queue** — packets arriving when the queue is
  full are dropped (this is what creates TCP losses and therefore the
  congestion signal);
* **serialisation**: a packet of ``size`` bytes occupies the transmitter
  for ``size / bandwidth`` seconds;
* **propagation**: after serialisation the packet takes ``latency`` seconds
  to reach the other end.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, TYPE_CHECKING

from repro.packet.event_queue import EventQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.packet.tcp import Packet

__all__ = ["DropTailQueue", "PacketLink"]


class DropTailQueue:
    """Bounded FIFO of packets; arrivals beyond the capacity are dropped."""

    def __init__(self, capacity_packets: int = 100) -> None:
        if capacity_packets < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity_packets
        self._queue: Deque["Packet"] = deque()
        self.dropped = 0
        self.enqueued = 0

    def push(self, packet: "Packet") -> bool:
        """Try to enqueue; returns False (and counts a drop) when full."""
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            return False
        self._queue.append(packet)
        self.enqueued += 1
        return True

    def pop(self) -> Optional["Packet"]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class PacketLink:
    """One unidirectional link of the packet-level network."""

    def __init__(self, name: str, bandwidth: float, latency: float,
                 events: EventQueue, queue_capacity: int = 100) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be > 0")
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.name = name
        self.bandwidth = bandwidth
        self.latency = latency
        self.events = events
        self.queue = DropTailQueue(queue_capacity)
        self.busy = False
        self.bytes_sent = 0.0
        self.packets_sent = 0

    def transmit(self, packet: "Packet",
                 deliver: Callable[["Packet"], None]) -> None:
        """Hand ``packet`` to this link; ``deliver`` runs at the far end."""
        packet.pending_delivery = deliver
        if self.busy:
            self.queue.push(packet)  # dropped silently when full
            return
        self._start_transmission(packet)

    def _start_transmission(self, packet: "Packet") -> None:
        self.busy = True
        tx_time = packet.size / self.bandwidth
        self.bytes_sent += packet.size
        self.packets_sent += 1
        # Delivery happens after serialisation + propagation; the link is
        # free for the next packet as soon as serialisation ends.
        self.events.schedule(tx_time, lambda: self._end_serialisation(packet))

    def _end_serialisation(self, packet: "Packet") -> None:
        deliver = packet.pending_delivery
        self.events.schedule(self.latency, lambda: deliver(packet))
        nxt = self.queue.pop()
        if nxt is None:
            self.busy = False
        else:
            self._start_transmission(nxt)

    @property
    def utilisation_bytes(self) -> float:
        """Total payload bytes pushed through the link so far."""
        return self.bytes_sent
