"""Network topology discovery from pairwise measurements.

The paper lists *"Network topology discovery"* as a Grid Application
Toolbox work-in-progress.  The classic technique (ENV, pathchar-style
tools) is: measure pairwise bandwidths, then cluster hosts whose mutual
bandwidth is much higher than their bandwidth to the rest of the world —
those belong to the same site/LAN — and expose the resulting two-level
structure (sites joined by slower wide-area paths).

:class:`TopologyInference` implements that clustering over a bandwidth
matrix, wherever it comes from (AMOK measurements in simulation, real
measurements, or the platform description itself in tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["TopologyInference", "InferredTopology"]


@dataclass
class InferredTopology:
    """Result of the clustering: host groups plus inter-group bandwidths."""

    clusters: List[List[str]]
    intra_bandwidth: Dict[int, float]
    inter_bandwidth: Dict[Tuple[int, int], float]

    def cluster_of(self, host: str) -> int:
        """Index of the cluster containing ``host``."""
        for idx, members in enumerate(self.clusters):
            if host in members:
                return idx
        raise KeyError(host)

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)


class TopologyInference:
    """Cluster hosts by bandwidth locality.

    Parameters
    ----------
    ratio_threshold:
        Two hosts are placed in the same cluster when their pairwise
        bandwidth is at least ``ratio_threshold`` times the *global median*
        pairwise bandwidth.  2.0 works well for LAN-vs-WAN separations.
    """

    def __init__(self, ratio_threshold: float = 2.0) -> None:
        if ratio_threshold <= 1.0:
            raise ValueError("ratio_threshold must be > 1")
        self.ratio_threshold = ratio_threshold

    def infer(self, hosts: Sequence[str],
              bandwidth: Dict[Tuple[str, str], float]) -> InferredTopology:
        """Cluster ``hosts`` given symmetric pairwise bandwidths."""
        hosts = list(hosts)
        if not hosts:
            return InferredTopology([], {}, {})

        def bw(a: str, b: str) -> float:
            if (a, b) in bandwidth:
                return bandwidth[(a, b)]
            return bandwidth.get((b, a), 0.0)

        values = sorted(bw(a, b) for i, a in enumerate(hosts)
                        for b in hosts[i + 1:])
        if not values:
            return InferredTopology([list(hosts)], {0: float("inf")}, {})
        median = values[len(values) // 2]
        threshold = median * self.ratio_threshold

        # Union-find on "fast" pairs.
        parent = {h: h for h in hosts}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: str, b: str) -> None:
            parent[find(a)] = find(b)

        for i, a in enumerate(hosts):
            for b in hosts[i + 1:]:
                if bw(a, b) >= threshold:
                    union(a, b)

        groups: Dict[str, List[str]] = {}
        for host in hosts:
            groups.setdefault(find(host), []).append(host)
        clusters = [sorted(members) for members in groups.values()]
        clusters.sort(key=lambda members: members[0])

        intra: Dict[int, float] = {}
        inter: Dict[Tuple[int, int], float] = {}
        for idx, members in enumerate(clusters):
            pairs = [bw(a, b) for i, a in enumerate(members)
                     for b in members[i + 1:]]
            intra[idx] = (sum(pairs) / len(pairs)) if pairs else float("inf")
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                pairs = [bw(a, b) for a in clusters[i] for b in clusters[j]]
                inter[(i, j)] = sum(pairs) / len(pairs) if pairs else 0.0
        return InferredTopology(clusters, intra, inter)
