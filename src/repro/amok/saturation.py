"""Link saturation experiments.

AMOK's saturation module floods a path with traffic while another pair of
processes measures the bandwidth they still obtain — that is how the
original tool detects which measurement pairs *interfere*, i.e. share a
bottleneck.  The simulated version reproduces this on an s4u engine: the
saturating flow and the measured flow run as actors exchanging raw payloads
with explicit sizes, and the drop in measured bandwidth quantifies the
interference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.platform.platform import Platform
from repro.s4u.engine import Engine

__all__ = ["SaturationExperiment", "SaturationResult"]


@dataclass
class SaturationResult:
    """Bandwidths measured without and with the saturating flow."""

    measured_pair: Tuple[str, str]
    saturating_pair: Tuple[str, str]
    baseline_bandwidth: float
    saturated_bandwidth: float

    @property
    def interference_ratio(self) -> float:
        """1.0 = no interference, 0.5 = the measured flow lost half its rate."""
        if self.baseline_bandwidth <= 0:
            return 1.0
        return self.saturated_bandwidth / self.baseline_bandwidth

    @property
    def shares_bottleneck(self) -> bool:
        """Heuristic: a >20% rate drop means the two pairs share a link."""
        return self.interference_ratio < 0.8


class SaturationExperiment:
    """Measure how much a saturating flow degrades a measured flow."""

    def __init__(self, probe_bytes: float = 10e6,
                 saturation_bytes: float = 1e9) -> None:
        self.probe_bytes = probe_bytes
        self.saturation_bytes = saturation_bytes

    def _timed_transfer(self, platform_factory, src: str, dst: str,
                        saturate: Optional[Tuple[str, str]] = None) -> float:
        """Simulate one probe transfer; returns its duration."""
        platform = platform_factory()
        engine = Engine(platform)
        finished: Dict[str, float] = {}

        def sender(actor, mailbox, size, label):
            yield engine.mailbox(mailbox).put(label, size=size, name=label)

        def receiver(actor, mailbox):
            start = actor.now
            yield engine.mailbox(mailbox).get()
            finished["duration"] = actor.now - start

        def sink(actor, mailbox):
            yield engine.mailbox(mailbox).get()

        engine.add_actor("probe-send", src, sender, "amok:probe",
                         self.probe_bytes, "probe")
        engine.add_actor("probe-recv", dst, receiver, "amok:probe")
        if saturate is not None:
            sat_src, sat_dst = saturate
            engine.add_actor("sat-send", sat_src, sender, "amok:sat",
                             self.saturation_bytes, "saturation", daemon=True)
            engine.add_actor("sat-recv", sat_dst, sink, "amok:sat",
                             daemon=True)
        engine.run()
        return finished.get("duration", float("inf"))

    def run(self, platform_factory, measured_pair: Tuple[str, str],
            saturating_pair: Tuple[str, str]) -> SaturationResult:
        """Run the baseline and the saturated probe on fresh platforms.

        ``platform_factory`` is a zero-argument callable returning a *new*
        :class:`Platform` each time (platforms cannot be realized twice).
        """
        baseline_duration = self._timed_transfer(platform_factory,
                                                 *measured_pair)
        saturated_duration = self._timed_transfer(platform_factory,
                                                  *measured_pair,
                                                  saturate=saturating_pair)
        return SaturationResult(
            measured_pair=measured_pair,
            saturating_pair=saturating_pair,
            baseline_bandwidth=self.probe_bytes / baseline_duration,
            saturated_bandwidth=self.probe_bytes / saturated_duration,
        )
