"""Active bandwidth and latency measurement between GRAS processes.

The classic AMOK bandwidth module: a *source* process sends a small probe
(latency estimate) and then a large message (bandwidth estimate) to a
*sink* process that echoes acknowledgements.  Because it is written against
the GRAS API it runs both in simulation and in real-life mode; in
simulation the measured values converge to the platform description, which
tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.gras.datadesc import ArrayDesc, ScalarDesc, declare_struct
from repro.gras.process import GrasProcess
from repro.gras.socket import GrasSocket

__all__ = ["BandwidthMeter", "MeasurementResult"]

#: Message types used by the bandwidth meter protocol.
MSG_PROBE = "amok:bw:probe"
MSG_PROBE_ACK = "amok:bw:probe-ack"
MSG_PAYLOAD = "amok:bw:payload"
MSG_PAYLOAD_ACK = "amok:bw:payload-ack"
MSG_QUIT = "amok:bw:quit"


@dataclass
class MeasurementResult:
    """One bandwidth/latency measurement between two endpoints."""

    peer: str
    latency: float            # seconds (one-way estimate: RTT / 2)
    bandwidth: float          # bytes per second
    probe_rtt: float
    payload_bytes: float
    payload_duration: float


def _declare_messages(proc: GrasProcess) -> None:
    proc.msgtype_declare(MSG_PROBE, "int")
    proc.msgtype_declare(MSG_PROBE_ACK, "int")
    # the payload message carries a byte array of configurable size
    proc.msgtype_declare(MSG_PAYLOAD, ArrayDesc(ScalarDesc("uint8")))
    proc.msgtype_declare(MSG_PAYLOAD_ACK, "int")
    proc.msgtype_declare(MSG_QUIT, "int")


class BandwidthMeter:
    """The two halves of the AMOK bandwidth measurement protocol."""

    def __init__(self, probe_bytes: int = 64,
                 payload_bytes: int = 1_000_000,
                 timeout: float = 120.0) -> None:
        if payload_bytes <= 0:
            raise ValueError("payload_bytes must be > 0")
        self.probe_bytes = probe_bytes
        self.payload_bytes = payload_bytes
        self.timeout = timeout

    # -- sink side ------------------------------------------------------------------------
    def sink(self, proc: GrasProcess, port: int,
             max_measurements: Optional[int] = None) -> None:
        """Run the echo side: acknowledge probes and payloads until QUIT."""
        _declare_messages(proc)
        proc.socket_server(port)
        # One dispatch table serves probes, payloads and quit messages for
        # the whole lifetime of the sink.
        done = {"quit": False}

        def on_probe(p, source, payload):
            p.msg_send(p.socket_client(source.host, source.port),
                       MSG_PROBE_ACK, payload)

        def on_payload(p, source, payload):
            p.msg_send(p.socket_client(source.host, source.port),
                       MSG_PAYLOAD_ACK, len(payload) if payload else 0)

        def on_quit(p, source, payload):
            done["quit"] = True

        proc.cb_register(MSG_PROBE, on_probe)
        proc.cb_register(MSG_PAYLOAD, on_payload)
        proc.cb_register(MSG_QUIT, on_quit)
        handled = 0
        while True:
            if not proc.msg_handle(self.timeout):
                return
            handled += 1
            if done["quit"]:
                return
            if max_measurements is not None and handled >= 2 * max_measurements:
                return

    # -- source side -----------------------------------------------------------------------
    def measure(self, proc: GrasProcess, peer_host: str, port: int,
                reply_port: int) -> MeasurementResult:
        """Measure latency and bandwidth towards ``peer_host:port``."""
        _declare_messages(proc)
        proc.socket_server(reply_port)
        peer = proc.socket_client(peer_host, port)

        # latency: RTT of a tiny probe
        t0 = proc.os_time()
        proc.msg_send(peer, MSG_PROBE, self.probe_bytes)
        proc.msg_wait(self.timeout, MSG_PROBE_ACK)
        probe_rtt = proc.os_time() - t0

        # bandwidth: one large payload, acknowledged
        payload = [0] * self.payload_bytes
        t1 = proc.os_time()
        proc.msg_send(peer, MSG_PAYLOAD, payload)
        proc.msg_wait(self.timeout, MSG_PAYLOAD_ACK)
        duration = proc.os_time() - t1

        # subtract the round-trip latency contribution, then one-way time
        transfer_time = max(duration - probe_rtt, 1e-9)
        bandwidth = self.payload_bytes / transfer_time
        return MeasurementResult(
            peer=f"{peer_host}:{port}",
            latency=probe_rtt / 2.0,
            bandwidth=bandwidth,
            probe_rtt=probe_rtt,
            payload_bytes=float(self.payload_bytes),
            payload_duration=duration,
        )

    def stop_sink(self, proc: GrasProcess, peer_host: str, port: int) -> None:
        """Tell a sink to terminate."""
        _declare_messages(proc)
        proc.msg_send(proc.socket_client(peer_host, port), MSG_QUIT, 0)
