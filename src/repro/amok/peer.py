"""Peer management: the lightweight registry AMOK services share."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["Peer", "PeerManager"]


@dataclass(frozen=True)
class Peer:
    """One known peer: a GRAS endpoint plus free-form metadata."""

    name: str
    host: str
    port: int
    metadata: tuple = ()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


class PeerManager:
    """A registry of peers, keyed by name.

    AMOK's monitoring services use it to track which sensors exist and
    where they listen; the topology-inference module iterates over it to
    pick measurement pairs.
    """

    def __init__(self) -> None:
        self._peers: Dict[str, Peer] = {}

    def register(self, name: str, host: str, port: int,
                 **metadata: str) -> Peer:
        """Add (or replace) a peer."""
        peer = Peer(name=name, host=host, port=port,
                    metadata=tuple(sorted(metadata.items())))
        self._peers[name] = peer
        return peer

    def unregister(self, name: str) -> None:
        self._peers.pop(name, None)

    def get(self, name: str) -> Optional[Peer]:
        return self._peers.get(name)

    def peers(self) -> List[Peer]:
        """All peers, sorted by name."""
        return [self._peers[name] for name in sorted(self._peers)]

    def pairs(self) -> Iterator[tuple]:
        """Every unordered pair of distinct peers (measurement schedule)."""
        ordered = self.peers()
        for i, first in enumerate(ordered):
            for second in ordered[i + 1:]:
                yield first, second

    def __len__(self) -> int:
        return len(self._peers)

    def __contains__(self, name: str) -> bool:
        return name in self._peers
