"""AMOK — the Grid Application Toolbox (paper section "Grid Application Toolbox").

The paper lists the toolbox built on top of GRAS: *"Platform monitoring
(CPU and network)"* and *"Network topology discovery"*.  This package
provides those services as GRAS applications that run, like any GRAS code,
either in simulation or in real-life mode:

* :mod:`repro.amok.bandwidth` — active bandwidth and RTT measurement
  between two GRAS processes;
* :mod:`repro.amok.saturation` — saturate a path to measure interference;
* :mod:`repro.amok.peer` — lightweight peer registry;
* :mod:`repro.amok.topology` — infer the platform interconnect structure
  from pairwise bandwidth measurements (clustering hosts that share a
  bottleneck).
"""

from repro.amok.bandwidth import BandwidthMeter, MeasurementResult
from repro.amok.peer import Peer, PeerManager
from repro.amok.saturation import SaturationExperiment
from repro.amok.topology import TopologyInference

__all__ = [
    "BandwidthMeter",
    "MeasurementResult",
    "Peer",
    "PeerManager",
    "SaturationExperiment",
    "TopologyInference",
]
