"""Version information for the SimGrid HPDC'06 reproduction."""

__version__ = "1.0.0"

#: The paper this repository reproduces.
PAPER = (
    "A. Legrand, M. Quinson, H. Casanova, K. Fujiwara: "
    "The SimGrid Project - Simulation and Deployment of Distributed "
    "Applications, HPDC 2006"
)
