"""MSG hosts — the very same class as :class:`repro.s4u.host.Host`.

``m_host_t`` of the paper and the S4U ``Host`` are one object: it exposes
the host speed and load, carries the per-host "data" dictionary
applications can hang state on, and lists the processes (actors) currently
running on it.
"""

from repro.s4u.host import Host

__all__ = ["Host"]
