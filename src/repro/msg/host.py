"""MSG hosts: the machines simulated processes run on."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.platform.platform import HostSpec
from repro.surf.cpu import CpuResource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.msg.environment import Environment
    from repro.msg.process import Process

__all__ = ["Host"]


class Host:
    """Facade over a platform host and its realized CPU resource.

    Mirrors ``m_host_t``: it exposes the host speed and load, carries the
    per-host "data" dictionary applications can hang state on, and lists the
    processes currently running on it.
    """

    def __init__(self, env: "Environment", spec: HostSpec,
                 cpu: CpuResource) -> None:
        self._env = env
        self.spec = spec
        self.cpu = cpu
        self.name = spec.name
        #: Application-visible storage (``MSG_host_set_data``).
        self.data: Dict[str, Any] = {}
        self.processes: List["Process"] = []

    # -- static information ---------------------------------------------------------
    @property
    def speed(self) -> float:
        """Peak speed of one core, in flop/s."""
        return self.cpu.speed

    @property
    def cores(self) -> int:
        return self.cpu.cores

    @property
    def is_on(self) -> bool:
        """Whether the host is currently up."""
        return self.cpu.is_on

    @property
    def available_speed(self) -> float:
        """Current speed of one core, after the availability trace."""
        return self.cpu.core_speed

    # -- dynamic information ----------------------------------------------------------
    @property
    def load(self) -> int:
        """Number of computations currently running on this host."""
        return sum(1 for action in self._env.engine.cpu_model.running
                   if action.cpu is self.cpu and action.is_running())

    def process_count(self) -> int:
        """Number of simulated processes currently hosted here."""
        return len(self.processes)

    # -- control ----------------------------------------------------------------------
    def turn_off(self) -> None:
        """Fail the host: running activities fail, its processes are killed."""
        self._env.fail_host(self)

    def turn_on(self) -> None:
        """Bring a failed host back up (does not restart processes)."""
        self._env.restore_host(self)

    def compute_duration(self, flops: float) -> float:
        """Time to compute ``flops`` alone on this host at full availability."""
        return flops / self.speed if self.speed > 0 else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host(name={self.name!r}, speed={self.speed:g})"
