"""MSG mailboxes (the paper's "ports") — now the S4U mailbox.

``MSG_task_put(task, host, PORT_22)`` / ``MSG_task_get(&task, PORT_22)``
pair up through a mailbox.  The MSG helpers derive the canonical name
``"<host>:<port>"`` so the paper's port-based examples translate directly,
but any string can be used as a mailbox name (which is what GRAS and SMPI
do internally).  The implementation — queue mechanics and the async
``put/get`` API — lives in :mod:`repro.s4u.mailbox`.
"""

from repro.s4u.mailbox import Mailbox

__all__ = ["Mailbox"]
