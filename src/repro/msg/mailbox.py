"""Mailboxes (the paper's "ports"): rendezvous points for task exchange.

``MSG_task_put(task, host, PORT_22)`` / ``MSG_task_get(&task, PORT_22)``
pair up through a mailbox.  In this reproduction a mailbox is named; the
MSG helpers derive the canonical name ``"<host>:<port>"`` so the paper's
port-based examples translate directly, but any string can be used as a
mailbox name (which is what GRAS and SMPI do internally).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.msg.activity import CommActivity

__all__ = ["Mailbox"]


class Mailbox:
    """A named rendezvous point between senders and receivers."""

    def __init__(self, name: str) -> None:
        self.name = name
        #: Communications posted by senders, waiting for a receiver.
        self.pending_sends: Deque["CommActivity"] = deque()
        #: Communications posted by receivers, waiting for a sender.
        self.pending_recvs: Deque["CommActivity"] = deque()

    # -- matching ----------------------------------------------------------------------
    def pop_matching_send(self) -> Optional["CommActivity"]:
        """Oldest sender-side communication still waiting, if any."""
        while self.pending_sends:
            comm = self.pending_sends[0]
            if comm.is_pending():
                return self.pending_sends.popleft()
            self.pending_sends.popleft()
        return None

    def pop_matching_recv(self) -> Optional["CommActivity"]:
        """Oldest receiver-side communication still waiting, if any."""
        while self.pending_recvs:
            comm = self.pending_recvs[0]
            if comm.is_pending():
                return self.pending_recvs.popleft()
            self.pending_recvs.popleft()
        return None

    def post_send(self, comm: "CommActivity") -> None:
        """Queue a sender-side communication until a receiver shows up."""
        self.pending_sends.append(comm)

    def post_recv(self, comm: "CommActivity") -> None:
        """Queue a receiver-side communication until a sender shows up."""
        self.pending_recvs.append(comm)

    def discard(self, comm: "CommActivity") -> None:
        """Remove a communication from the queues (timeout, kill, cancel)."""
        try:
            self.pending_sends.remove(comm)
        except ValueError:
            pass
        try:
            self.pending_recvs.remove(comm)
        except ValueError:
            pass

    @property
    def empty(self) -> bool:
        """True when no communication is waiting on this mailbox."""
        return not self.pending_sends and not self.pending_recvs

    def waiting_send_count(self) -> int:
        """Number of sender-side communications currently queued (probe)."""
        return sum(1 for c in self.pending_sends if c.is_pending())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Mailbox(name={self.name!r}, sends={len(self.pending_sends)},"
                f" recvs={len(self.pending_recvs)})")
