"""MSG error codes, mirroring the ``MSG_error_t`` enumeration of the paper's API.

The Pythonic API raises exceptions (see :mod:`repro.exceptions`); these
constants and helpers exist for code translated literally from the C API
and for tests asserting on error categories.
"""

from __future__ import annotations

import enum
from typing import Optional, Type

from repro.exceptions import (
    CancelledError,
    HostFailureError,
    SimGridError,
    SimTimeoutError,
    TransferFailureError,
)

__all__ = ["MsgError", "error_of_exception", "exception_of_error"]


class MsgError(enum.Enum):
    """The classic MSG return codes."""

    OK = "MSG_OK"
    HOST_FAILURE = "MSG_HOST_FAILURE"
    TRANSFER_FAILURE = "MSG_TRANSFER_FAILURE"
    TIMEOUT = "MSG_TIMEOUT"
    TASK_CANCELED = "MSG_TASK_CANCELED"


_EXC_TO_ERROR = {
    HostFailureError: MsgError.HOST_FAILURE,
    TransferFailureError: MsgError.TRANSFER_FAILURE,
    SimTimeoutError: MsgError.TIMEOUT,
    CancelledError: MsgError.TASK_CANCELED,
}

_ERROR_TO_EXC = {v: k for k, v in _EXC_TO_ERROR.items()}


def error_of_exception(exc: Optional[BaseException]) -> MsgError:
    """Map an exception (or ``None``) to the corresponding MSG error code."""
    if exc is None:
        return MsgError.OK
    for exc_type, code in _EXC_TO_ERROR.items():
        if isinstance(exc, exc_type):
            return code
    if isinstance(exc, SimGridError):
        return MsgError.TRANSFER_FAILURE
    raise TypeError(f"not a simulation error: {exc!r}")


def exception_of_error(code: MsgError, message: str = "") -> Optional[SimGridError]:
    """Map an MSG error code back to an exception instance (``OK`` -> None)."""
    if code is MsgError.OK:
        return None
    return _ERROR_TO_EXC[code](message or code.value)
