"""Paper-style MSG helper functions.

The paper's code listings use the C API (``MSG_task_create``,
``MSG_task_put``, ``MSG_task_get``, ``MSG_task_execute``,
``MSG_get_host_by_name``).  These helpers provide a literal translation so
the examples read like the paper; new code should prefer the object API
(:class:`~repro.msg.process.Process`, :class:`~repro.msg.task.Task`).

Units follow the paper's listings: task compute payloads are given in
**MFlop** and data payloads in **MB** (the comment in the paper's client
code reads ``30.0 MFlop, 3.2 MB``), and are converted to flop and bytes.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.msg.host import Host
from repro.msg.process import Process
from repro.msg.task import Task

__all__ = [
    "MFLOP", "MBYTE",
    "MSG_task_create", "MSG_task_execute", "MSG_task_put", "MSG_task_get",
    "MSG_get_host_by_name", "MSG_process_sleep", "MSG_task_cancel",
]

#: One MFlop, in flop.
MFLOP = 1e6
#: One MB, in bytes (the paper uses decimal megabytes).
MBYTE = 1e6


def MSG_task_create(name: str, compute_mflop: float, data_mb: float,
                    payload: Any = None) -> Task:
    """Create a task from MFlop / MB amounts, as in the paper's listings."""
    return Task(name, compute_amount=compute_mflop * MFLOP,
                data_size=data_mb * MBYTE, payload=payload)


def MSG_get_host_by_name(process: Process, name: str) -> Host:
    """Resolve a host by name from within a process."""
    return process.env.host(name)


def MSG_task_execute(process: Process, task: Task):
    """Execute a task's compute payload on the calling process's host.

    With the generator context factory this returns the simcall to yield::

        yield MSG_task_execute(proc, task)
    """
    return process.execute(task)


def MSG_task_put(process: Process, task: Task, dest: Union[str, Host],
                 port: int, rate: Optional[float] = None,
                 timeout: Optional[float] = None):
    """Send ``task`` to ``dest``'s ``port`` (blocking rendezvous)."""
    return process.put(task, dest, port, rate=rate, timeout=timeout)


def MSG_task_get(process: Process, port: int,
                 timeout: Optional[float] = None):
    """Receive a task on the calling host's ``port`` (blocking)."""
    return process.get(port, timeout=timeout)


def MSG_process_sleep(process: Process, duration: float):
    """Sleep for ``duration`` seconds of simulated time."""
    return process.sleep(duration)


def MSG_task_cancel(task: Task) -> None:
    """Cancel the execution or transfer currently carrying ``task``."""
    task.cancel()
