"""MSG tasks.

The paper's MSG abstraction: *"Processes can synchronize by exchanging
tasks; tasks have a communication payload and an execution payload."*

A :class:`Task` therefore carries

* ``compute_amount`` — the execution payload in flops (what
  ``MSG_task_execute`` simulates);
* ``data_size`` — the communication payload in bytes (what
  ``MSG_task_put`` / ``MSG_task_get`` simulate);
* ``payload`` — an arbitrary Python object travelling with the task
  (processes share one address space, so no copy is made — exactly the
  "convenient communication via global data structures" of the paper).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

__all__ = ["Task"]

_task_ids = itertools.count(1)


class Task:
    """A unit of work and/or data exchanged between MSG processes."""

    def __init__(self, name: str, compute_amount: float = 0.0,
                 data_size: float = 0.0, payload: Any = None,
                 priority: float = 1.0) -> None:
        if compute_amount < 0:
            raise ValueError("compute_amount must be >= 0")
        if data_size < 0:
            raise ValueError("data_size must be >= 0")
        if priority <= 0:
            raise ValueError("priority must be > 0")
        self.id = next(_task_ids)
        self.name = name
        self.compute_amount = float(compute_amount)
        self.data_size = float(data_size)
        self.payload = payload
        self.priority = float(priority)
        #: Filled in by the kernel when the task travels.
        self.sender = None
        self.receiver = None
        self.source_host: Optional[str] = None
        #: The activity currently carrying the task (for cancel()).
        self._activity = None

    # -- mutators used by applications ------------------------------------------------
    def set_priority(self, priority: float) -> None:
        """Change the sharing priority used when the task executes."""
        if priority <= 0:
            raise ValueError("priority must be > 0")
        self.priority = float(priority)

    def set_compute_amount(self, flops: float) -> None:
        """Change the execution payload (e.g. after a partial execution)."""
        if flops < 0:
            raise ValueError("compute_amount must be >= 0")
        self.compute_amount = float(flops)

    def set_data_size(self, size: float) -> None:
        """Change the communication payload."""
        if size < 0:
            raise ValueError("data_size must be >= 0")
        self.data_size = float(size)

    def cancel(self, now: Optional[float] = None) -> None:
        """Cancel the execution or transfer currently carrying this task."""
        if self._activity is not None:
            self._activity.cancel()

    # -- kernel payload hooks ------------------------------------------------------------
    # The s4u engine transports opaque payloads; these optional hooks let a
    # task learn who carries it without the kernel depending on Task.
    def _on_comm_post(self, sender) -> None:
        """Called when the sending actor posts the communication."""
        self.sender = sender
        self.source_host = sender.host.name

    def _on_comm_start(self, comm) -> None:
        """Called when both sides met and the transfer starts."""
        self.receiver = comm.dst_actor
        self._activity = comm

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Task(name={self.name!r}, flops={self.compute_amount}, "
                f"bytes={self.data_size})")
