"""Activities: what a simulated process can block on.

An activity is the kernel-side object binding a simcall to the SURF action
that realises it:

* :class:`ExecActivity` — a computation on one host;
* :class:`CommActivity` — a task transfer through a mailbox;
* :class:`SleepActivity` — a pure timer.

Activities carry their waiters (the processes blocked on them) and their
timing information, which the tracing layer uses to build Gantt charts.
"""

from __future__ import annotations

import enum
from typing import Any, List, Optional, TYPE_CHECKING

from repro.surf.action import Action

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.msg.host import Host
    from repro.msg.mailbox import Mailbox
    from repro.msg.process import Process
    from repro.msg.task import Task

__all__ = ["Activity", "ActivityState", "ExecActivity", "CommActivity",
           "SleepActivity"]


class ActivityState(enum.Enum):
    """Lifecycle of an activity."""

    PENDING = "pending"      # posted, not started (comm waiting for a peer)
    STARTED = "started"      # the SURF action is running
    DONE = "done"
    FAILED = "failed"        # a resource died
    CANCELLED = "cancelled"  # explicitly cancelled
    TIMEOUT = "timeout"      # the waiter's timeout fired first


class Activity:
    """Base class of every blocking activity."""

    kind = "activity"

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.state = ActivityState.PENDING
        self.surf_action: Optional[Action] = None
        self.waiters: List["Process"] = []
        self.post_time: float = 0.0
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None

    # -- state helpers -----------------------------------------------------------------
    def is_pending(self) -> bool:
        return self.state is ActivityState.PENDING

    def is_started(self) -> bool:
        return self.state is ActivityState.STARTED

    def is_over(self) -> bool:
        """Finished, successfully or not."""
        return self.state in (ActivityState.DONE, ActivityState.FAILED,
                              ActivityState.CANCELLED, ActivityState.TIMEOUT)

    def succeeded(self) -> bool:
        return self.state is ActivityState.DONE

    def add_waiter(self, process: "Process") -> None:
        if process not in self.waiters:
            self.waiters.append(process)

    def remove_waiter(self, process: "Process") -> None:
        try:
            self.waiters.remove(process)
        except ValueError:
            pass

    def cancel(self) -> None:
        """Request cancellation; the environment finalises the bookkeeping."""
        if self.is_over():
            return
        if self.surf_action is not None and self.surf_action.is_running():
            self.surf_action.cancel(self.surf_action.start_time)
        self.state = ActivityState.CANCELLED

    @property
    def remaining(self) -> float:
        """Remaining work of the underlying action (0 when not started)."""
        if self.surf_action is None:
            return 0.0
        return self.surf_action.remaining

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, state={self.state.value})"


class ExecActivity(Activity):
    """A computation of ``flops`` on ``host`` by ``process``."""

    kind = "exec"

    def __init__(self, process: "Process", host: "Host", flops: float,
                 name: str = "compute") -> None:
        super().__init__(name)
        self.process = process
        self.host = host
        self.flops = flops


class CommActivity(Activity):
    """A task transfer through a mailbox.

    The activity is created by whichever side posts first (PENDING); when
    the other side arrives the environment *starts* it: the route between
    the sender's and the receiver's hosts is resolved and the SURF network
    action created.
    """

    kind = "comm"

    def __init__(self, mailbox: "Mailbox", task: Optional["Task"] = None,
                 src_process: Optional["Process"] = None,
                 dst_process: Optional["Process"] = None,
                 rate: Optional[float] = None,
                 detached: bool = False,
                 name: str = "") -> None:
        super().__init__(name or (task.name if task is not None else "comm"))
        self.mailbox = mailbox
        self.task = task
        self.src_process = src_process
        self.dst_process = dst_process
        self.rate = rate
        self.detached = detached

    @property
    def size(self) -> float:
        """Payload size in bytes."""
        return self.task.data_size if self.task is not None else 0.0

    @property
    def src_host(self) -> Optional["Host"]:
        return self.src_process.host if self.src_process is not None else None

    @property
    def dst_host(self) -> Optional["Host"]:
        return self.dst_process.host if self.dst_process is not None else None


class SleepActivity(Activity):
    """A pure delay (``MSG_process_sleep``)."""

    kind = "sleep"

    def __init__(self, process: "Process", duration: float) -> None:
        super().__init__("sleep")
        self.process = process
        self.duration = duration
