"""MSG activities — compatibility aliases over the S4U activity classes.

The kernel-side activity machinery now lives in
:mod:`repro.s4u.activity`; MSG's historical names map onto it directly:

* ``ExecActivity``  is :class:`repro.s4u.activity.Exec`;
* ``CommActivity``  is :class:`repro.s4u.activity.Comm` (its ``task``
  attribute is the S4U ``payload``);
* ``SleepActivity`` is :class:`repro.s4u.activity.Sleep`.

Both APIs therefore share one activity implementation, one state machine
and one engine code path.
"""

from repro.s4u.activity import (
    Activity,
    ActivitySet,
    ActivityState,
    Comm,
    Exec,
    Sleep,
)

__all__ = ["Activity", "ActivitySet", "ActivityState", "CommActivity",
           "ExecActivity", "SleepActivity"]

#: MSG-era names of the S4U activities.
ExecActivity = Exec
CommActivity = Comm
SleepActivity = Sleep
