"""MSG processes.

The paper: *"Applications consist of processes; processes can be created,
suspended, resumed and terminated dynamically; processes can synchronize by
exchanging tasks."*

A :class:`Process` wraps the user-supplied process function and offers the
blocking operations.  With the default generator context factory, process
functions are generator functions and every blocking operation is
``yield``-ed::

    def client(proc, server_name):
        remote = Task("Remote", compute_amount=30e6, data_size=3.2e6)
        yield proc.put(remote, server_name, port=22)
        local = Task("Local", compute_amount=10.5e6)
        yield proc.execute(local)
        ack = yield proc.get(port=23)

With the thread context factory the very same calls are plain blocking
calls (no ``yield``), since each simulated process owns an OS thread.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING, Union

from repro.kernel.context import Context, ThreadContext
from repro.kernel.simcall import (
    ExecuteCall, IrecvCall, IsendCall, JoinCall, KillCall, RecvCall,
    ResumeCall, SendCall, Simcall, SleepCall, SuspendCall, TestCall,
    WaitAnyCall, WaitCall, YieldCall,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.msg.environment import Environment
    from repro.msg.host import Host
    from repro.msg.task import Task

__all__ = ["Process", "ProcessState"]

_pids = itertools.count(1)


class ProcessState:
    """Symbolic process states (strings for easy debugging)."""

    CREATED = "created"
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    SUSPENDED = "suspended"
    DEAD = "dead"


class Process:
    """One simulated process: a function running on a host."""

    def __init__(self, env: "Environment", name: str, host: "Host",
                 func, args: tuple = (), kwargs: Optional[dict] = None,
                 daemon: bool = False) -> None:
        self.env = env
        self.name = name
        self.host = host
        self.func = func
        self.args = args
        self.kwargs = kwargs or {}
        self.daemon = daemon
        self.pid = next(_pids)
        self.state = ProcessState.CREATED
        self.context: Optional[Context] = None
        #: Application-visible storage (``MSG_process_set_data``).
        self.data: Dict[str, Any] = {}
        # kernel bookkeeping
        self._wait_activities: List[Any] = []
        self._wait_timer = None
        self._wait_kind: Optional[str] = None
        self._suspended = False
        self._parked_resume: Optional[tuple] = None
        self._joiners: List["Process"] = []
        self.exit_status: Optional[BaseException] = None

    # ------------------------------------------------------------------------------
    # identity & state
    # ------------------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        return self.state != ProcessState.DEAD

    @property
    def is_suspended(self) -> bool:
        return self._suspended

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.env.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Process(pid={self.pid}, name={self.name!r}, "
                f"host={self.host.name!r}, state={self.state})")

    # ------------------------------------------------------------------------------
    # simcall submission
    # ------------------------------------------------------------------------------
    def _submit(self, simcall: Simcall):
        """Return the simcall (generator mode) or block on it (thread mode)."""
        if isinstance(self.context, ThreadContext):
            return self.context.block(simcall)
        return simcall

    # -- computation -------------------------------------------------------------------
    def execute(self, work: Union[float, "Task"], priority: Optional[float] = None,
                bound: Optional[float] = None, host: Optional["Host"] = None,
                name: Optional[str] = None):
        """Execute ``work`` flops (or a task's compute payload) on this host.

        Matches ``MSG_task_execute``.  Blocks until the computation is done.
        """
        from repro.msg.task import Task  # local import to avoid a cycle
        if isinstance(work, Task):
            flops = work.compute_amount
            label = name or work.name
            prio = priority if priority is not None else work.priority
        else:
            flops = float(work)
            label = name or "compute"
            prio = priority if priority is not None else 1.0
        return self._submit(ExecuteCall(flops=flops, host=host or self.host,
                                        priority=prio, bound=bound,
                                        name=label))

    def sleep(self, duration: float):
        """Do nothing for ``duration`` simulated seconds."""
        if duration < 0:
            raise ValueError("sleep duration must be >= 0")
        return self._submit(SleepCall(duration=duration))

    # -- point-to-point communication -----------------------------------------------------
    def put(self, task: "Task", dest: Union[str, "Host"], port: int = 0,
            rate: Optional[float] = None, timeout: Optional[float] = None):
        """Send ``task`` to ``dest``'s port (``MSG_task_put``).

        The mailbox used is ``"<dest>:<port>"``.  Blocks until the receiver
        has fully received the task (rendezvous semantics).
        """
        mailbox = self.env.mailbox_for(dest, port)
        return self._submit(SendCall(mailbox=mailbox, task=task, rate=rate,
                                     timeout=timeout))

    def get(self, port: int = 0, host: Optional[Union[str, "Host"]] = None,
            timeout: Optional[float] = None, rate: Optional[float] = None):
        """Receive a task on one of *this host's* ports (``MSG_task_get``)."""
        mailbox = self.env.mailbox_for(host or self.host, port)
        return self._submit(RecvCall(mailbox=mailbox, timeout=timeout,
                                     rate=rate))

    def send(self, task: "Task", mailbox: str, rate: Optional[float] = None,
             timeout: Optional[float] = None):
        """Send ``task`` to a named mailbox (``MSG_task_send``)."""
        return self._submit(SendCall(mailbox=self.env.mailbox(mailbox),
                                     task=task, rate=rate, timeout=timeout))

    def receive(self, mailbox: str, timeout: Optional[float] = None,
                rate: Optional[float] = None):
        """Receive a task from a named mailbox (``MSG_task_receive``)."""
        return self._submit(RecvCall(mailbox=self.env.mailbox(mailbox),
                                     timeout=timeout, rate=rate))

    # -- asynchronous communication ---------------------------------------------------------
    def isend(self, task: "Task", mailbox: str, rate: Optional[float] = None,
              detached: bool = False):
        """Start an asynchronous send; returns a communication handle."""
        return self._submit(IsendCall(mailbox=self.env.mailbox(mailbox),
                                      task=task, rate=rate, detached=detached))

    def dsend(self, task: "Task", mailbox: str, rate: Optional[float] = None):
        """Fire-and-forget send (``MSG_task_dsend``)."""
        return self._submit(IsendCall(mailbox=self.env.mailbox(mailbox),
                                      task=task, rate=rate, detached=True))

    def irecv(self, mailbox: str, rate: Optional[float] = None):
        """Start an asynchronous receive; returns a communication handle."""
        return self._submit(IrecvCall(mailbox=self.env.mailbox(mailbox),
                                      rate=rate))

    def wait(self, activity, timeout: Optional[float] = None):
        """Wait for an asynchronous activity; returns its result."""
        return self._submit(WaitCall(activity=activity, timeout=timeout))

    def wait_any(self, activities: Sequence[Any],
                 timeout: Optional[float] = None):
        """Wait until any of ``activities`` completes; returns its index."""
        return self._submit(WaitAnyCall(activities=list(activities),
                                        timeout=timeout))

    def test(self, activity):
        """Non-blocking check of an asynchronous activity."""
        return self._submit(TestCall(activity=activity))

    # -- process management --------------------------------------------------------------------
    def kill(self, process: Optional["Process"] = None):
        """Kill ``process`` (default: self)."""
        return self._submit(KillCall(process=process or self))

    def suspend(self, process: Optional["Process"] = None):
        """Suspend ``process`` (default: self)."""
        return self._submit(SuspendCall(process=process))

    def resume_process(self, process: "Process"):
        """Resume a suspended process."""
        return self._submit(ResumeCall(process=process))

    def join(self, process: "Process", timeout: Optional[float] = None):
        """Wait for ``process`` to terminate."""
        return self._submit(JoinCall(process=process, timeout=timeout))

    def yield_(self):
        """Let other runnable processes run (no simulated time passes)."""
        return self._submit(YieldCall())
