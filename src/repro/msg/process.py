"""MSG processes — thin adapters over S4U actors.

The paper: *"Applications consist of processes; processes can be created,
suspended, resumed and terminated dynamically; processes can synchronize by
exchanging tasks."*

A :class:`Process` **is** an :class:`repro.s4u.actor.Actor`: it adds the
task-centric helpers of the paper's MSG API (``put``/``get``/``send``/
``receive``/``execute`` taking :class:`~repro.msg.task.Task` objects) on
top of the S4U blocking operations, translating every call into the same
kernel simcalls the S4U mailbox/activity methods build.  With the default
generator context factory, process functions are generator functions and
every blocking operation is ``yield``-ed::

    def client(proc, server_name):
        remote = Task("Remote", compute_amount=30e6, data_size=3.2e6)
        yield proc.put(remote, server_name, port=22)
        local = Task("Local", compute_amount=10.5e6)
        yield proc.execute(local)
        ack = yield proc.get(port=23)

With the thread context factory the very same calls are plain blocking
calls (no ``yield``), since each simulated process owns an OS thread.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, TYPE_CHECKING, Union

from repro.kernel.simcall import (
    IrecvCall, IsendCall, JoinCall, KillCall, RecvCall, ResumeCall,
    SendCall, SuspendCall, TestCall, WaitAnyCall, WaitCall,
)
from repro.s4u.actor import Actor, ActorState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.msg.environment import Environment
    from repro.msg.host import Host
    from repro.msg.task import Task

__all__ = ["Process", "ProcessState"]

#: MSG-era name of the actor state enumeration.
ProcessState = ActorState


class Process(Actor):
    """One simulated process: an S4U actor with the MSG task helpers."""

    @property
    def env(self) -> "Environment":
        """The owning environment (MSG-era name of ``Actor.engine``)."""
        return self.engine

    # -- computation -------------------------------------------------------------------
    def execute(self, work: Union[float, "Task"], priority: Optional[float] = None,
                bound: Optional[float] = None, host: Optional["Host"] = None,
                name: Optional[str] = None):
        """Execute ``work`` flops (or a task's compute payload) on this host.

        Matches ``MSG_task_execute``.  Blocks until the computation is done.
        """
        from repro.msg.task import Task  # local import to avoid a cycle
        if isinstance(work, Task):
            flops = work.compute_amount
            label = name or work.name
            prio = priority if priority is not None else work.priority
        else:
            flops = float(work)
            label = name or "compute"
            prio = priority if priority is not None else 1.0
        return Actor.execute(self, flops, priority=prio, bound=bound,
                             host=host or self.host, name=label)

    def sleep(self, duration: float):
        """Do nothing for ``duration`` simulated seconds."""
        return self.sleep_for(duration)

    # -- point-to-point communication -----------------------------------------------------
    def put(self, task: "Task", dest: Union[str, "Host"], port: int = 0,
            rate: Optional[float] = None, timeout: Optional[float] = None):
        """Send ``task`` to ``dest``'s port (``MSG_task_put``).

        The mailbox used is ``"<dest>:<port>"``.  Blocks until the receiver
        has fully received the task (rendezvous semantics).
        """
        mailbox = self.env.mailbox_for(dest, port)
        return self._submit(self._send_call(mailbox, task, rate, timeout))

    def get(self, port: int = 0, host: Optional[Union[str, "Host"]] = None,
            timeout: Optional[float] = None, rate: Optional[float] = None):
        """Receive a task on one of *this host's* ports (``MSG_task_get``)."""
        mailbox = self.env.mailbox_for(host or self.host, port)
        return self._submit(RecvCall(mailbox=mailbox, timeout=timeout,
                                     rate=rate))

    def send(self, task: "Task", mailbox: str, rate: Optional[float] = None,
             timeout: Optional[float] = None):
        """Send ``task`` to a named mailbox (``MSG_task_send``)."""
        return self._submit(self._send_call(self.env.mailbox(mailbox),
                                            task, rate, timeout))

    def receive(self, mailbox: str, timeout: Optional[float] = None,
                rate: Optional[float] = None):
        """Receive a task from a named mailbox (``MSG_task_receive``)."""
        return self._submit(RecvCall(mailbox=self.env.mailbox(mailbox),
                                     timeout=timeout, rate=rate))

    def _send_call(self, mailbox, task: "Task", rate: Optional[float],
                   timeout: Optional[float]) -> SendCall:
        """Translate a task send into the payload/size/priority simcall."""
        return SendCall(mailbox=mailbox, payload=task, size=task.data_size,
                        rate=rate, timeout=timeout, priority=task.priority,
                        name=task.name)

    # -- asynchronous communication ---------------------------------------------------------
    def isend(self, task: "Task", mailbox: str, rate: Optional[float] = None,
              detached: bool = False):
        """Start an asynchronous send; returns a communication handle."""
        return self._submit(IsendCall(mailbox=self.env.mailbox(mailbox),
                                      payload=task, size=task.data_size,
                                      rate=rate, detached=detached,
                                      priority=task.priority,
                                      name=task.name))

    def dsend(self, task: "Task", mailbox: str, rate: Optional[float] = None):
        """Fire-and-forget send (``MSG_task_dsend``)."""
        return self.isend(task, mailbox, rate=rate, detached=True)

    def irecv(self, mailbox: str, rate: Optional[float] = None):
        """Start an asynchronous receive; returns a communication handle."""
        return self._submit(IrecvCall(mailbox=self.env.mailbox(mailbox),
                                      rate=rate))

    def wait(self, activity, timeout: Optional[float] = None):
        """Wait for an asynchronous activity; returns its result."""
        return self._submit(WaitCall(activity=activity, timeout=timeout))

    def wait_any(self, activities: Sequence[Any],
                 timeout: Optional[float] = None):
        """Wait until any of ``activities`` completes; returns its index."""
        return self._submit(WaitAnyCall(activities=list(activities),
                                        timeout=timeout))

    def test(self, activity):
        """Non-blocking check of an asynchronous activity."""
        return self._submit(TestCall(activity=activity))

    # -- process management --------------------------------------------------------------------
    def kill(self, process: Optional["Process"] = None):
        """Kill ``process`` (default: self) — MSG calling convention."""
        return self._submit(KillCall(process=process or self))

    def suspend(self, process: Optional["Process"] = None):
        """Suspend ``process`` (default: self)."""
        return self._submit(SuspendCall(process=process))

    def resume_process(self, process: "Process"):
        """Resume a suspended process."""
        return self._submit(ResumeCall(process=process))

    def join(self, process: "Process", timeout: Optional[float] = None):
        """Wait for ``process`` to terminate."""
        return self._submit(JoinCall(process=process, timeout=timeout))
