"""MSG — the paper's prototyping API, now a **deprecated** legacy shim.

MSG offered *"a convenient and standard abstraction of a distributed
application"*: processes running on hosts, exchanging tasks that carry both
a computation payload and a communication payload, all simulated on the SURF
virtual platform.

:mod:`repro.s4u` is the canonical API: every other layer (GRAS, SMPI, AMOK)
talks to the s4u ``Engine``/``Actor``/``Mailbox`` objects directly, and this
package is a pure compatibility shim kept for existing MSG programs — an MSG
``Environment`` is an :class:`repro.s4u.engine.Engine`, a ``Process`` is an
:class:`repro.s4u.actor.Actor`, and the MSG activities, hosts and mailboxes
are the s4u objects themselves, so the shim costs nothing at run time and
simulated dates are identical by construction.

Importing this package emits a :class:`DeprecationWarning` (once per
process).  The translation table lives in ``ROADMAP.md``; new code should
write ``engine.mailbox("box").put(payload, size=...)`` instead of wrapping
payloads in :class:`~repro.msg.task.Task` objects.
"""

import warnings as _warnings

_warnings.warn(
    "repro.msg is deprecated: the MSG API is a legacy compatibility shim; "
    "use the canonical repro.s4u API (Engine/Actor/Mailbox/Comm) instead",
    DeprecationWarning, stacklevel=2)

from repro.msg.activity import (
    Activity,
    ActivitySet,
    ActivityState,
    CommActivity,
    ExecActivity,
    SleepActivity,
)
from repro.msg.api import (
    MBYTE,
    MFLOP,
    MSG_get_host_by_name,
    MSG_process_sleep,
    MSG_task_cancel,
    MSG_task_create,
    MSG_task_execute,
    MSG_task_get,
    MSG_task_put,
)
from repro.msg.environment import Environment
from repro.msg.errors import MsgError, error_of_exception, exception_of_error
from repro.msg.host import Host
from repro.msg.mailbox import Mailbox
from repro.msg.process import Process, ProcessState
from repro.msg.task import Task

__all__ = [
    "Activity",
    "ActivitySet",
    "ActivityState",
    "CommActivity",
    "Environment",
    "ExecActivity",
    "SleepActivity",
    "Host",
    "MBYTE",
    "MFLOP",
    "MSG_get_host_by_name",
    "MSG_process_sleep",
    "MSG_task_cancel",
    "MSG_task_create",
    "MSG_task_execute",
    "MSG_task_get",
    "MSG_task_put",
    "Mailbox",
    "MsgError",
    "Process",
    "ProcessState",
    "Task",
    "error_of_exception",
    "exception_of_error",
]
