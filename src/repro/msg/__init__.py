"""MSG — the prototyping API (paper section "Application and algorithm prototyping").

MSG offers *"a convenient and standard abstraction of a distributed
application"*: processes running on hosts, exchanging tasks that carry both
a computation payload and a communication payload, all simulated on the SURF
virtual platform.

Since the s4u redesign this package is a thin compatibility shim: an MSG
``Environment`` is an :class:`repro.s4u.engine.Engine`, a ``Process`` is an
:class:`repro.s4u.actor.Actor`, and the MSG activities, hosts and mailboxes
are the s4u objects themselves — both APIs run on one kernel code path.
"""

from repro.msg.activity import (
    Activity,
    ActivitySet,
    ActivityState,
    CommActivity,
    ExecActivity,
    SleepActivity,
)
from repro.msg.api import (
    MBYTE,
    MFLOP,
    MSG_get_host_by_name,
    MSG_process_sleep,
    MSG_task_cancel,
    MSG_task_create,
    MSG_task_execute,
    MSG_task_get,
    MSG_task_put,
)
from repro.msg.environment import Environment
from repro.msg.errors import MsgError, error_of_exception, exception_of_error
from repro.msg.host import Host
from repro.msg.mailbox import Mailbox
from repro.msg.process import Process, ProcessState
from repro.msg.task import Task

__all__ = [
    "Activity",
    "ActivitySet",
    "ActivityState",
    "CommActivity",
    "Environment",
    "ExecActivity",
    "SleepActivity",
    "Host",
    "MBYTE",
    "MFLOP",
    "MSG_get_host_by_name",
    "MSG_process_sleep",
    "MSG_task_cancel",
    "MSG_task_create",
    "MSG_task_execute",
    "MSG_task_get",
    "MSG_task_put",
    "Mailbox",
    "MsgError",
    "Process",
    "ProcessState",
    "Task",
    "error_of_exception",
    "exception_of_error",
]
