"""The MSG simulation environment — a compatibility shim over s4u.

Historically this module owned the whole scheduler (SimGrid's *simix*);
that machinery now lives in :class:`repro.s4u.engine.Engine`, and an MSG
``Environment`` *is* an s4u ``Engine`` whose actors are MSG
:class:`~repro.msg.process.Process` objects:

* ``create_process``/``process_count``/``kill_process`` map onto the
  engine's actor API;
* MSG mailboxes, hosts and activities are the s4u objects themselves;
* the port helper :meth:`mailbox_for` keeps the paper's
  ``"<host>:<port>"`` naming convention.

GRAS (in simulation mode) and SMPI both run their processes inside an
Environment; MSG is simply its thinnest, most direct API — and all three
therefore execute on the one s4u engine.
"""

from __future__ import annotations

from typing import Callable, Union

from repro.msg.host import Host
from repro.msg.mailbox import Mailbox
from repro.msg.process import Process
from repro.s4u.engine import Engine

__all__ = ["Environment"]


class Environment(Engine):
    """A complete MSG simulation world (see :class:`repro.s4u.engine.Engine`).

    Parameters
    ----------
    platform:
        The platform description.  It is realized automatically if needed.
    context_factory:
        ``"generator"`` (default) or ``"thread"`` — how simulated process
        bodies are executed (see :mod:`repro.kernel.context`).
    recorder:
        Optional :class:`repro.tracing.recorder.Recorder` receiving the
        computation/communication intervals (to build Gantt charts).
    raise_on_deadlock:
        When True, :meth:`run` raises :class:`DeadlockError` if every
        remaining process is blocked forever; otherwise the simulation just
        ends (mirroring SimGrid's warning).
    """

    # ------------------------------------------------------------------------------
    # MSG-era naming of the actor API
    # ------------------------------------------------------------------------------
    @property
    def processes(self):
        """The actor list, under its MSG name (same list object)."""
        return self.actors

    def create_process(self, name: str, host: Union[str, Host], func: Callable,
                       *args, daemon: bool = False, **kwargs) -> Process:
        """Create a simulated process and make it runnable immediately."""
        return self.add_actor(name, host, func, *args, daemon=daemon,
                              actor_cls=Process, **kwargs)

    def process_count(self) -> int:
        """Number of processes still alive."""
        return self.actor_count()

    def kill_process(self, process: Process) -> None:
        """Kill a process from outside the simulation (tests, controllers)."""
        self.kill_actor(process)

    def resume_process(self, process: Process) -> None:
        """Resume a suspended process (environment-level API)."""
        self.resume_actor(process)

    # ------------------------------------------------------------------------------
    # the paper's port-based mailbox naming
    # ------------------------------------------------------------------------------
    def mailbox_for(self, host: Union[str, Host], port: int) -> Mailbox:
        """The canonical mailbox of a host's port: ``"<host>:<port>"``."""
        host_name = host.name if isinstance(host, Host) else str(host)
        return self.mailbox(f"{host_name}:{port}")
