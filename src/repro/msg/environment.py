"""The MSG simulation environment: processes + platform + simulated time.

This is the orchestrator tying everything together (SimGrid's *simix*):

* it owns the realized :class:`~repro.platform.platform.Platform` and its
  :class:`~repro.surf.engine.SurfEngine`;
* it schedules the simulated processes (created, suspended, resumed and
  killed dynamically, as the paper requires);
* it matches senders and receivers on mailboxes, creates the SURF actions
  realising executions and transfers, and advances simulated time;
* it converts resource failures into the exceptions the paper's API reports
  (host failure, transfer failure, timeouts).

GRAS (in simulation mode) and SMPI both run their processes inside an
Environment; MSG is simply its thinnest, most direct API.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

from repro.exceptions import (
    CancelledError,
    DeadlockError,
    HostFailureError,
    PlatformError,
    SimTimeoutError,
    TransferFailureError,
)
from repro.kernel.context import FINISHED, make_context_factory
from repro.kernel.simcall import (
    ExecuteCall, IrecvCall, IsendCall, JoinCall, KillCall, RecvCall,
    ResumeCall, SendCall, Simcall, SleepCall, SuspendCall, TestCall,
    WaitAnyCall, WaitCall, YieldCall,
)
from repro.kernel.timer import TimerQueue
from repro.msg.activity import (
    Activity, ActivityState, CommActivity, ExecActivity,
)
from repro.msg.host import Host
from repro.msg.mailbox import Mailbox
from repro.msg.process import Process, ProcessState
from repro.msg.task import Task
from repro.platform.platform import Platform
from repro.surf.cpu import CpuResource

__all__ = ["Environment"]

_EPS = 1e-12


class Environment:
    """A complete MSG simulation world.

    Parameters
    ----------
    platform:
        The platform description.  It is realized automatically if needed.
    context_factory:
        ``"generator"`` (default) or ``"thread"`` — how simulated process
        bodies are executed (see :mod:`repro.kernel.context`).
    recorder:
        Optional :class:`repro.tracing.recorder.Recorder` receiving the
        computation/communication intervals (to build Gantt charts).
    raise_on_deadlock:
        When True, :meth:`run` raises :class:`DeadlockError` if every
        remaining process is blocked forever; otherwise the simulation just
        ends (mirroring SimGrid's warning).
    """

    def __init__(self, platform: Platform,
                 context_factory: str = "generator",
                 recorder=None,
                 raise_on_deadlock: bool = False) -> None:
        self.platform = platform
        if not platform.realized:
            platform.realize()
        self.engine = platform.engine
        self.context_factory = make_context_factory(context_factory)
        self.recorder = recorder
        self.raise_on_deadlock = raise_on_deadlock

        self.hosts: Dict[str, Host] = {}
        for name, spec in platform.hosts.items():
            self.hosts[name] = Host(self, spec, platform.cpu_by_host[name])
        self._host_by_cpu: Dict[int, Host] = {
            id(host.cpu): host for host in self.hosts.values()}

        self.mailboxes: Dict[str, Mailbox] = {}
        self.processes: List[Process] = []
        self.timers = TimerQueue()
        self._ready: Deque[Tuple[Process, object, Optional[BaseException]]] = deque()
        self._alive_nondaemon = 0
        self._active_comms: set = set()
        self._deadlocked = False

    # ------------------------------------------------------------------------------
    # world accessors
    # ------------------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.engine.clock

    def host(self, name: str) -> Host:
        """Lookup a host by name."""
        try:
            return self.hosts[name]
        except KeyError:
            raise PlatformError(f"unknown host {name!r}") from None

    def host_by_name(self, name: str) -> Host:
        """Alias of :meth:`host` (``MSG_get_host_by_name``)."""
        return self.host(name)

    def mailbox(self, name: str) -> Mailbox:
        """Get (or lazily create) a mailbox by name."""
        box = self.mailboxes.get(name)
        if box is None:
            box = Mailbox(name)
            self.mailboxes[name] = box
        return box

    def mailbox_for(self, host: Union[str, Host], port: int) -> Mailbox:
        """The canonical mailbox of a host's port: ``"<host>:<port>"``."""
        host_name = host.name if isinstance(host, Host) else str(host)
        return self.mailbox(f"{host_name}:{port}")

    # ------------------------------------------------------------------------------
    # process management (environment-level API)
    # ------------------------------------------------------------------------------
    def create_process(self, name: str, host: Union[str, Host], func: Callable,
                       *args, daemon: bool = False, **kwargs) -> Process:
        """Create a simulated process and make it runnable immediately."""
        host_obj = host if isinstance(host, Host) else self.host(host)
        process = Process(self, name, host_obj, func, args, kwargs,
                          daemon=daemon)
        process.context = self.context_factory.create(
            func, (process, *args), kwargs)
        process.context.start()
        process.state = ProcessState.RUNNABLE
        self.processes.append(process)
        host_obj.processes.append(process)
        if not daemon:
            self._alive_nondaemon += 1
        self._enqueue(process, None)
        return process

    def process_count(self) -> int:
        """Number of processes still alive."""
        return sum(1 for p in self.processes if p.is_alive)

    def kill_process(self, process: Process) -> None:
        """Kill a process from outside the simulation (tests, controllers)."""
        self._kill_process(process)

    def fail_host(self, host: Host) -> None:
        """Turn a host off: its activities fail, its processes are killed."""
        failed = self.engine.fail_host(host.cpu)
        for action in failed:
            activity = action.data
            if isinstance(activity, Activity):
                self._finish_activity(activity, ActivityState.FAILED)
        self._on_host_down(host)

    def restore_host(self, host: Host) -> None:
        """Turn a failed host back on."""
        self.engine.restore_host(host.cpu)

    # ------------------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation until it ends (or until the given date).

        Returns the final simulated time.
        """
        limit = math.inf if until is None else float(until)
        while True:
            self._schedule_ready()
            if self._simulation_over():
                break
            bound = min(self.timers.next_date(), limit)
            result = self.engine.step(until=bound)
            if result is None:
                # No action can complete, no trace event, no timer, no limit:
                # the remaining processes (if any) are deadlocked.
                self._handle_deadlock()
                break
            now = result.time
            self._handle_state_changes(result.state_changes)
            for action in result.failed:
                activity = action.data
                if isinstance(activity, Activity):
                    self._finish_activity(activity, ActivityState.FAILED)
            for action in result.completed:
                activity = action.data
                if isinstance(activity, Activity):
                    self._finish_activity(activity, ActivityState.DONE)
            self.timers.fire_until(now)
            if until is not None and now >= limit - _EPS:
                self._schedule_ready()
                break
        return self.now

    @property
    def deadlocked(self) -> bool:
        """True when the last run ended because of a deadlock."""
        return self._deadlocked

    # -- loop helpers -------------------------------------------------------------------
    def _enqueue(self, process: Process, value=None,
                 exception: Optional[BaseException] = None) -> None:
        self._ready.append((process, value, exception))

    def _schedule_ready(self) -> None:
        while self._ready:
            process, value, exception = self._ready.popleft()
            if process.state == ProcessState.DEAD:
                continue
            if process._suspended:
                process._parked_resume = (value, exception)
                continue
            self._run_process(process, value, exception)

    def _run_process(self, process: Process, value=None,
                     exception: Optional[BaseException] = None) -> None:
        process.state = ProcessState.RUNNABLE
        request = process.context.resume(value, exception)
        if request is FINISHED:
            self._terminate_process(process)
            return
        self._handle_simcall(process, request)

    def _simulation_over(self) -> bool:
        if self._ready:
            return False
        if self._alive_nondaemon == 0:
            self._kill_remaining_daemons()
            return True
        if (not self.engine.has_running_actions()
                and not self.timers
                and math.isinf(self.engine.next_trace_event_date())):
            self._handle_deadlock()
            return True
        return False

    def _kill_remaining_daemons(self) -> None:
        for process in list(self.processes):
            if process.is_alive and process.daemon:
                self._kill_process(process)

    def _handle_deadlock(self) -> None:
        survivors = [p for p in self.processes if p.is_alive]
        if not survivors:
            return
        self._deadlocked = True
        for process in survivors:
            self._kill_process(process)
        if self.raise_on_deadlock:
            names = ", ".join(p.name for p in survivors)
            raise DeadlockError(
                f"simulation deadlocked at t={self.now:g}: "
                f"processes [{names}] are blocked forever")

    def _handle_state_changes(self, state_changes) -> None:
        for resource, is_on in state_changes:
            if isinstance(resource, CpuResource) and not is_on:
                host = self._host_by_cpu.get(id(resource))
                if host is not None:
                    self._on_host_down(host)

    def _on_host_down(self, host: Host) -> None:
        # Fail every started communication touching this host.
        for comm in list(self._active_comms):
            if comm.is_over():
                continue
            if (comm.src_host is host) or (comm.dst_host is host):
                if comm.surf_action is not None and comm.surf_action.is_running():
                    comm.surf_action.cancel(self.now)
                self._finish_activity(comm, ActivityState.FAILED)
        # Kill every process running on this host.
        for process in list(host.processes):
            if process.is_alive:
                self._kill_process(process)

    # ------------------------------------------------------------------------------
    # simcall handling
    # ------------------------------------------------------------------------------
    def _handle_simcall(self, process: Process, call: Simcall) -> None:
        process.state = ProcessState.BLOCKED
        if isinstance(call, ExecuteCall):
            self._do_execute(process, call)
        elif isinstance(call, SleepCall):
            self._do_sleep(process, call)
        elif isinstance(call, SendCall):
            self._do_send(process, call)
        elif isinstance(call, RecvCall):
            self._do_recv(process, call)
        elif isinstance(call, IsendCall):
            self._do_isend(process, call)
        elif isinstance(call, IrecvCall):
            self._do_irecv(process, call)
        elif isinstance(call, WaitCall):
            self._do_wait(process, call)
        elif isinstance(call, WaitAnyCall):
            self._do_wait_any(process, call)
        elif isinstance(call, TestCall):
            self._enqueue(process, call.activity.is_over())
        elif isinstance(call, KillCall):
            target = call.process
            self._kill_process(target)
            if target is not process:
                self._enqueue(process, None)
        elif isinstance(call, SuspendCall):
            self._do_suspend(process, call)
        elif isinstance(call, ResumeCall):
            self._do_resume_other(process, call)
        elif isinstance(call, JoinCall):
            self._do_join(process, call)
        elif isinstance(call, YieldCall):
            self._enqueue(process, None)
        else:
            raise TypeError(f"unknown simcall {call!r}")

    # -- execution ---------------------------------------------------------------------
    def _do_execute(self, process: Process, call: ExecuteCall) -> None:
        host: Host = call.host if isinstance(call.host, Host) else process.host
        if not host.is_on:
            self._enqueue(process, None,
                          HostFailureError(f"host {host.name} is down"))
            return
        activity = ExecActivity(process, host, call.flops, call.name)
        activity.post_time = self.now
        activity.start_time = self.now
        action = self.engine.cpu_model.execute(host.cpu, call.flops,
                                               priority=call.priority,
                                               bound=call.bound)
        action.data = activity
        activity.surf_action = action
        activity.state = ActivityState.STARTED
        activity.add_waiter(process)
        self._block_on(process, "exec", [activity])

    def _do_sleep(self, process: Process, call: SleepCall) -> None:
        wake_date = self.now + call.duration

        def _wake() -> None:
            if process.state == ProcessState.DEAD:
                return
            self._clear_wait(process)
            self._enqueue(process, None)

        timer = self.timers.schedule(wake_date, _wake)
        process._wait_kind = "sleep"
        process._wait_activities = []
        process._wait_timer = timer

    # -- communications -------------------------------------------------------------------
    def _do_send(self, process: Process, call: SendCall) -> None:
        comm = self._post_send(process, call.mailbox, call.task, call.rate,
                               detached=False)
        comm.add_waiter(process)
        self._block_on(process, "send", [comm], timeout=call.timeout)

    def _do_recv(self, process: Process, call: RecvCall) -> None:
        comm = self._post_recv(process, call.mailbox, call.rate)
        comm.add_waiter(process)
        self._block_on(process, "recv", [comm], timeout=call.timeout)

    def _do_isend(self, process: Process, call: IsendCall) -> None:
        comm = self._post_send(process, call.mailbox, call.task, call.rate,
                               detached=call.detached)
        self._enqueue(process, comm)

    def _do_irecv(self, process: Process, call: IrecvCall) -> None:
        comm = self._post_recv(process, call.mailbox, call.rate)
        self._enqueue(process, comm)

    def _post_send(self, process: Process, mailbox: Mailbox, task: Task,
                   rate: Optional[float], detached: bool) -> CommActivity:
        task.sender = process
        task.source_host = process.host.name
        peer = mailbox.pop_matching_recv()
        if peer is not None:
            comm = peer
            comm.task = task
            comm.src_process = process
            if rate is not None:
                comm.rate = rate if comm.rate is None else min(comm.rate, rate)
            comm.detached = detached
            self._start_comm(comm)
        else:
            comm = CommActivity(mailbox, task=task, src_process=process,
                                rate=rate, detached=detached)
            comm.post_time = self.now
            mailbox.post_send(comm)
        return comm

    def _post_recv(self, process: Process, mailbox: Mailbox,
                   rate: Optional[float]) -> CommActivity:
        peer = mailbox.pop_matching_send()
        if peer is not None:
            comm = peer
            comm.dst_process = process
            if rate is not None:
                comm.rate = rate if comm.rate is None else min(comm.rate, rate)
            self._start_comm(comm)
        else:
            comm = CommActivity(mailbox, dst_process=process, rate=rate)
            comm.post_time = self.now
            mailbox.post_recv(comm)
        return comm

    def _start_comm(self, comm: CommActivity) -> None:
        src_host = comm.src_process.host
        dst_host = comm.dst_process.host
        if not src_host.is_on or not dst_host.is_on:
            self._finish_activity(comm, ActivityState.FAILED)
            return
        links = self.platform.route_resources(src_host.name, dst_host.name)
        priority = comm.task.priority if comm.task is not None else 1.0
        action = self.engine.network_model.communicate(
            links, comm.size, rate=comm.rate, priority=priority)
        action.data = comm
        comm.surf_action = action
        comm.state = ActivityState.STARTED
        comm.start_time = self.now
        if comm.task is not None:
            comm.task.receiver = comm.dst_process
            comm.task._activity = comm
        self._active_comms.add(comm)

    # -- waiting -----------------------------------------------------------------------
    def _do_wait(self, process: Process, call: WaitCall) -> None:
        activity: Activity = call.activity
        if activity.is_over():
            value, exc = self._activity_result(process, activity)
            self._enqueue(process, value, exc)
            return
        activity.add_waiter(process)
        self._block_on(process, "wait", [activity], timeout=call.timeout)

    def _do_wait_any(self, process: Process, call: WaitAnyCall) -> None:
        activities = list(call.activities)
        if not activities:
            raise ValueError("wait_any needs at least one activity")
        for idx, activity in enumerate(activities):
            if activity.is_over():
                self._enqueue(process, idx)
                return
        for activity in activities:
            activity.add_waiter(process)
        self._block_on(process, "wait_any", activities, timeout=call.timeout)

    def _block_on(self, process: Process, kind: str,
                  activities: List[Activity],
                  timeout: Optional[float] = None) -> None:
        process._wait_kind = kind
        process._wait_activities = list(activities)
        process._wait_timer = None
        if timeout is not None:
            deadline = self.now + timeout
            process._wait_timer = self.timers.schedule(
                deadline, lambda: self._on_wait_timeout(process))

    def _clear_wait(self, process: Process) -> None:
        if process._wait_timer is not None:
            process._wait_timer.cancel()
        process._wait_timer = None
        process._wait_kind = None
        process._wait_activities = []

    def _on_wait_timeout(self, process: Process) -> None:
        if process.state == ProcessState.DEAD or process._wait_kind is None:
            return
        kind = process._wait_kind
        activities = list(process._wait_activities)
        for entry in activities:
            if isinstance(entry, Process):  # join timeout
                try:
                    entry._joiners.remove(process)
                except ValueError:
                    pass
                continue
            activity = entry
            activity.remove_waiter(process)
            if isinstance(activity, CommActivity):
                mine = (activity.src_process is process
                        or activity.dst_process is process)
                if activity.is_pending() and mine:
                    activity.mailbox.discard(activity)
                    activity.state = ActivityState.TIMEOUT
                elif activity.is_started() and mine and kind in ("send", "recv"):
                    # Abort the rendezvous: the peer sees a transfer failure.
                    if (activity.surf_action is not None
                            and activity.surf_action.is_running()):
                        activity.surf_action.cancel(self.now)
                    self._active_comms.discard(activity)
                    activity.state = ActivityState.TIMEOUT
                    activity.finish_time = self.now
                    for peer in list(activity.waiters):
                        activity.remove_waiter(peer)
                        self._clear_wait(peer)
                        self._enqueue(peer, None, TransferFailureError(
                            f"peer timed out on {activity.mailbox.name}"))
        self._clear_wait(process)
        self._enqueue(process, None, SimTimeoutError(
            f"{kind} timed out at t={self.now:g}"))

    # -- process control ------------------------------------------------------------------
    def _do_suspend(self, process: Process, call: SuspendCall) -> None:
        target = call.process or process
        if target is process:
            target._suspended = True
            target.state = ProcessState.SUSPENDED
            # Not rescheduled: it stays parked until someone resumes it.
            target._parked_resume = (None, None)
            return
        self._suspend_other(target)
        self._enqueue(process, None)

    def _suspend_other(self, target: Process) -> None:
        if not target.is_alive or target._suspended:
            return
        target._suspended = True
        if target.state != ProcessState.SUSPENDED:
            target.state = ProcessState.SUSPENDED
        for activity in target._wait_activities:
            if isinstance(activity, ExecActivity) and activity.surf_action:
                activity.surf_action.suspend()

    def _do_resume_other(self, process: Process, call: ResumeCall) -> None:
        self.resume_process(call.process)
        self._enqueue(process, None)

    def resume_process(self, target: Process) -> None:
        """Resume a suspended process (environment-level API)."""
        if not target.is_alive or not target._suspended:
            return
        target._suspended = False
        for activity in target._wait_activities:
            if isinstance(activity, ExecActivity) and activity.surf_action:
                activity.surf_action.resume()
        if target._parked_resume is not None:
            value, exc = target._parked_resume
            target._parked_resume = None
            target.state = ProcessState.RUNNABLE
            self._enqueue(target, value, exc)
        else:
            target.state = ProcessState.BLOCKED

    def _do_join(self, process: Process, call: JoinCall) -> None:
        target: Process = call.process
        if not target.is_alive:
            self._enqueue(process, None)
            return
        target._joiners.append(process)
        process._wait_kind = "join"
        process._wait_activities = [target]
        process._wait_timer = None
        if call.timeout is not None:
            process._wait_timer = self.timers.schedule(
                self.now + call.timeout,
                lambda: self._on_wait_timeout(process))

    # ------------------------------------------------------------------------------
    # activity completion
    # ------------------------------------------------------------------------------
    def _finish_activity(self, activity: Activity, state: ActivityState) -> None:
        if activity.is_over():
            return
        activity.state = state
        activity.finish_time = self.now
        if isinstance(activity, CommActivity):
            self._active_comms.discard(activity)
        self._record_activity(activity)
        waiters = list(activity.waiters)
        activity.waiters.clear()
        for process in waiters:
            self._wake_from_activity(process, activity)

    def _record_activity(self, activity: Activity) -> None:
        if self.recorder is None or activity.start_time is None:
            return
        start = activity.start_time
        end = activity.finish_time if activity.finish_time is not None else start
        if isinstance(activity, ExecActivity):
            self.recorder.record_interval(
                row=activity.host.name, category="compute",
                start=start, end=end, label=activity.name)
        elif isinstance(activity, CommActivity):
            label = activity.name
            if activity.src_host is not None:
                self.recorder.record_interval(
                    row=activity.src_host.name, category="comm-send",
                    start=start, end=end, label=label)
            if activity.dst_host is not None:
                self.recorder.record_interval(
                    row=activity.dst_host.name, category="comm-recv",
                    start=start, end=end, label=label)

    def _wake_from_activity(self, process: Process, activity: Activity) -> None:
        if process.state == ProcessState.DEAD:
            return
        if process._wait_kind is None:
            return
        # Detach the process from every other activity it was waiting on.
        for other in process._wait_activities:
            if other is not activity and isinstance(other, Activity):
                other.remove_waiter(process)
        value, exc = self._activity_result(process, activity)
        self._clear_wait(process)
        self._enqueue(process, value, exc)

    def _activity_result(self, process: Process, activity: Activity
                         ) -> Tuple[object, Optional[BaseException]]:
        kind = process._wait_kind
        if activity.state is ActivityState.DONE:
            if kind == "wait_any":
                try:
                    index = process._wait_activities.index(activity)
                except ValueError:
                    index = 0
                return index, None
            if isinstance(activity, CommActivity) and (
                    activity.dst_process is process):
                return activity.task, None
            return None, None
        if activity.state is ActivityState.FAILED:
            if isinstance(activity, CommActivity):
                return None, TransferFailureError(
                    f"transfer {activity.name!r} failed at t={self.now:g}")
            return None, HostFailureError(
                f"host failed during {activity.name!r} at t={self.now:g}")
        if activity.state is ActivityState.CANCELLED:
            return None, CancelledError(
                f"activity {activity.name!r} was cancelled")
        if activity.state is ActivityState.TIMEOUT:
            return None, SimTimeoutError(
                f"activity {activity.name!r} timed out")
        return None, None

    # ------------------------------------------------------------------------------
    # death
    # ------------------------------------------------------------------------------
    def _kill_process(self, target: Process) -> None:
        if not target.is_alive:
            return
        self._detach_from_waits(target)
        target.context.kill()
        self._terminate_process(target)

    def _detach_from_waits(self, target: Process) -> None:
        if target._wait_timer is not None:
            target._wait_timer.cancel()
        for entry in list(target._wait_activities):
            if isinstance(entry, Process):
                try:
                    entry._joiners.remove(target)
                except ValueError:
                    pass
                continue
            activity = entry
            activity.remove_waiter(target)
            if isinstance(activity, ExecActivity) and activity.process is target:
                if not activity.is_over():
                    activity.cancel()
            elif isinstance(activity, CommActivity):
                mine = (activity.src_process is target
                        or activity.dst_process is target)
                if not mine:
                    continue
                if activity.is_pending():
                    activity.mailbox.discard(activity)
                    activity.state = ActivityState.CANCELLED
                elif activity.is_started() and not activity.detached:
                    if (activity.surf_action is not None
                            and activity.surf_action.is_running()):
                        activity.surf_action.cancel(self.now)
                    self._finish_activity(activity, ActivityState.FAILED)
        target._wait_kind = None
        target._wait_activities = []
        target._wait_timer = None

    def _terminate_process(self, process: Process) -> None:
        if process.state == ProcessState.DEAD:
            return
        process.state = ProcessState.DEAD
        try:
            process.host.processes.remove(process)
        except ValueError:
            pass
        if not process.daemon:
            self._alive_nondaemon -= 1
        for joiner in process._joiners:
            if joiner.is_alive and joiner._wait_kind == "join":
                self._clear_wait(joiner)
                self._enqueue(joiner, None)
        process._joiners = []
