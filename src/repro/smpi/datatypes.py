"""MPI datatypes and payload sizing.

SMPI needs to know how many bytes a message occupies on the (simulated)
wire.  Messages can be sized three ways, in decreasing priority:

1. an explicit ``count``/``datatype`` pair, like a real MPI call;
2. the natural size of the payload (NumPy arrays expose ``nbytes``,
   ``bytes`` expose ``len``);
3. a conservative pickle-based estimate for arbitrary Python objects.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["Datatype", "MPI_BYTE", "MPI_CHAR", "MPI_INT", "MPI_LONG",
           "MPI_FLOAT", "MPI_DOUBLE", "payload_size"]


@dataclass(frozen=True)
class Datatype:
    """An MPI datatype: a name and a size in bytes."""

    name: str
    size: int

    def extent(self, count: int) -> int:
        """Bytes occupied by ``count`` elements."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return self.size * count


MPI_BYTE = Datatype("MPI_BYTE", 1)
MPI_CHAR = Datatype("MPI_CHAR", 1)
MPI_INT = Datatype("MPI_INT", 4)
MPI_LONG = Datatype("MPI_LONG", 8)
MPI_FLOAT = Datatype("MPI_FLOAT", 4)
MPI_DOUBLE = Datatype("MPI_DOUBLE", 8)


def payload_size(value: Any, count: Optional[int] = None,
                 datatype: Optional[Datatype] = None) -> float:
    """Best-effort size in bytes of a message payload."""
    if count is not None and datatype is not None:
        return float(datatype.extent(count))
    if value is None:
        return 0.0
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return float(nbytes)
    if isinstance(value, (bytes, bytearray, memoryview)):
        return float(len(value))
    if isinstance(value, str):
        return float(len(value.encode("utf-8")))
    if isinstance(value, (int, float)):
        return 8.0
    try:
        return float(len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)))
    except Exception:  # pragma: no cover - unpicklable exotic objects
        return 64.0
