"""Communicators, point-to-point messaging and requests.

Point-to-point semantics follow SMPI's *eager* protocol, expressed directly
in s4u terms: ``send`` posts a **detached** asynchronous put (the transfer
is simulated in the background, the sender does not wait for the
rendezvous) while ``recv`` blocks until the matching message has fully
arrived, so the simulated completion time of a receive includes the network
transfer simulated by SURF.  Messages travel as raw :class:`_Envelope`
payloads with an explicit ``size`` — no per-message task wrapper is
allocated.  Matching honours ``source``/``tag`` with the usual
``ANY_SOURCE`` / ``ANY_TAG`` wildcards and an unexpected-message queue; a
single in-flight :class:`~repro.s4u.activity.Comm` future per communicator
drains the rank's mailbox in arrival order, and :class:`Request` handles
are completed through it (``wait`` / ``test`` / ``waitany`` over
:class:`~repro.s4u.activity.ActivitySet`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple, TYPE_CHECKING

from repro.exceptions import MpiError, SimTimeoutError
from repro.s4u.activity import ActivitySet, Comm
from repro.s4u.actor import Actor
from repro.smpi.datatypes import Datatype, payload_size

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.smpi.api import Smpi

__all__ = ["ANY_SOURCE", "ANY_TAG", "Status", "Request", "Communicator"]

#: Wildcards, as in MPI.
ANY_SOURCE = -1
ANY_TAG = -1

_comm_ids = itertools.count(0)


@dataclass
class Status:
    """Receive status: who sent the matched message, with which tag."""

    source: int
    tag: int
    size: float


@dataclass
class _Envelope:
    """One SMPI message as carried by an s4u comm payload."""

    source: int
    dest: int
    tag: int
    value: Any
    size: float


@dataclass
class Request:
    """Handle on a non-blocking operation (``isend`` / ``irecv``)."""

    kind: str                       # "send" or "recv"
    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    value: Any = None
    status: Optional[Status] = None
    completed: bool = False
    #: True once :meth:`Communicator.waitany` returned this request — it
    #: then behaves like MPI's ``MPI_REQUEST_NULL`` and is skipped by
    #: later ``waitany`` calls over the same list.
    reaped: bool = False
    #: The s4u comm future realising the transfer (send requests; the
    #: receive side shares the communicator's single in-flight comm).
    comm: Optional[Comm] = None


class Communicator:
    """An MPI communicator bound to one rank's view of the world.

    Each rank gets its own :class:`Communicator` instance (same ``comm_id``,
    different ``rank``), which is how real MPI programs experience
    ``MPI_COMM_WORLD``.
    """

    def __init__(self, smpi: "Smpi", comm_id: int, rank: int, size: int,
                 actor: Actor) -> None:
        self._smpi = smpi
        self.id = comm_id
        self.rank = rank
        self.size = size
        self._actor = actor
        #: Messages received from the mailbox but not yet matched.
        self._unexpected: List[_Envelope] = []
        #: The single outstanding ``get_async`` draining this rank's
        #: mailbox.  One is enough: every inbound message arrives on the
        #: same mailbox, so arrival order (the matching order MPI
        #: guarantees per source) is preserved by construction.
        self._inflight: Optional[Comm] = None

    # -- helpers ------------------------------------------------------------------------
    def _mailbox(self, rank: int) -> str:
        return f"smpi:{self.id}:{rank}"

    def _box(self, rank: int):
        return self._actor.engine.mailbox(self._mailbox(rank))

    def _check_rank(self, rank: int, what: str) -> None:
        if not (0 <= rank < self.size):
            raise MpiError(f"{what} rank {rank} out of range 0..{self.size - 1}")

    # -- point-to-point --------------------------------------------------------------------
    def _post_eager(self, value: Any, dest: int, tag: int,
                    count: Optional[int], datatype: Optional[Datatype]
                    ) -> Comm:
        """Deposit a message: a detached async put with an explicit size."""
        self._check_rank(dest, "destination")
        size = payload_size(value, count, datatype)
        envelope = _Envelope(source=self.rank, dest=dest, tag=tag,
                             value=value, size=size)
        return self._box(dest).put_async(
            envelope, size=size, detached=True,
            name=f"smpi:{self.rank}->{dest}:{tag}")

    def send(self, value: Any, dest: int, tag: int = 0,
             count: Optional[int] = None,
             datatype: Optional[Datatype] = None) -> None:
        """Standard-mode send (eager: returns once the message is deposited)."""
        self._post_eager(value, dest, tag, count, datatype)

    def isend(self, value: Any, dest: int, tag: int = 0,
              count: Optional[int] = None,
              datatype: Optional[Datatype] = None) -> Request:
        """Non-blocking send; eager, so the request is already complete.

        The underlying detached comm is exposed on ``request.comm`` for
        callers that want to observe the transfer itself.
        """
        comm = self._post_eager(value, dest, tag, count, datatype)
        return Request(kind="send", source=self.rank, tag=tag,
                       completed=True, comm=comm)

    def issend(self, value: Any, dest: int, tag: int = 0,
               count: Optional[int] = None,
               datatype: Optional[Datatype] = None) -> Request:
        """Synchronous-mode non-blocking send (``MPI_Issend``).

        Unlike the eager :meth:`isend`, the returned request completes only
        once the receiver has fully received the message — complete it with
        :meth:`wait` / :meth:`test` / :meth:`waitany`, which drive the
        underlying (non-detached) s4u comm future.
        """
        self._check_rank(dest, "destination")
        size = payload_size(value, count, datatype)
        envelope = _Envelope(source=self.rank, dest=dest, tag=tag,
                             value=value, size=size)
        comm = self._box(dest).put_async(
            envelope, size=size,
            name=f"smpi:{self.rank}->{dest}:{tag}")
        return Request(kind="send", source=self.rank, tag=tag, comm=comm)

    def _matches(self, envelope: _Envelope, source: int, tag: int) -> bool:
        if source != ANY_SOURCE and envelope.source != source:
            return False
        if tag != ANY_TAG and envelope.tag != tag:
            return False
        return True

    # -- the receive machinery -----------------------------------------------------------
    def _ensure_inflight(self) -> Comm:
        """The (single) outstanding receive on this rank's mailbox."""
        if self._inflight is None:
            self._inflight = self._box(self.rank).get_async()
        return self._inflight

    def _pull_envelope(self, timeout: Optional[float]) -> _Envelope:
        """Wait for the next inbound message and consume the in-flight comm.

        A timeout withdraws the posted receive (synchronous-recv
        semantics, matching the pre-s4u behaviour): the mailbox must not
        keep a stale receive that would silently eat a later message.
        """
        comm = self._ensure_inflight()
        try:
            envelope = comm.wait(timeout)
        except SimTimeoutError:
            comm.cancel()
            self._inflight = None
            raise
        except Exception:
            if comm.is_over():
                self._inflight = None
            raise
        self._inflight = None
        return envelope

    def _take_completed_inflight(self) -> _Envelope:
        """Consume the terminated in-flight comm; raise if it failed.

        A failed/cancelled transfer must surface the same exception a
        blocking receive would, not deliver a bogus payload.
        """
        comm = self._inflight
        self._inflight = None
        if not comm.succeeded():
            comm.wait()          # raises the transfer's error
        return comm.get_payload()

    def _harvest_inflight(self) -> None:
        """Fold a terminated in-flight receive into the unexpected queue.

        Probes must see a message that already rendezvoused with the
        shared ``get_async`` (e.g. posted by an earlier ``test``): it has
        arrived even though no pending send sits on the mailbox anymore.
        """
        if self._inflight is not None and self._inflight.is_over():
            self._unexpected.append(self._take_completed_inflight())

    def _match_unexpected(self, source: int, tag: int) -> Optional[_Envelope]:
        for idx, envelope in enumerate(self._unexpected):
            if self._matches(envelope, source, tag):
                return self._unexpected.pop(idx)
        return None

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             timeout: Optional[float] = None,
             return_status: bool = False):
        """Blocking receive; returns the value (or ``(value, status)``)."""
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        # 1. look in the unexpected queue
        envelope = self._match_unexpected(source, tag)
        if envelope is not None:
            return self._deliver(envelope, return_status)
        # 2. pull from the mailbox until a matching message arrives
        while True:
            envelope = self._pull_envelope(timeout)
            if self._matches(envelope, source, tag):
                return self._deliver(envelope, return_status)
            self._unexpected.append(envelope)

    def _deliver(self, envelope: _Envelope, return_status: bool):
        status = Status(source=envelope.source, tag=envelope.tag,
                        size=envelope.size)
        if return_status:
            return envelope.value, status
        return envelope.value

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive request.

        Completed by :meth:`wait` / :meth:`test` / :meth:`waitany`, which
        drive the communicator's shared ``get_async`` future.  The receive
        is *posted* lazily, at the first progress call, so the simulated
        transfer dates are exactly those of a blocking receive issued at
        that point (the historical SMPI behaviour).
        """
        return Request(kind="recv", source=source, tag=tag)

    def _complete_recv(self, request: Request, envelope: _Envelope) -> None:
        request.value = envelope.value
        request.status = Status(source=envelope.source, tag=envelope.tag,
                                size=envelope.size)
        request.completed = True

    def wait(self, request: Request, timeout: Optional[float] = None) -> Any:
        """Complete a request; returns the received value for receives."""
        if request.completed:
            return request.value
        if request.kind == "recv":
            value, status = self.recv(request.source, request.tag,
                                      timeout=timeout, return_status=True)
            request.value = value
            request.status = status
            request.completed = True
            return value
        if request.comm is not None and not request.comm.is_over():
            request.comm.wait(timeout)
        request.completed = True
        return None

    def test(self, request: Request) -> bool:
        """Non-blocking completion probe (``MPI_Test``); drives progress.

        A failed transfer raises the same exception :meth:`wait` would.
        """
        if request.completed:
            return True
        if request.kind == "send":
            if request.comm is None:
                request.completed = True
            elif request.comm.test():
                if not request.comm.succeeded():
                    request.comm.wait()      # raises the transfer's error
                request.completed = True
            return request.completed
        envelope = self._match_unexpected(request.source, request.tag)
        if envelope is not None:
            self._complete_recv(request, envelope)
            return True
        while True:
            comm = self._ensure_inflight()
            if not comm.test():
                return False
            envelope = self._take_completed_inflight()
            if self._matches(envelope, request.source, request.tag):
                self._complete_recv(request, envelope)
                return True
            self._unexpected.append(envelope)

    def waitany(self, requests: List[Request],
                timeout: Optional[float] = None) -> Tuple[int, Any]:
        """Block until one request completes; returns ``(index, value)``.

        Mixed send/receive request lists are reaped through an s4u
        :class:`~repro.s4u.activity.ActivitySet` racing the underlying
        comm futures.  A request already returned by a previous
        ``waitany`` is inactive (like ``MPI_REQUEST_NULL``) and skipped.
        """
        active = [(idx, r) for idx, r in enumerate(requests) if not r.reaped]
        if not requests:
            raise MpiError("waitany needs at least one request")
        if not active:
            raise MpiError("waitany: every request was already reaped")

        def _reap(idx: int, request: Request) -> Tuple[int, Any]:
            request.reaped = True
            return idx, request.value

        while True:
            for idx, request in active:
                if request.completed:
                    return _reap(idx, request)
            for idx, request in active:
                if request.kind == "recv":
                    envelope = self._match_unexpected(request.source,
                                                      request.tag)
                    if envelope is not None:
                        self._complete_recv(request, envelope)
                        return _reap(idx, request)
            pending = ActivitySet()
            if any(r.kind == "recv" for _, r in active):
                pending.push(self._ensure_inflight())
            for _, request in active:
                if request.kind == "send" and request.comm is not None:
                    pending.push(request.comm)
            if pending.empty():
                raise MpiError("waitany: no completable request")
            try:
                done = pending.wait_any(timeout)
            except SimTimeoutError:
                # Withdraw the posted receive (same contract as
                # _pull_envelope): leaving it on the mailbox would let the
                # next send rendezvous before the rank's next progress
                # call, breaking the lazy-post timing.
                if self._inflight is not None and not self._inflight.is_over():
                    self._inflight.cancel()
                    self._inflight = None
                raise
            if self._inflight is not None and \
                    done._resolved() is self._inflight._resolved():
                envelope = self._take_completed_inflight()
                for idx, request in active:
                    if request.kind == "recv" and self._matches(
                            envelope, request.source, request.tag):
                        self._complete_recv(request, envelope)
                        return _reap(idx, request)
                self._unexpected.append(envelope)
            else:
                for idx, request in active:
                    if (request.kind == "send" and request.comm is not None
                            and request.comm.is_over()):
                        request.completed = True
                        return _reap(idx, request)

    def waitall(self, requests: List[Request]) -> List[Any]:
        """Complete every request, in order."""
        return [self.wait(request) for request in requests]

    def sendrecv(self, send_value: Any, dest: int, source: int,
                 send_tag: int = 0, recv_tag: int = 0) -> Any:
        """Combined send + receive (deadlock-free)."""
        self.send(send_value, dest, tag=send_tag)
        return self.recv(source=source, tag=recv_tag)

    def probe_unexpected(self) -> int:
        """Number of buffered unexpected messages (introspection for tests)."""
        return len(self._unexpected)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking ``MPI_Iprobe``: is a matching message available?

        Folds a message already captured by the shared in-flight receive
        into the unexpected queue, then checks that queue and scans *all*
        the mailbox's pending sends (a matching message may sit behind a
        non-matching one).  Nothing is consumed and no receive is posted.
        """
        self._harvest_inflight()
        if any(self._matches(envelope, source, tag)
               for envelope in self._unexpected):
            return True
        return any(isinstance(payload, _Envelope)
                   and self._matches(payload, source, tag)
                   for payload in self._box(self.rank).pending_payloads())

    # -- collectives (implemented in repro.smpi.collectives) ------------------------------------
    def barrier(self) -> None:
        from repro.smpi import collectives
        collectives.barrier(self)

    def bcast(self, value: Any, root: int = 0) -> Any:
        from repro.smpi import collectives
        return collectives.bcast(self, value, root)

    def reduce(self, value: Any, op=None, root: int = 0) -> Any:
        from repro.smpi import collectives
        return collectives.reduce(self, value, op, root)

    def allreduce(self, value: Any, op=None) -> Any:
        from repro.smpi import collectives
        return collectives.allreduce(self, value, op)

    def gather(self, value: Any, root: int = 0) -> Optional[List[Any]]:
        from repro.smpi import collectives
        return collectives.gather(self, value, root)

    def allgather(self, value: Any) -> List[Any]:
        from repro.smpi import collectives
        return collectives.allgather(self, value)

    def scatter(self, values: Optional[List[Any]], root: int = 0) -> Any:
        from repro.smpi import collectives
        return collectives.scatter(self, values, root)

    def alltoall(self, values: List[Any]) -> List[Any]:
        from repro.smpi import collectives
        return collectives.alltoall(self, values)

    # -- misc -----------------------------------------------------------------------------------
    def wtime(self) -> float:
        """Simulated time (``MPI_Wtime``)."""
        return self._actor.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator(id={self.id}, rank={self.rank}, size={self.size})"
