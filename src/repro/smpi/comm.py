"""Communicators, point-to-point messaging and requests.

Point-to-point semantics follow SMPI's *eager* protocol: ``send`` deposits
the message (the transfer is simulated asynchronously on the sender side)
while ``recv`` blocks until the matching message has fully arrived, so the
simulated completion time of a receive includes the network transfer
simulated by SURF.  Matching honours ``source``/``tag`` with the usual
``ANY_SOURCE`` / ``ANY_TAG`` wildcards and an unexpected-message queue.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.exceptions import MpiError, SimTimeoutError
from repro.msg.process import Process
from repro.msg.task import Task
from repro.smpi.datatypes import Datatype, payload_size

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.smpi.api import Smpi

__all__ = ["ANY_SOURCE", "ANY_TAG", "Status", "Request", "Communicator"]

#: Wildcards, as in MPI.
ANY_SOURCE = -1
ANY_TAG = -1

_comm_ids = itertools.count(0)


@dataclass
class Status:
    """Receive status: who sent the matched message, with which tag."""

    source: int
    tag: int
    size: float


@dataclass
class _Envelope:
    """One SMPI message as carried by an MSG task payload."""

    source: int
    dest: int
    tag: int
    value: Any
    size: float


@dataclass
class Request:
    """Handle on a non-blocking operation (``isend`` / ``irecv``)."""

    kind: str                       # "send" or "recv"
    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    value: Any = None
    status: Optional[Status] = None
    completed: bool = False


class Communicator:
    """An MPI communicator bound to one rank's view of the world.

    Each rank gets its own :class:`Communicator` instance (same ``comm_id``,
    different ``rank``), which is how real MPI programs experience
    ``MPI_COMM_WORLD``.
    """

    def __init__(self, smpi: "Smpi", comm_id: int, rank: int, size: int,
                 process: Process) -> None:
        self._smpi = smpi
        self.id = comm_id
        self.rank = rank
        self.size = size
        self._process = process
        #: Messages received from the mailbox but not yet matched.
        self._unexpected: List[_Envelope] = []

    # -- helpers ------------------------------------------------------------------------
    def _mailbox(self, rank: int) -> str:
        return f"smpi:{self.id}:{rank}"

    def _check_rank(self, rank: int, what: str) -> None:
        if not (0 <= rank < self.size):
            raise MpiError(f"{what} rank {rank} out of range 0..{self.size - 1}")

    # -- point-to-point --------------------------------------------------------------------
    def send(self, value: Any, dest: int, tag: int = 0,
             count: Optional[int] = None,
             datatype: Optional[Datatype] = None) -> None:
        """Standard-mode send (eager: returns once the message is deposited)."""
        self._check_rank(dest, "destination")
        size = payload_size(value, count, datatype)
        envelope = _Envelope(source=self.rank, dest=dest, tag=tag,
                             value=value, size=size)
        task = Task(f"smpi:{self.rank}->{dest}:{tag}", data_size=size,
                    payload=envelope)
        self._process.dsend(task, self._mailbox(dest))

    def isend(self, value: Any, dest: int, tag: int = 0,
              count: Optional[int] = None,
              datatype: Optional[Datatype] = None) -> Request:
        """Non-blocking send; the returned request is already complete."""
        self.send(value, dest, tag, count, datatype)
        return Request(kind="send", source=self.rank, tag=tag, completed=True)

    def _matches(self, envelope: _Envelope, source: int, tag: int) -> bool:
        if source != ANY_SOURCE and envelope.source != source:
            return False
        if tag != ANY_TAG and envelope.tag != tag:
            return False
        return True

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             timeout: Optional[float] = None,
             return_status: bool = False):
        """Blocking receive; returns the value (or ``(value, status)``)."""
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        # 1. look in the unexpected queue
        for idx, envelope in enumerate(self._unexpected):
            if self._matches(envelope, source, tag):
                self._unexpected.pop(idx)
                return self._deliver(envelope, return_status)
        # 2. pull from the mailbox until a matching message arrives
        while True:
            task = self._process.receive(self._mailbox(self.rank),
                                         timeout=timeout)
            envelope: _Envelope = task.payload
            if self._matches(envelope, source, tag):
                return self._deliver(envelope, return_status)
            self._unexpected.append(envelope)

    def _deliver(self, envelope: _Envelope, return_status: bool):
        status = Status(source=envelope.source, tag=envelope.tag,
                        size=envelope.size)
        if return_status:
            return envelope.value, status
        return envelope.value

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive request (completed by :meth:`wait`)."""
        return Request(kind="recv", source=source, tag=tag)

    def wait(self, request: Request, timeout: Optional[float] = None) -> Any:
        """Complete a request; returns the received value for receives."""
        if request.completed:
            return request.value
        if request.kind == "recv":
            value, status = self.recv(request.source, request.tag,
                                      timeout=timeout, return_status=True)
            request.value = value
            request.status = status
            request.completed = True
            return value
        request.completed = True
        return None

    def waitall(self, requests: List[Request]) -> List[Any]:
        """Complete every request, in order."""
        return [self.wait(request) for request in requests]

    def sendrecv(self, send_value: Any, dest: int, source: int,
                 send_tag: int = 0, recv_tag: int = 0) -> Any:
        """Combined send + receive (deadlock-free)."""
        self.send(send_value, dest, tag=send_tag)
        return self.recv(source=source, tag=recv_tag)

    def probe_unexpected(self) -> int:
        """Number of buffered unexpected messages (introspection for tests)."""
        return len(self._unexpected)

    # -- collectives (implemented in repro.smpi.collectives) ------------------------------------
    def barrier(self) -> None:
        from repro.smpi import collectives
        collectives.barrier(self)

    def bcast(self, value: Any, root: int = 0) -> Any:
        from repro.smpi import collectives
        return collectives.bcast(self, value, root)

    def reduce(self, value: Any, op=None, root: int = 0) -> Any:
        from repro.smpi import collectives
        return collectives.reduce(self, value, op, root)

    def allreduce(self, value: Any, op=None) -> Any:
        from repro.smpi import collectives
        return collectives.allreduce(self, value, op)

    def gather(self, value: Any, root: int = 0) -> Optional[List[Any]]:
        from repro.smpi import collectives
        return collectives.gather(self, value, root)

    def allgather(self, value: Any) -> List[Any]:
        from repro.smpi import collectives
        return collectives.allgather(self, value)

    def scatter(self, values: Optional[List[Any]], root: int = 0) -> Any:
        from repro.smpi import collectives
        return collectives.scatter(self, values, root)

    def alltoall(self, values: List[Any]) -> List[Any]:
        from repro.smpi import collectives
        return collectives.alltoall(self, values)

    # -- misc -----------------------------------------------------------------------------------
    def wtime(self) -> float:
        """Simulated time (``MPI_Wtime``)."""
        return self._process.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator(id={self.id}, rank={self.rank}, size={self.size})"
