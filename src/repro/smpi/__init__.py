"""SMPI — simulation of MPI applications (paper section "SMPI").

SMPI lets an existing MPI application be simulated on an arbitrary
(heterogeneous) platform: *"Automatic (but directed) benchmarking of
communication and computation costs during an application execution on an
homogeneous platform; easy simulation of the application on a heterogeneous
platform; no code modification required beyond inserting benchmarking
commands."*

Usage::

    from repro.platform import make_cluster
    from repro.smpi import SmpiWorld

    def my_mpi_program(mpi):
        comm = mpi.COMM_WORLD
        if comm.rank == 0:
            comm.send([1, 2, 3], dest=1, tag=7)
        elif comm.rank == 1:
            data = comm.recv(source=0, tag=7)

    world = SmpiWorld(make_cluster(num_hosts=4), num_ranks=4)
    world.run(my_mpi_program)

Rank functions are plain blocking code (thread contexts), exactly like real
MPI ranks; the simulated clock is read with ``mpi.wtime()``.
"""

from repro.smpi.api import Smpi, SmpiWorld
from repro.smpi.comm import ANY_SOURCE, ANY_TAG, Communicator, Request, Status
from repro.smpi.datatypes import (
    MPI_BYTE,
    MPI_CHAR,
    MPI_DOUBLE,
    MPI_FLOAT,
    MPI_INT,
    MPI_LONG,
    Datatype,
    payload_size,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Datatype",
    "MPI_BYTE",
    "MPI_CHAR",
    "MPI_DOUBLE",
    "MPI_FLOAT",
    "MPI_INT",
    "MPI_LONG",
    "Request",
    "Smpi",
    "SmpiWorld",
    "Status",
    "payload_size",
]
