"""The SMPI entry point: deploy an MPI-style program on a simulated platform.

:class:`SmpiWorld` creates one simulated process per MPI rank (each on its
own host, cycling through the platform's hosts when there are more ranks
than hosts) and hands every rank an :class:`Smpi` facade exposing
``COMM_WORLD``, ``wtime`` and the benchmarking sampler.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence

from repro.exceptions import MpiError
from repro.msg.environment import Environment
from repro.msg.process import Process
from repro.platform.platform import Platform
from repro.smpi.bench import SmpiSampler
from repro.smpi.comm import Communicator

__all__ = ["Smpi", "SmpiWorld"]

_world_ids = itertools.count(0)


class Smpi:
    """Per-rank MPI facade handed to the user's rank function."""

    def __init__(self, world: "SmpiWorld", rank: int, process: Process) -> None:
        self.world = world
        self.rank = rank
        self.size = world.num_ranks
        self.process = process
        self.COMM_WORLD = Communicator(self, world.comm_id, rank, world.num_ranks,
                                       process)
        self.sampler = SmpiSampler(process,
                                   reference_speed=world.reference_speed)

    def wtime(self) -> float:
        """Simulated time, like ``MPI_Wtime``."""
        return self.process.now

    @property
    def host_name(self) -> str:
        """Name of the (simulated) host this rank runs on."""
        return self.process.host.name

    def compute(self, flops: float) -> None:
        """Charge ``flops`` of local computation to this rank."""
        self.sampler.charge_flops(flops)


class SmpiWorld:
    """Deploys an MPI program over the hosts of a platform."""

    def __init__(self, platform: Platform, num_ranks: int,
                 hosts: Optional[Sequence[str]] = None,
                 reference_speed: Optional[float] = None,
                 recorder=None) -> None:
        if num_ranks < 1:
            raise MpiError("need at least one rank")
        self.platform = platform
        self.num_ranks = num_ranks
        self.comm_id = next(_world_ids)
        self.reference_speed = reference_speed
        self.env = Environment(platform, context_factory="thread",
                               recorder=recorder)
        host_names = list(hosts) if hosts is not None else platform.host_names()
        if not host_names:
            raise MpiError("the platform has no host")
        #: Host assigned to each rank (round-robin when ranks > hosts).
        self.rank_hosts: List[str] = [
            host_names[rank % len(host_names)] for rank in range(num_ranks)
        ]
        self.ranks: Dict[int, Smpi] = {}

    def run(self, func: Callable, *args,
            until: Optional[float] = None, **kwargs) -> float:
        """Run ``func(mpi, *args)`` on every rank; returns the simulated time.

        ``func`` is the MPI program: it is called once per rank with that
        rank's :class:`Smpi` facade as first argument (plain blocking code,
        no ``yield``).
        """
        world = self

        def body(process: Process, rank: int):
            mpi = Smpi(world, rank, process)
            world.ranks[rank] = mpi
            func(mpi, *args, **kwargs)

        for rank in range(self.num_ranks):
            self.env.create_process(f"rank-{rank}", self.rank_hosts[rank],
                                    body, rank)
        return self.env.run(until)

    @property
    def now(self) -> float:
        return self.env.now
