"""The SMPI entry point: deploy an MPI-style program on a simulated platform.

:class:`SmpiWorld` creates one s4u actor per MPI rank (each on its own
host, cycling through the platform's hosts when there are more ranks than
hosts) and hands every rank an :class:`Smpi` facade exposing
``COMM_WORLD``, ``wtime`` and the benchmarking sampler.  Rank functions are
plain blocking code (thread contexts), exactly like real MPI ranks.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence

from repro.exceptions import MpiError
from repro.platform.platform import Platform
from repro.s4u.actor import Actor
from repro.s4u.engine import Engine
from repro.smpi.bench import SmpiSampler
from repro.smpi.comm import Communicator

__all__ = ["Smpi", "SmpiWorld"]

_world_ids = itertools.count(0)


class Smpi:
    """Per-rank MPI facade handed to the user's rank function."""

    def __init__(self, world: "SmpiWorld", rank: int, actor: Actor) -> None:
        self.world = world
        self.rank = rank
        self.size = world.num_ranks
        self.actor = actor
        self.COMM_WORLD = Communicator(self, world.comm_id, rank,
                                       world.num_ranks, actor)
        self.sampler = SmpiSampler(actor,
                                   reference_speed=world.reference_speed)

    @property
    def process(self) -> Actor:
        """Pre-s4u name of :attr:`actor`."""
        return self.actor

    def wtime(self) -> float:
        """Simulated time, like ``MPI_Wtime``."""
        return self.actor.now

    @property
    def host_name(self) -> str:
        """Name of the (simulated) host this rank runs on."""
        return self.actor.host.name

    def compute(self, flops: float) -> None:
        """Charge ``flops`` of local computation to this rank."""
        self.sampler.charge_flops(flops)


class SmpiWorld:
    """Deploys an MPI program over the hosts of a platform."""

    def __init__(self, platform: Platform, num_ranks: int,
                 hosts: Optional[Sequence[str]] = None,
                 reference_speed: Optional[float] = None,
                 recorder=None) -> None:
        if num_ranks < 1:
            raise MpiError("need at least one rank")
        self.platform = platform
        self.num_ranks = num_ranks
        self.comm_id = next(_world_ids)
        self.reference_speed = reference_speed
        self.engine = Engine(platform, context_factory="thread",
                             recorder=recorder)
        host_names = list(hosts) if hosts is not None else platform.host_names()
        if not host_names:
            raise MpiError("the platform has no host")
        #: Host assigned to each rank (round-robin when ranks > hosts).
        self.rank_hosts: List[str] = [
            host_names[rank % len(host_names)] for rank in range(num_ranks)
        ]
        self.ranks: Dict[int, Smpi] = {}

    def run(self, func: Callable, *args,
            until: Optional[float] = None, **kwargs) -> float:
        """Run ``func(mpi, *args)`` on every rank; returns the simulated time.

        ``func`` is the MPI program: it is called once per rank with that
        rank's :class:`Smpi` facade as first argument (plain blocking code,
        no ``yield``).
        """
        world = self

        def body(actor: Actor, rank: int):
            mpi = Smpi(world, rank, actor)
            world.ranks[rank] = mpi
            func(mpi, *args, **kwargs)

        for rank in range(self.num_ranks):
            self.engine.add_actor(f"rank-{rank}", self.rank_hosts[rank],
                                  body, rank)
        return self.engine.run(until)

    @property
    def now(self) -> float:
        return self.engine.now
