"""SMPI benchmarking macros (``SMPI_BENCH_ONCE_RUN_ONCE_BEGIN/END``).

The paper's SMPI panel inserts benchmarking commands around the expensive
local kernel (the CBLAS ``dgemm`` call) so that:

* when the application is *benchmarked* on a homogeneous platform, the
  block really runs and its duration is recorded;
* when the application is *simulated* (possibly on a heterogeneous
  platform), the block is skipped and the recorded duration — scaled by the
  relative speed of the simulated host — is injected as simulated
  computation.

:class:`SmpiSampler` implements that policy on top of
:class:`repro.gras.bench.BenchRecorder` (the same mechanism GRAS uses).
"""

from __future__ import annotations

import contextlib
import time
from typing import Iterator, Optional

from repro.gras.bench import BenchRecorder
from repro.s4u.actor import Actor

__all__ = ["SmpiSampler"]


class SmpiSampler:
    """Per-rank sampling helper injected in rank code as ``mpi.sampler``."""

    def __init__(self, actor: Actor,
                 reference_speed: Optional[float] = None) -> None:
        self._actor = actor
        self.recorder = BenchRecorder()
        #: Speed (flop/s) of the machine the real measurements were taken
        #: on.  Defaults to the simulated host's own speed, meaning "the
        #: benchmark ran on this very machine".
        self.reference_speed = reference_speed or actor.host.speed

    @contextlib.contextmanager
    def bench_once(self, key: str) -> Iterator[bool]:
        """Run the block for real only the first time; always charge it.

        Yields ``True`` when the block must actually execute.  The charged
        simulated duration is ``measured_time * reference_speed /
        host_speed``, which is how SMPI lets a measurement taken on a
        homogeneous platform drive the simulation of a heterogeneous one.
        """
        should_run = not self.recorder.has(key)
        start = time.perf_counter()
        try:
            yield should_run
        finally:
            if should_run:
                self.recorder.record(key, time.perf_counter() - start)
            self._charge(self.recorder.duration_of(key))

    @contextlib.contextmanager
    def bench_always(self, key: str) -> Iterator[None]:
        """Run and measure the block every time (``SMPI_BENCH_ALWAYS``)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            self.recorder.record(key, duration)
            self._charge(duration)

    def charge_flops(self, flops: float) -> None:
        """Directly charge a known amount of computation to this rank."""
        if flops > 0:
            self._actor.execute(flops, name="smpi-kernel")

    def _charge(self, duration: float) -> None:
        if duration <= 0:
            return
        flops = duration * self.reference_speed
        self._actor.execute(flops, name="smpi-bench")
