"""Collective operations built on SMPI point-to-point messaging.

Algorithms are the classic ones MPI implementations of the paper's era used:

* **broadcast / reduce**: binomial tree (log₂ P rounds);
* **allreduce**: reduce to root then broadcast;
* **gather / scatter**: linear to/from the root;
* **allgather**: gather + broadcast of the assembled list;
* **alltoall**: pairwise exchange with a rank-rotation schedule;
* **barrier**: allreduce of a token.

Each function takes the calling rank's :class:`~repro.smpi.comm.Communicator`
and must be called by *every* rank of the communicator (like real MPI).
Internal messages use negative tags so they never collide with user tags.
The plumbing rides the communicator's s4u transport: every hop is a raw
envelope payload deposited by a detached async put and drained through the
rank's mailbox — no task wrappers anywhere on the collective hot path.
"""

from __future__ import annotations

import operator
from functools import reduce as _functools_reduce
from typing import Any, Callable, List, Optional

from repro.exceptions import MpiError

__all__ = ["barrier", "bcast", "reduce", "allreduce", "gather", "allgather",
           "scatter", "alltoall", "SUM", "MAX", "MIN", "PROD"]

# Reserved (negative) tag space for the collective plumbing.
_TAG_BCAST = -10
_TAG_REDUCE = -11
_TAG_GATHER = -12
_TAG_SCATTER = -13
_TAG_ALLTOALL = -14
_TAG_BARRIER = -15
_TAG_ALLGATHER = -16


def SUM(a: Any, b: Any) -> Any:
    """Default reduction operator (element-wise ``+`` for sequences/arrays)."""
    try:
        return a + b
    except TypeError:
        raise MpiError(f"cannot SUM {type(a).__name__} and {type(b).__name__}")


def MAX(a: Any, b: Any) -> Any:
    return a if a >= b else b


def MIN(a: Any, b: Any) -> Any:
    return a if a <= b else b


def PROD(a: Any, b: Any) -> Any:
    return a * b


def _relative(rank: int, root: int, size: int) -> int:
    return (rank - root) % size


def _absolute(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size


def bcast(comm, value: Any, root: int = 0) -> Any:
    """Binomial-tree broadcast: every rank returns the root's value."""
    comm._check_rank(root, "root")
    size = comm.size
    if size == 1:
        return value
    vrank = _relative(comm.rank, root, size)
    # Receive phase: a non-root rank receives from the rank obtained by
    # clearing its lowest set bit; ``mask`` ends at that lowest set bit.
    mask = 1
    while mask < size:
        if vrank & mask:
            value = comm.recv(source=_absolute(vrank - mask, root, size),
                              tag=_TAG_BCAST)
            break
        mask <<= 1
    # Send phase: forward to the ranks whose lowest set bit is below ours,
    # from the highest sub-tree down (classic binomial broadcast order).
    mask >>= 1
    while mask >= 1:
        child = vrank + mask
        if child < size:
            comm.send(value, dest=_absolute(child, root, size),
                      tag=_TAG_BCAST)
        mask >>= 1
    return value


def reduce(comm, value: Any, op: Optional[Callable[[Any, Any], Any]] = None,
           root: int = 0) -> Optional[Any]:
    """Binomial-tree reduction; only the root returns the reduced value."""
    comm._check_rank(root, "root")
    op = op or SUM
    size = comm.size
    vrank = _relative(comm.rank, root, size)
    accumulated = value
    mask = 1
    while mask < size:
        if vrank & mask:
            comm.send(accumulated, dest=_absolute(vrank - mask, root, size),
                      tag=_TAG_REDUCE)
            break
        partner = vrank + mask
        if partner < size:
            received = comm.recv(source=_absolute(partner, root, size),
                                 tag=_TAG_REDUCE)
            accumulated = op(accumulated, received)
        mask <<= 1
    return accumulated if comm.rank == root else None


def allreduce(comm, value: Any,
              op: Optional[Callable[[Any, Any], Any]] = None) -> Any:
    """Reduce-to-root followed by broadcast."""
    result = reduce(comm, value, op, root=0)
    return bcast(comm, result, root=0)


def gather(comm, value: Any, root: int = 0) -> Optional[List[Any]]:
    """Linear gather; the root returns the list ordered by rank."""
    comm._check_rank(root, "root")
    if comm.rank != root:
        comm.send(value, dest=root, tag=_TAG_GATHER)
        return None
    result: List[Any] = [None] * comm.size
    result[root] = value
    for source in range(comm.size):
        if source == root:
            continue
        result[source] = comm.recv(source=source, tag=_TAG_GATHER)
    return result


def allgather(comm, value: Any) -> List[Any]:
    """Gather to rank 0 then broadcast the assembled list."""
    gathered = gather(comm, value, root=0)
    return bcast(comm, gathered, root=0)


def scatter(comm, values: Optional[List[Any]], root: int = 0) -> Any:
    """Linear scatter; every rank returns its slice of the root's list."""
    comm._check_rank(root, "root")
    if comm.rank == root:
        if values is None or len(values) != comm.size:
            raise MpiError(
                f"scatter root needs a list of exactly {comm.size} items")
        for dest in range(comm.size):
            if dest == root:
                continue
            comm.send(values[dest], dest=dest, tag=_TAG_SCATTER)
        return values[root]
    return comm.recv(source=root, tag=_TAG_SCATTER)


def alltoall(comm, values: List[Any]) -> List[Any]:
    """Personalised all-to-all exchange.

    Every rank provides one value per destination and receives one value
    per source.  The eager send protocol makes the naive schedule
    deadlock-free, but we still post the sends before the receives.
    """
    if len(values) != comm.size:
        raise MpiError(f"alltoall needs exactly {comm.size} values")
    result: List[Any] = [None] * comm.size
    result[comm.rank] = values[comm.rank]
    for offset in range(1, comm.size):
        dest = (comm.rank + offset) % comm.size
        comm.send(values[dest], dest=dest, tag=_TAG_ALLTOALL)
    for offset in range(1, comm.size):
        source = (comm.rank - offset) % comm.size
        result[source] = comm.recv(source=source, tag=_TAG_ALLTOALL)
    return result


def barrier(comm) -> None:
    """Synchronise every rank (reduce + broadcast of a token)."""
    token = allreduce(comm, 1, op=SUM)
    if token != comm.size:
        raise MpiError("barrier token mismatch (internal error)")
