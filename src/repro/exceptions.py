"""Exception hierarchy shared by every layer of the reproduction.

The original SimGrid C library reports errors through ``MSG_error_t`` codes
(``MSG_OK``, ``MSG_HOST_FAILURE``, ``MSG_TRANSFER_FAILURE``,
``MSG_TIMEOUT`` ...) and through the GRAS exception mechanism.  The Python
reproduction maps those onto a conventional exception hierarchy rooted at
:class:`SimGridError` so user code can catch broad or narrow classes of
failures.
"""

from __future__ import annotations


class SimGridError(Exception):
    """Base class for every error raised by the simulator."""


class PlatformError(SimGridError):
    """The platform description is invalid (unknown host, no route, ...)."""


class NoRouteError(PlatformError):
    """No route exists between two hosts of the platform."""


class TraceError(PlatformError):
    """A resource trace is invalid for its intended use.

    Raised at *load* time (platform declaration or trace registration),
    naming the offending trace, rather than mid-simulation when the bad
    value would finally be applied — e.g. an availability trace whose
    scaling factor falls outside ``[0, 1]``.
    """


class HostFailureError(SimGridError):
    """The host running an activity (or its peer) failed.

    Mirrors ``MSG_HOST_FAILURE``: raised inside a simulated process when the
    host executing it is turned off by a state trace or an explicit failure
    injection, or when the host on which it executes a task dies.
    """


class TransferFailureError(SimGridError):
    """A data transfer was interrupted (link or peer host failed).

    Mirrors ``MSG_TRANSFER_FAILURE``.
    """


class SimTimeoutError(SimGridError, TimeoutError):
    """A blocking operation did not complete before its timeout.

    Mirrors ``MSG_TIMEOUT``.  Named ``SimTimeoutError`` to avoid shadowing
    the built-in :class:`TimeoutError`, of which it is also a subclass so
    that ``except TimeoutError`` works as expected.
    """


class CancelledError(SimGridError):
    """The activity was cancelled by another process (``MSG_TASK_CANCELED``)."""


class ProcessKilledError(SimGridError):
    """Raised inside a simulated process when it is killed.

    User process code normally should *not* catch this (or should re-raise
    it) so the kernel can tear the process down.
    """


class DeadlockError(SimGridError):
    """Every remaining process is blocked and no activity can make progress."""


class SnapshotError(SimGridError):
    """An engine snapshot was requested at a non-quiescent point.

    ``Engine.snapshot()`` serializes the whole simulation state, but actor
    bodies are live generator frames that cannot be pickled: a snapshot is
    only possible while no actor is alive (e.g. right after :meth:`run`
    completed).  Pending timers, traces and kernel state all travel.
    """


class NetworkError(SimGridError):
    """A GRAS real-life communication error (socket failure, peer gone)."""


class UnknownMessageError(SimGridError):
    """A GRAS process received a message whose type was never declared."""


class DataDescriptionError(SimGridError):
    """A GRAS data description is inconsistent or cannot encode a value."""


class MpiError(SimGridError):
    """An SMPI call was used incorrectly (bad rank, mismatched collective...)."""
