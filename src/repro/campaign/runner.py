"""Multi-process campaign driver: seed × config grids over forked workers.

One campaign = one ``run_fn`` applied to a list of :class:`ExperimentSpec`
(seed, config) points.  :func:`run_campaign` executes the grid either

* **cold** — ``run_fn(seed, config)`` builds its own engine per run, or
* **forked** — every run starts from one warmed ``engine.snapshot()``
  blob: the worker calls :meth:`Engine.restore` and hands the resumed
  engine to ``run_fn(engine, seed, config)``, so the common prefix
  (platform realization + warm-up phase) is paid once instead of once
  per run.

Process discipline mirrors the kernel's ``REPRO_PARALLEL`` executor
(:mod:`repro.surf.shard`): ``fork``-context workers over pipes, static
round-robin task assignment (deterministic — the result of a campaign is
a pure function of ``run_fn`` and the grid, independent of ``workers``),
and any worker death degrades that worker's share to serial execution in
the parent instead of failing the campaign.  The snapshot blob and
``run_fn`` travel to the workers by fork inheritance, never by pickle,
so ``run_fn`` may be a closure and the blob is shared copy-on-write.

Results are plain per-run metric dicts (numbers, or nested dicts of
numbers — ``solver_stats()`` / ``kernel_stats()`` drop in directly);
:func:`summarize` flattens them and reduces each metric across runs to
``{min, median, p95, max, mean, n}``.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import traceback
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple, Union)

from repro.exceptions import SimGridError

__all__ = [
    "CampaignError",
    "CampaignResult",
    "ExperimentSpec",
    "default_campaign_workers",
    "grid",
    "run_campaign",
    "summarize",
]


class CampaignError(SimGridError):
    """One or more experiments of a campaign raised; the campaign's result
    would be incomplete, so the whole campaign fails with the collected
    tracebacks instead of silently dropping runs."""


@dataclass(frozen=True)
class ExperimentSpec:
    """One point of a campaign grid.

    ``config`` is an arbitrary mapping handed verbatim to ``run_fn``
    (``None`` for config-less sweeps); ``label`` tags the run in reports,
    defaulting to the config's own ``"label"`` key when present.
    """

    seed: int
    config: Optional[Mapping[str, Any]] = None
    label: str = ""


def grid(seeds: Iterable[int],
         configs: Optional[Sequence[Optional[Mapping[str, Any]]]] = None,
         ) -> List[ExperimentSpec]:
    """Cross ``seeds`` with ``configs`` into a flat list of specs.

    The grid is ordered config-major (all seeds of config 0, then all
    seeds of config 1, ...), and that order is the canonical run order of
    the campaign: serial and parallel execution both report results in
    grid order.
    """
    config_list: List[Optional[Mapping[str, Any]]] = (
        list(configs) if configs is not None else [None])
    if not config_list:
        raise ValueError("configs must not be an empty sequence")
    specs: List[ExperimentSpec] = []
    for index, config in enumerate(config_list):
        label = ""
        if isinstance(config, Mapping) and "label" in config:
            label = str(config["label"])
        elif len(config_list) > 1:
            label = f"cfg{index}"
        for seed in seeds:
            specs.append(ExperimentSpec(int(seed), config, label))
    if not specs:
        raise ValueError("the seed iterable produced no experiments")
    return specs


def default_campaign_workers() -> int:
    """Worker count from ``REPRO_CAMPAIGN_WORKERS`` (0/unset-empty = serial).

    Falls back to ``REPRO_PARALLEL`` so a CI matrix that already switches
    the kernel executor exercises the campaign pool too, then to
    ``cpu_count - 1`` for ``auto``.
    """
    raw = os.environ.get("REPRO_CAMPAIGN_WORKERS")
    if raw is None:
        raw = os.environ.get("REPRO_PARALLEL", "0")
    raw = raw.strip().lower()
    if raw == "auto":
        return max(0, (os.cpu_count() or 1) - 1)
    try:
        workers = int(raw)
    except ValueError:
        return 0
    return max(0, workers)


# ------------------------------------------------------------------------------
# aggregation
# ------------------------------------------------------------------------------
def _flatten(metrics: Mapping[str, Any], prefix: str,
             out: Dict[str, float]) -> None:
    for key in metrics:
        value = metrics[key]
        name = f"{prefix}{key}"
        if isinstance(value, Mapping):
            _flatten(value, name + ".", out)
        elif isinstance(value, bool):
            out[name] = float(value)
        elif isinstance(value, (int, float)):
            out[name] = float(value)
        # non-numeric leaves (labels, lists...) are identity, not metrics


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile (no interpolation) of an ascending list."""
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def summarize(metric_dicts: Sequence[Mapping[str, Any]]
              ) -> Dict[str, Dict[str, float]]:
    """Reduce per-run metric dicts to per-metric distribution summaries.

    Nested dicts flatten with dotted keys (``kernel.updates``); each
    metric present in at least one run maps to ``{min, median, p95, max,
    mean, n}`` where ``n`` counts the runs reporting it.
    """
    series: Dict[str, List[float]] = {}
    for metrics in metric_dicts:
        flat: Dict[str, float] = {}
        _flatten(metrics, "", flat)
        for name, value in flat.items():
            series.setdefault(name, []).append(value)
    summary: Dict[str, Dict[str, float]] = {}
    for name in sorted(series):
        values = sorted(series[name])
        summary[name] = {
            "min": values[0],
            "median": _percentile(values, 0.5),
            "p95": _percentile(values, 0.95),
            "max": values[-1],
            "mean": sum(values) / len(values),
            "n": len(values),
        }
    return summary


# ------------------------------------------------------------------------------
# execution
# ------------------------------------------------------------------------------
def _execute_one(run_fn: Callable[..., Mapping[str, Any]],
                 spec: ExperimentSpec,
                 snapshot: Optional[bytes]) -> Mapping[str, Any]:
    if snapshot is None:
        metrics = run_fn(spec.seed, spec.config)
    else:
        from repro.s4u.engine import Engine
        engine = Engine.restore(snapshot)
        try:
            metrics = run_fn(engine, spec.seed, spec.config)
        finally:
            engine.close()
    if not isinstance(metrics, Mapping):
        raise TypeError(
            f"run_fn must return a metrics mapping, got "
            f"{type(metrics).__name__} for seed={spec.seed}")
    return metrics


def _worker_main(conn, run_fn, tasks: List[Tuple[int, ExperimentSpec]],
                 snapshot: Optional[bytes]) -> None:
    """Worker body: execute an assigned share, stream (index, status, payload).

    Every task answers exactly once — errors travel as formatted
    tracebacks rather than killing the worker, so one failed experiment
    does not discard its siblings' results.
    """
    try:
        for index, spec in tasks:
            try:
                payload: Any = dict(_execute_one(run_fn, spec, snapshot))
                reply = (index, "ok", payload)
            except BaseException:
                reply = (index, "error", traceback.format_exc())
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):  # parent gone; stop quietly
                return
            except Exception:
                conn.send((index, "error",
                           f"seed={spec.seed}: result not picklable:\n"
                           + traceback.format_exc()))
    finally:
        conn.close()


def _run_parallel(run_fn, specs: List[ExperimentSpec],
                  snapshot: Optional[bytes], workers: int,
                  results: List[Optional[Mapping[str, Any]]],
                  errors: Dict[int, str]) -> int:
    """Fan the grid over fork workers; returns the worker-death count.

    Tasks are assigned round-robin *before* starting (static, so the
    assignment is deterministic); a worker that dies mid-share simply
    leaves its unanswered tasks as ``None`` for the caller's serial
    sweep.
    """
    ctx = multiprocessing.get_context("fork")
    shares: List[List[Tuple[int, ExperimentSpec]]] = [
        [] for _ in range(workers)]
    for index, spec in enumerate(specs):
        shares[index % workers].append((index, spec))
    procs = []
    for share in shares:
        if not share:
            continue
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_worker_main,
                           args=(child_conn, run_fn, share, snapshot),
                           daemon=True)
        proc.start()
        child_conn.close()
        procs.append((parent_conn, proc, share))
    deaths = 0
    for parent_conn, proc, share in procs:
        answered = 0
        try:
            while answered < len(share):
                index, status, payload = parent_conn.recv()
                answered += 1
                if status == "ok":
                    results[index] = payload
                else:
                    errors[index] = payload
        except (EOFError, OSError):
            deaths += 1  # leftover tasks rerun serially in the parent
        finally:
            parent_conn.close()
        proc.join(timeout=30.0)
        if proc.is_alive():  # pragma: no cover - defensive
            proc.terminate()
            proc.join()
    return deaths


def run_campaign(run_fn: Callable[..., Mapping[str, Any]],
                 experiments: Iterable[Union[int, ExperimentSpec]], *,
                 workers: Optional[int] = None,
                 snapshot: Optional[bytes] = None) -> "CampaignResult":
    """Run every experiment, in-process or over forked workers.

    Parameters
    ----------
    run_fn:
        ``run_fn(seed, config) -> metrics`` without a snapshot, or
        ``run_fn(engine, seed, config) -> metrics`` with one — the engine
        is freshly restored from the blob for each run and closed after.
        Must be deterministic in its arguments: the campaign result is
        then independent of ``workers``.
    experiments:
        :class:`ExperimentSpec` items (see :func:`grid`); bare ints are
        promoted to config-less specs.
    workers:
        Worker process count; ``None`` reads
        :func:`default_campaign_workers`, ``0`` runs serially in-process.
        Forking requires the POSIX ``fork`` start method; where that is
        unavailable the campaign silently runs serially.
    snapshot:
        Warmed-engine blob from :meth:`Engine.snapshot`; enables the
        fork-per-run mode described above.

    Raises :class:`CampaignError` if any experiment raised (after all
    others finished), so a result always covers the full grid.
    """
    specs: List[ExperimentSpec] = [
        spec if isinstance(spec, ExperimentSpec) else ExperimentSpec(int(spec))
        for spec in experiments]
    if not specs:
        raise ValueError("run_campaign needs at least one experiment")
    if workers is None:
        workers = default_campaign_workers()
    workers = min(int(workers), len(specs))
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        workers = 0

    results: List[Optional[Mapping[str, Any]]] = [None] * len(specs)
    errors: Dict[int, str] = {}
    fallbacks = 0
    if workers >= 1:
        fallbacks = _run_parallel(
            run_fn, specs, snapshot, workers, results, errors)
    for index, spec in enumerate(specs):  # serial mode + death leftovers
        if results[index] is None and index not in errors:
            try:
                results[index] = dict(_execute_one(run_fn, spec, snapshot))
            except Exception:
                errors[index] = traceback.format_exc()
    if errors:
        first = min(errors)
        raise CampaignError(
            f"{len(errors)}/{len(specs)} experiments failed; first failure "
            f"(seed={specs[first].seed}, label={specs[first].label!r}):\n"
            f"{errors[first]}")
    runs = [
        {"seed": spec.seed, "label": spec.label, "metrics": results[index]}
        for index, spec in enumerate(specs)]
    return CampaignResult(specs=specs, runs=runs, workers=workers,
                          forked=snapshot is not None, fallbacks=fallbacks)


@dataclass
class CampaignResult:
    """The outcome of one :func:`run_campaign` call, in grid order."""

    specs: List[ExperimentSpec]
    runs: List[Dict[str, Any]]
    workers: int
    forked: bool
    fallbacks: int = 0

    def metrics(self) -> List[Mapping[str, Any]]:
        """The raw per-run metric dicts, in grid order."""
        return [run["metrics"] for run in self.runs]

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-metric distribution summaries (see :func:`summarize`)."""
        return summarize(self.metrics())

    def to_report(self, scenario: str = "campaign") -> Dict[str, Any]:
        """BENCH-style JSON document: identity, summaries, per-run rows."""
        return {
            "schema": "repro-campaign/1",
            "scenario": scenario,
            "runs": len(self.runs),
            "workers": self.workers,
            "forked": self.forked,
            "fallbacks": self.fallbacks,
            "metrics": self.summary(),
            "per_run": self.runs,
        }

    def write_json(self, path: str, scenario: str = "campaign") -> None:
        """Write :meth:`to_report` to ``path`` (pretty-printed, trailing \\n)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_report(scenario), handle, indent=2,
                      sort_keys=False)
            handle.write("\n")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CampaignResult(runs={len(self.runs)}, workers={self.workers},"
                f" forked={self.forked}, fallbacks={self.fallbacks})")
