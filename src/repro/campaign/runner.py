"""Multi-process campaign driver: seed × config grids over forked workers.

One campaign = one ``run_fn`` applied to a list of :class:`ExperimentSpec`
(seed, config) points.  :func:`run_campaign` executes the grid either

* **cold** — ``run_fn(seed, config)`` builds its own engine per run, or
* **forked** — every run starts from one warmed ``engine.snapshot()``
  blob: the worker calls :meth:`Engine.restore` and hands the resumed
  engine to ``run_fn(engine, seed, config)``, so the common prefix
  (platform realization + warm-up phase) is paid once instead of once
  per run.

Process discipline mirrors the kernel's ``REPRO_PARALLEL`` executor
(:mod:`repro.surf.shard`): ``fork``-context workers over pipes, static
round-robin task assignment (deterministic — the result of a campaign is
a pure function of ``run_fn`` and the grid, independent of ``workers``),
and any worker death degrades that worker's share to serial execution in
the parent instead of failing the campaign.  The snapshot blob and
``run_fn`` travel to the workers by fork inheritance, never by pickle,
so ``run_fn`` may be a closure and the blob is shared copy-on-write.

Results are plain per-run metric dicts (numbers, or nested dicts of
numbers — ``solver_stats()`` / ``kernel_stats()`` drop in directly);
:func:`summarize` flattens them and reduces each metric across runs to
``{min, median, p95, max, mean, n}``.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import traceback
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple, Union)

from repro.exceptions import SimGridError

__all__ = [
    "CampaignError",
    "CampaignResult",
    "ExperimentSpec",
    "default_campaign_workers",
    "default_run_timeout",
    "grid",
    "run_campaign",
    "summarize",
]


class CampaignError(SimGridError):
    """One or more experiments of a campaign raised; the campaign's result
    would be incomplete, so the whole campaign fails with the collected
    tracebacks instead of silently dropping runs."""


@dataclass(frozen=True)
class ExperimentSpec:
    """One point of a campaign grid.

    ``config`` is an arbitrary mapping handed verbatim to ``run_fn``
    (``None`` for config-less sweeps); ``label`` tags the run in reports,
    defaulting to the config's own ``"label"`` key when present.
    """

    seed: int
    config: Optional[Mapping[str, Any]] = None
    label: str = ""


def grid(seeds: Iterable[int],
         configs: Optional[Sequence[Optional[Mapping[str, Any]]]] = None,
         ) -> List[ExperimentSpec]:
    """Cross ``seeds`` with ``configs`` into a flat list of specs.

    The grid is ordered config-major (all seeds of config 0, then all
    seeds of config 1, ...), and that order is the canonical run order of
    the campaign: serial and parallel execution both report results in
    grid order.
    """
    config_list: List[Optional[Mapping[str, Any]]] = (
        list(configs) if configs is not None else [None])
    if not config_list:
        raise ValueError("configs must not be an empty sequence")
    specs: List[ExperimentSpec] = []
    for index, config in enumerate(config_list):
        label = ""
        if isinstance(config, Mapping) and "label" in config:
            label = str(config["label"])
        elif len(config_list) > 1:
            label = f"cfg{index}"
        for seed in seeds:
            specs.append(ExperimentSpec(int(seed), config, label))
    if not specs:
        raise ValueError("the seed iterable produced no experiments")
    return specs


def default_campaign_workers() -> int:
    """Worker count from ``REPRO_CAMPAIGN_WORKERS`` (0/unset-empty = serial).

    Falls back to ``REPRO_PARALLEL`` so a CI matrix that already switches
    the kernel executor exercises the campaign pool too, then to
    ``cpu_count - 1`` for ``auto``.
    """
    raw = os.environ.get("REPRO_CAMPAIGN_WORKERS")
    if raw is None:
        raw = os.environ.get("REPRO_PARALLEL", "0")
    raw = raw.strip().lower()
    if raw == "auto":
        return max(0, (os.cpu_count() or 1) - 1)
    try:
        workers = int(raw)
    except ValueError:
        return 0
    return max(0, workers)


# ------------------------------------------------------------------------------
# aggregation
# ------------------------------------------------------------------------------
def _flatten(metrics: Mapping[str, Any], prefix: str,
             out: Dict[str, float]) -> None:
    for key in metrics:
        value = metrics[key]
        name = f"{prefix}{key}"
        if isinstance(value, Mapping):
            _flatten(value, name + ".", out)
        elif isinstance(value, bool):
            out[name] = float(value)
        elif isinstance(value, (int, float)):
            out[name] = float(value)
        # non-numeric leaves (labels, lists...) are identity, not metrics


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile (no interpolation) of an ascending list."""
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def summarize(metric_dicts: Sequence[Mapping[str, Any]]
              ) -> Dict[str, Dict[str, float]]:
    """Reduce per-run metric dicts to per-metric distribution summaries.

    Nested dicts flatten with dotted keys (``kernel.updates``); each
    metric present in at least one run maps to ``{min, median, p95, max,
    mean, n}`` where ``n`` counts the runs reporting it.
    """
    series: Dict[str, List[float]] = {}
    for metrics in metric_dicts:
        flat: Dict[str, float] = {}
        _flatten(metrics, "", flat)
        for name, value in flat.items():
            series.setdefault(name, []).append(value)
    summary: Dict[str, Dict[str, float]] = {}
    for name in sorted(series):
        values = sorted(series[name])
        summary[name] = {
            "min": values[0],
            "median": _percentile(values, 0.5),
            "p95": _percentile(values, 0.95),
            "max": values[-1],
            "mean": sum(values) / len(values),
            "n": len(values),
        }
    return summary


# ------------------------------------------------------------------------------
# execution
# ------------------------------------------------------------------------------
def _execute_one(run_fn: Callable[..., Mapping[str, Any]],
                 spec: ExperimentSpec,
                 snapshot: Optional[bytes]) -> Mapping[str, Any]:
    if snapshot is None:
        metrics = run_fn(spec.seed, spec.config)
    else:
        from repro.s4u.engine import Engine
        engine = Engine.restore(snapshot)
        try:
            metrics = run_fn(engine, spec.seed, spec.config)
        finally:
            engine.close()
    if not isinstance(metrics, Mapping):
        raise TypeError(
            f"run_fn must return a metrics mapping, got "
            f"{type(metrics).__name__} for seed={spec.seed}")
    return metrics


def _worker_main(conn, run_fn, tasks: List[Tuple[int, ExperimentSpec]],
                 snapshot: Optional[bytes]) -> None:
    """Worker body: execute an assigned share, stream (index, status, payload).

    Every task answers exactly once — errors travel as formatted
    tracebacks rather than killing the worker, so one failed experiment
    does not discard its siblings' results.
    """
    try:
        for index, spec in tasks:
            try:
                payload: Any = dict(_execute_one(run_fn, spec, snapshot))
                reply = (index, "ok", payload)
            except BaseException:
                reply = (index, "error", traceback.format_exc())
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):  # parent gone; stop quietly
                return
            except Exception:
                conn.send((index, "error",
                           f"seed={spec.seed}: result not picklable:\n"
                           + traceback.format_exc()))
    finally:
        conn.close()


def _run_parallel(run_fn, tasks: List[Tuple[int, ExperimentSpec]],
                  snapshot: Optional[bytes], workers: int,
                  results: List[Optional[Mapping[str, Any]]],
                  errors: Dict[int, str],
                  run_timeout: Optional[float] = None
                  ) -> Tuple[int, int, List[int]]:
    """Fan ``tasks`` (global-index, spec pairs) over fork workers.

    Tasks are assigned round-robin *before* starting (static, so the
    assignment is deterministic); a worker that dies mid-share simply
    leaves its unanswered tasks for the caller to recover.

    ``run_timeout`` (wall-clock seconds) arms a per-run watchdog: workers
    answer their share in task order, so when no reply arrives within the
    timeout the share's first unanswered task is the hung one — the
    worker is terminated and the share's remainder is left for recovery.

    Returns ``(deaths, timeouts, lost)``: worker-death count, watchdog
    firings, and the task indices left unanswered.
    """
    ctx = multiprocessing.get_context("fork")
    shares: List[List[Tuple[int, ExperimentSpec]]] = [
        [] for _ in range(workers)]
    for position, task in enumerate(tasks):
        shares[position % workers].append(task)
    procs = []
    for share in shares:
        if not share:
            continue
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_worker_main,
                           args=(child_conn, run_fn, share, snapshot),
                           daemon=True)
        proc.start()
        child_conn.close()
        procs.append((parent_conn, proc, share))
    deaths = 0
    timeouts = 0
    lost: List[int] = []
    for parent_conn, proc, share in procs:
        answered = 0
        hung = False
        try:
            while answered < len(share):
                if run_timeout is not None and not parent_conn.poll(
                        run_timeout):
                    hung = True
                    timeouts += 1
                    break
                index, status, payload = parent_conn.recv()
                answered += 1
                if status == "ok":
                    results[index] = payload
                else:
                    errors[index] = payload
        except (EOFError, OSError):
            deaths += 1  # leftover tasks recovered by the caller
        finally:
            parent_conn.close()
        if hung:
            proc.terminate()
        proc.join(timeout=30.0)
        if proc.is_alive():  # pragma: no cover - defensive
            proc.terminate()
            proc.join()
        for index, _spec in share:
            if results[index] is None and index not in errors:
                lost.append(index)
    return deaths, timeouts, lost


def default_run_timeout() -> Optional[float]:
    """Per-run watchdog from ``REPRO_CAMPAIGN_RUN_TIMEOUT`` (seconds).

    Unset, empty, unparsable or non-positive all disable the watchdog —
    it is strictly opt-in, since a legitimate long run is
    indistinguishable from a hang without a budget from the caller.
    """
    raw = os.environ.get("REPRO_CAMPAIGN_RUN_TIMEOUT", "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def run_campaign(run_fn: Callable[..., Mapping[str, Any]],
                 experiments: Iterable[Union[int, ExperimentSpec]], *,
                 workers: Optional[int] = None,
                 snapshot: Optional[bytes] = None,
                 run_timeout: Optional[float] = None) -> "CampaignResult":
    """Run every experiment, in-process or over forked workers.

    Parameters
    ----------
    run_fn:
        ``run_fn(seed, config) -> metrics`` without a snapshot, or
        ``run_fn(engine, seed, config) -> metrics`` with one — the engine
        is freshly restored from the blob for each run and closed after.
        Must be deterministic in its arguments: the campaign result is
        then independent of ``workers``.
    experiments:
        :class:`ExperimentSpec` items (see :func:`grid`); bare ints are
        promoted to config-less specs.
    workers:
        Worker process count; ``None`` reads
        :func:`default_campaign_workers`, ``0`` runs serially in-process.
        Forking requires the POSIX ``fork`` start method; where that is
        unavailable the campaign silently runs serially.
    snapshot:
        Warmed-engine blob from :meth:`Engine.snapshot`; enables the
        fork-per-run mode described above.
    run_timeout:
        Per-run wall-clock watchdog in seconds (``None`` reads
        ``REPRO_CAMPAIGN_RUN_TIMEOUT``; unset/non-positive disables it).
        Only meaningful with ``workers >= 1``: a run that produces no
        reply within the budget is declared hung, its worker is
        terminated, and the run is retried once in a fresh single-task
        worker (as are runs lost to a worker death).  A run hung or lost
        twice fails the campaign — after the rest of the grid completed.

    Raises :class:`CampaignError` if any experiment raised (after all
    others finished), so a result always covers the full grid.
    """
    specs: List[ExperimentSpec] = [
        spec if isinstance(spec, ExperimentSpec) else ExperimentSpec(int(spec))
        for spec in experiments]
    if not specs:
        raise ValueError("run_campaign needs at least one experiment")
    if workers is None:
        workers = default_campaign_workers()
    workers = min(int(workers), len(specs))
    if run_timeout is None:
        run_timeout = default_run_timeout()
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        workers = 0

    results: List[Optional[Mapping[str, Any]]] = [None] * len(specs)
    errors: Dict[int, str] = {}
    fallbacks = 0
    timeouts = 0
    retries = 0
    if workers >= 1:
        fallbacks, timeouts, lost = _run_parallel(
            run_fn, list(enumerate(specs)), snapshot, workers, results,
            errors, run_timeout)
        if lost and run_timeout is not None:
            # One bounded retry, each lost run alone in a fresh worker
            # (single-task shares), still under the watchdog.
            retries = len(lost)
            _, late_timeouts, still_lost = _run_parallel(
                run_fn, [(index, specs[index]) for index in lost],
                snapshot, len(lost), results, errors, run_timeout)
            timeouts += late_timeouts
            for index in still_lost:
                errors[index] = (
                    f"seed={specs[index].seed}: run lost twice — hung past "
                    f"the {run_timeout}s watchdog or its worker died, on "
                    f"both the original attempt and the retry")
    for index, spec in enumerate(specs):  # serial mode + death leftovers
        if results[index] is None and index not in errors:
            if workers >= 1:
                retries += 1
            try:
                results[index] = dict(_execute_one(run_fn, spec, snapshot))
            except Exception:
                errors[index] = traceback.format_exc()
    if errors:
        first = min(errors)
        raise CampaignError(
            f"{len(errors)}/{len(specs)} experiments failed; first failure "
            f"(seed={specs[first].seed}, label={specs[first].label!r}):\n"
            f"{errors[first]}")
    runs = [
        {"seed": spec.seed, "label": spec.label, "metrics": results[index]}
        for index, spec in enumerate(specs)]
    return CampaignResult(specs=specs, runs=runs, workers=workers,
                          forked=snapshot is not None, fallbacks=fallbacks,
                          timeouts=timeouts, retries=retries)


@dataclass
class CampaignResult:
    """The outcome of one :func:`run_campaign` call, in grid order."""

    specs: List[ExperimentSpec]
    runs: List[Dict[str, Any]]
    workers: int
    forked: bool
    fallbacks: int = 0
    #: Watchdog firings (runs declared hung) and runs re-executed after
    #: being lost to a hang or a worker death.
    timeouts: int = 0
    retries: int = 0

    def metrics(self) -> List[Mapping[str, Any]]:
        """The raw per-run metric dicts, in grid order."""
        return [run["metrics"] for run in self.runs]

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-metric distribution summaries (see :func:`summarize`)."""
        return summarize(self.metrics())

    def to_report(self, scenario: str = "campaign") -> Dict[str, Any]:
        """BENCH-style JSON document: identity, summaries, per-run rows."""
        return {
            "schema": "repro-campaign/1",
            "scenario": scenario,
            "runs": len(self.runs),
            "workers": self.workers,
            "forked": self.forked,
            "fallbacks": self.fallbacks,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "metrics": self.summary(),
            "per_run": self.runs,
        }

    def write_json(self, path: str, scenario: str = "campaign") -> None:
        """Write :meth:`to_report` to ``path`` (pretty-printed, trailing \\n)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_report(scenario), handle, indent=2,
                      sort_keys=False)
            handle.write("\n")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CampaignResult(runs={len(self.runs)}, workers={self.workers},"
                f" forked={self.forked}, fallbacks={self.fallbacks},"
                f" timeouts={self.timeouts}, retries={self.retries})")
