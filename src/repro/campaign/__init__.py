"""repro.campaign — multi-process seeded experiment campaigns.

The paper's point is that a fast fluid simulator makes *large experiment
campaigns* practical: thousands of seeded runs (seeds × configurations),
not one simulation per process.  This package is the driver for that
workflow, built on two pieces:

* **snapshot/fork** — the kernel state is pure Python, so a quiescent
  :class:`~repro.s4u.engine.Engine` serializes into an opaque blob
  (:meth:`Engine.snapshot`) and any number of runs can fork from it
  (:meth:`Engine.restore`) with bit-identical future dates, instead of
  replaying the warmed common prefix per run;
* **the runner** (:func:`run_campaign`) — fans a grid of ``(seed,
  config)`` experiments across forked worker processes (pool discipline
  mirrors the kernel's ``REPRO_PARALLEL`` executor: fork lazily, degrade
  to serial on worker death, leak nothing) and aggregates the per-run
  metric dicts into distribution summaries (min/median/p95...) written
  as BENCH-style JSON.

Quickstart::

    from repro import s4u
    from repro.campaign import grid, run_campaign
    from repro.platform import make_star

    # Warm the common prefix once: realize the platform, run a warm-up
    # phase to completion, snapshot the quiescent engine.
    engine = s4u.Engine(make_star(num_hosts=64))
    # ... add warm-up actors, engine.run() ...
    blob = engine.snapshot()

    def experiment(engine, seed, config):      # runs in a worker process
        # ... add the per-experiment actors (module-level bodies), e.g.
        # seeded FailureInjector churn, then run the measured phase ...
        final = engine.run()
        return {"simulated_time_s": final, "kernel": engine.kernel_stats()}

    result = run_campaign(experiment, grid(range(32), [{"mtbf": 0.01}]),
                          snapshot=blob, workers=4)
    print(result.summary()["simulated_time_s"])   # min/median/p95/max/mean
    result.write_json("campaign.json")

Without ``snapshot=`` the runner calls ``run_fn(seed, config)`` and each
run builds its own world — the cold-replay baseline the fork mode is
benchmarked against (``campaign_fanout`` in ``benchmarks/``).
"""

from repro.campaign.runner import (
    CampaignError,
    CampaignResult,
    ExperimentSpec,
    default_campaign_workers,
    default_run_timeout,
    grid,
    run_campaign,
    summarize,
)

__all__ = [
    "CampaignError",
    "CampaignResult",
    "ExperimentSpec",
    "default_campaign_workers",
    "default_run_timeout",
    "grid",
    "run_campaign",
    "summarize",
]
