"""Execution contexts for simulated processes.

The paper highlights that in MSG *"all simulated application processes run
within a single process"* and share one address space.  SimGrid implements
this with user-level context switching (ucontexts) or one pthread per
simulated process.  This module provides the two equivalent Python
factories:

* :class:`GeneratorContextFactory` (default) — each simulated process is a
  generator coroutine; blocking operations are expressed by ``yield``-ing a
  :class:`~repro.kernel.simcall.Simcall`.  Deterministic, lightweight,
  scales to tens of thousands of processes.

* :class:`ThreadContextFactory` — each simulated process is a real OS
  thread; blocking operations go through a handshake so that exactly one
  thread (either the kernel or one process) runs at a time.  Process code is
  then written without ``yield`` (plain blocking calls), which is closer to
  how GRAS code looks in real-life mode.

Both factories expose the same :class:`Context` interface to the scheduler:
``start()``, ``resume(value, exception) -> Simcall | FINISHED``, ``kill()``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional, Union

from repro.exceptions import ProcessKilledError
from repro.kernel.simcall import Simcall

__all__ = [
    "FINISHED",
    "Context",
    "ContextFactory",
    "GeneratorContext",
    "GeneratorContextFactory",
    "ThreadContext",
    "ThreadContextFactory",
    "make_context_factory",
]


class _Finished:
    """Sentinel returned by ``resume`` when the process function returned."""

    def __repr__(self) -> str:  # pragma: no cover
        return "<FINISHED>"


FINISHED = _Finished()


class Context:
    """Interface between the scheduler and one simulated process body."""

    def start(self) -> None:
        """Prepare the context (no user code runs yet)."""

    def resume(self, value: Any = None,
               exception: Optional[BaseException] = None
               ) -> Union[Simcall, _Finished]:
        """Run the process until its next simcall.

        ``value`` is the result of the previous simcall; ``exception`` is
        raised inside the process instead when not ``None``.  Returns the
        next :class:`Simcall`, or :data:`FINISHED` when the process body
        returned.  Exceptions escaping the process body propagate to the
        caller.
        """
        raise NotImplementedError

    def kill(self) -> None:
        """Force the process body to terminate (its ``finally`` blocks run)."""
        raise NotImplementedError

    @property
    def finished(self) -> bool:
        raise NotImplementedError


class ContextFactory:
    """Builds contexts for process bodies."""

    name = "abstract"

    def create(self, func: Callable, args: tuple, kwargs: dict) -> Context:
        raise NotImplementedError


# --------------------------------------------------------------------------------
# Generator contexts (default)
# --------------------------------------------------------------------------------

class GeneratorContext(Context):
    """A simulated process implemented as a generator coroutine."""

    def __init__(self, func: Callable, args: tuple, kwargs: dict) -> None:
        self._func = func
        self._args = args
        self._kwargs = kwargs
        self._gen = None
        self._finished = False
        self._started = False

    def start(self) -> None:
        result = self._func(*self._args, **self._kwargs)
        if result is None or not hasattr(result, "send"):
            # The body was a plain function that already ran to completion
            # (a degenerate but legal process that performs no simcall).
            self._gen = None
            self._finished = True
        else:
            self._gen = result

    def resume(self, value: Any = None,
               exception: Optional[BaseException] = None
               ) -> Union[Simcall, _Finished]:
        if self._finished:
            return FINISHED
        assert self._gen is not None
        try:
            if not self._started:
                self._started = True
                if exception is not None:
                    request = self._gen.throw(exception)
                else:
                    request = self._gen.send(None)
            elif exception is not None:
                request = self._gen.throw(exception)
            else:
                request = self._gen.send(value)
        except StopIteration:
            self._finished = True
            return FINISHED
        if not isinstance(request, Simcall):
            raise TypeError(
                f"simulated processes must yield Simcall objects, got "
                f"{request!r}; use the Process helper methods")
        return request

    def kill(self) -> None:
        if self._finished or self._gen is None:
            self._finished = True
            return
        try:
            if not self._started:
                # Never ran: just close it.
                self._gen.close()
            else:
                self._gen.throw(ProcessKilledError("process killed"))
        except (StopIteration, ProcessKilledError):
            pass
        except RuntimeError:
            # generator already executing / closed
            pass
        finally:
            self._finished = True

    @property
    def finished(self) -> bool:
        return self._finished


class GeneratorContextFactory(ContextFactory):
    """Factory of :class:`GeneratorContext` (the default)."""

    name = "generator"

    def create(self, func: Callable, args: tuple, kwargs: dict) -> Context:
        return GeneratorContext(func, args, kwargs)


# --------------------------------------------------------------------------------
# Thread contexts
# --------------------------------------------------------------------------------

class ThreadContext(Context):
    """A simulated process running in its own OS thread.

    The kernel thread and the process thread alternate through two
    :class:`threading.Event` objects so that exactly one of them runs at a
    time; this reproduces SimGrid's pthread context factory.  The process
    body receives a ``channel`` object (this context) and calls
    :meth:`block` to submit its simcalls.
    """

    def __init__(self, func: Callable, args: tuple, kwargs: dict) -> None:
        self._func = func
        self._args = args
        self._kwargs = kwargs
        self._thread: Optional[threading.Thread] = None
        self._kernel_turn = threading.Event()
        self._process_turn = threading.Event()
        self._request: Any = None
        self._response: Any = None
        self._response_exc: Optional[BaseException] = None
        self._body_exc: Optional[BaseException] = None
        self._finished = False
        self._kill_requested = False

    # -- API used by the process body (via Process.block) -----------------------------
    def block(self, simcall: Simcall) -> Any:
        """Submit ``simcall`` to the kernel and wait for its result."""
        if self._kill_requested:
            raise ProcessKilledError("process killed")
        self._request = simcall
        self._kernel_turn.set()
        self._process_turn.wait()
        self._process_turn.clear()
        if self._kill_requested:
            raise ProcessKilledError("process killed")
        if self._response_exc is not None:
            exc = self._response_exc
            self._response_exc = None
            raise exc
        response = self._response
        self._response = None
        return response

    # -- thread body --------------------------------------------------------------------
    def _run_body(self) -> None:
        try:
            self._func(*self._args, **self._kwargs)
        except ProcessKilledError:
            pass
        except BaseException as exc:  # noqa: BLE001 - forwarded to the kernel
            self._body_exc = exc
        finally:
            self._request = FINISHED
            self._finished = True
            self._kernel_turn.set()

    # -- Context interface ----------------------------------------------------------------
    def start(self) -> None:
        self._thread = threading.Thread(target=self._run_body, daemon=True,
                                        name="sim-process")

    def resume(self, value: Any = None,
               exception: Optional[BaseException] = None
               ) -> Union[Simcall, _Finished]:
        if self._finished:
            return FINISHED
        assert self._thread is not None
        if not self._thread.is_alive() and self._thread.ident is None:
            # first resume: start the thread
            self._thread.start()
        else:
            self._response = value
            self._response_exc = exception
            self._process_turn.set()
        self._kernel_turn.wait()
        self._kernel_turn.clear()
        if self._body_exc is not None:
            exc = self._body_exc
            self._body_exc = None
            raise exc
        request = self._request
        self._request = None
        if request is FINISHED or self._finished:
            self._finished = True
            return FINISHED
        return request

    def kill(self) -> None:
        if self._finished:
            return
        self._kill_requested = True
        if self._thread is not None and self._thread.is_alive():
            # wake the thread so it observes the kill flag and unwinds
            self._process_turn.set()
            self._kernel_turn.wait()
            self._kernel_turn.clear()
        self._finished = True

    @property
    def finished(self) -> bool:
        return self._finished


class ThreadContextFactory(ContextFactory):
    """Factory of :class:`ThreadContext`."""

    name = "thread"

    def create(self, func: Callable, args: tuple, kwargs: dict) -> Context:
        return ThreadContext(func, args, kwargs)


def make_context_factory(kind: str = "generator") -> ContextFactory:
    """Build a context factory by name (``"generator"`` or ``"thread"``)."""
    if kind == "generator":
        return GeneratorContextFactory()
    if kind == "thread":
        return ThreadContextFactory()
    raise ValueError(f"unknown context factory {kind!r}")
