"""The simulation micro-kernel: process contexts, simcalls and timers.

This layer plays the role of SimGrid's *simix*/context layer: it knows how
to run simulated-process code (as cooperative generator coroutines or as
real OS threads handed control one at a time) and how that code communicates
its blocking requests ("simcalls") to the simulation engine.

It is shared by the three user-facing APIs (MSG, GRAS-in-simulation, SMPI),
which is exactly the layering of the paper's architecture diagram
(MSG / GRAS / SMPI all sit on top of SURF through one kernel).
"""

from repro.kernel.context import (
    Context,
    ContextFactory,
    GeneratorContext,
    GeneratorContextFactory,
    ThreadContext,
    ThreadContextFactory,
    make_context_factory,
)
from repro.kernel.simcall import (
    ExecuteCall,
    IrecvCall,
    IsendCall,
    JoinCall,
    KillCall,
    RecvCall,
    ResumeCall,
    SendCall,
    Simcall,
    SleepCall,
    SuspendCall,
    TestCall,
    WaitAnyCall,
    WaitCall,
    YieldCall,
)
from repro.kernel.timer import Timer, TimerQueue

__all__ = [
    "Context",
    "ContextFactory",
    "ExecuteCall",
    "GeneratorContext",
    "GeneratorContextFactory",
    "IrecvCall",
    "IsendCall",
    "JoinCall",
    "KillCall",
    "RecvCall",
    "ResumeCall",
    "SendCall",
    "Simcall",
    "SleepCall",
    "SuspendCall",
    "TestCall",
    "ThreadContext",
    "ThreadContextFactory",
    "Timer",
    "TimerQueue",
    "WaitAnyCall",
    "WaitCall",
    "YieldCall",
    "make_context_factory",
]
