"""The simulation micro-kernel: process contexts, simcalls and timers.

This layer plays the role of SimGrid's *simix*/context layer: it knows how
to run simulated-process code (as cooperative generator coroutines or as
real OS threads handed control one at a time) and how that code communicates
its blocking requests ("simcalls") to the simulation engine.

It is shared by all the user-facing APIs: :mod:`repro.s4u` builds its
actor/activity futures directly on these simcalls, and MSG,
GRAS-in-simulation and SMPI ride on s4u — exactly the layering of the
paper's architecture diagram (every API sits on top of SURF through one
kernel).
"""

from repro.kernel.context import (
    Context,
    ContextFactory,
    GeneratorContext,
    GeneratorContextFactory,
    ThreadContext,
    ThreadContextFactory,
    make_context_factory,
)
from repro.kernel.simcall import (
    ExecAsyncCall,
    ExecuteCall,
    IrecvCall,
    IsendCall,
    JoinCall,
    KillCall,
    RecvCall,
    ResumeCall,
    SendCall,
    Simcall,
    SleepAsyncCall,
    SleepCall,
    StartCall,
    SuspendCall,
    TestCall,
    WaitAllCall,
    WaitAnyCall,
    WaitCall,
    YieldCall,
)
from repro.kernel.timer import Timer, TimerQueue

__all__ = [
    "Context",
    "ContextFactory",
    "ExecAsyncCall",
    "ExecuteCall",
    "GeneratorContext",
    "GeneratorContextFactory",
    "IrecvCall",
    "IsendCall",
    "JoinCall",
    "KillCall",
    "RecvCall",
    "ResumeCall",
    "SendCall",
    "Simcall",
    "SleepAsyncCall",
    "SleepCall",
    "StartCall",
    "SuspendCall",
    "TestCall",
    "ThreadContext",
    "ThreadContextFactory",
    "Timer",
    "TimerQueue",
    "WaitAllCall",
    "WaitAnyCall",
    "WaitCall",
    "YieldCall",
    "make_context_factory",
]
