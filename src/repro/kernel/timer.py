"""Simulated-time timers.

Timers implement everything that is bound to a *date* rather than to the
completion of a SURF action: process sleeps, communication timeouts, GRAS
``gras_msg_wait`` deadlines, SMPI probes...

The queue is a lazy-deletion binary heap: cancelling a timer marks it dead
and it is skipped when popped.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, List, Optional, Tuple

__all__ = ["Timer", "TimerQueue"]


class Timer:
    """One pending timer.

    Attributes
    ----------
    date:
        Absolute simulated date at which the timer fires.
    callback:
        Callable invoked (with no argument) when the timer fires.
    """

    __slots__ = ("date", "callback", "cancelled", "fired")

    def __init__(self, date: float, callback: Callable[[], None]) -> None:
        if date < 0:
            raise ValueError("timer date must be >= 0")
        self.date = date
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the timer from firing (no-op if it already fired)."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the timer is armed (not fired, not cancelled)."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("cancelled" if self.cancelled
                 else "fired" if self.fired else "pending")
        return f"Timer(date={self.date}, {state})"


class TimerQueue:
    """Min-heap of timers ordered by firing date."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Timer]] = []
        self._seq = itertools.count()

    def schedule(self, date: float, callback: Callable[[], None]) -> Timer:
        """Arm a timer at absolute ``date``."""
        timer = Timer(date, callback)
        heapq.heappush(self._heap, (date, next(self._seq), timer))
        return timer

    def next_date(self) -> float:
        """Date of the next pending timer, or ``inf`` when none remain."""
        self._drop_dead()
        if not self._heap:
            return math.inf
        return self._heap[0][0]

    def _drop_dead(self) -> None:
        while self._heap and not self._heap[0][2].pending:
            heapq.heappop(self._heap)

    def fire_until(self, now: float) -> int:
        """Fire every pending timer with ``date <= now``; return the count."""
        fired = 0
        while True:
            self._drop_dead()
            if not self._heap or self._heap[0][0] > now + 1e-12:
                break
            _, _, timer = heapq.heappop(self._heap)
            if not timer.pending:
                continue
            timer.fired = True
            timer.callback()
            fired += 1
        return fired

    def compact(self) -> int:
        """Drop every cancelled/fired entry from the heap; return the count.

        Lazy deletion leaves dead entries (e.g. the timeout timer of a wait
        that completed first) in the heap until their date passes.  Their
        callbacks often close over actor state that cannot be pickled, so
        the snapshot path compacts the queue first — removing a dead entry
        never changes what fires.  Surviving entries keep their original
        ``(date, seq)`` keys, so tie-breaks are unchanged.
        """
        before = len(self._heap)
        self._heap = [entry for entry in self._heap if entry[2].pending]
        heapq.heapify(self._heap)
        return before - len(self._heap)

    def __len__(self) -> int:
        return sum(1 for _, _, t in self._heap if t.pending)

    def __bool__(self) -> bool:
        return any(t.pending for _, _, t in self._heap)
