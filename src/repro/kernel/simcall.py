"""Simcalls: the blocking requests a simulated process hands to the kernel.

A simulated process never touches the SURF models directly.  Whenever it
needs something that takes simulated time (executing flops, transferring a
task, sleeping, waiting for another process...), it builds a *simcall*
object describing the request and yields it to the kernel (generator
contexts) or submits it through the context handshake (thread contexts).
The kernel turns the simcall into SURF actions and resumes the process with
the result once the corresponding activity completes.

This mirrors SimGrid's simcall mechanism and keeps the user-facing APIs
(MSG, GRAS, SMPI) thin translation layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

__all__ = [
    "Simcall", "ExecuteCall", "ExecAsyncCall", "SleepCall", "SleepAsyncCall",
    "SendCall", "RecvCall", "IsendCall", "IrecvCall", "StartCall",
    "WaitCall", "WaitAnyCall", "WaitAllCall", "TestCall",
    "KillCall", "SuspendCall", "ResumeCall", "JoinCall", "YieldCall",
]


class Simcall:
    """Base class of every kernel request."""

    __slots__ = ()


@dataclass(slots=True)
class ExecuteCall(Simcall):
    """Execute ``flops`` floating point operations on ``host``.

    ``host`` may be ``None`` to mean "the host the calling process runs on".
    ``priority`` is the CPU sharing weight; ``bound`` caps the speed.
    The yield result is ``None`` when the execution completes.
    """

    flops: float
    host: Optional[Any] = None
    priority: float = 1.0
    bound: Optional[float] = None
    name: str = "compute"


@dataclass(slots=True)
class ExecAsyncCall(Simcall):
    """Start an asynchronous execution: returns an ``Exec`` handle.

    Same parameters as :class:`ExecuteCall`; the caller is resumed
    immediately with the activity handle (S4U ``this_actor.exec_async``).
    """

    flops: float
    host: Optional[Any] = None
    priority: float = 1.0
    bound: Optional[float] = None
    name: str = "compute"


@dataclass(slots=True)
class SleepCall(Simcall):
    """Sleep for ``duration`` simulated seconds."""

    duration: float


@dataclass(slots=True)
class SleepAsyncCall(Simcall):
    """Start an asynchronous sleep: returns a ``Sleep`` activity handle."""

    duration: float


@dataclass(slots=True)
class SendCall(Simcall):
    """Synchronous (rendezvous) send of ``payload`` to ``mailbox``.

    Blocks the caller until the transfer has completed, like
    ``MSG_task_put`` / S4U ``Mailbox.put``.  ``size`` is the simulated
    payload size in bytes, ``rate`` optionally caps the transfer rate
    (``MSG_task_put_bounded``), ``priority`` is the flow's sharing weight
    and ``timeout`` bounds the wait.
    """

    mailbox: Any
    payload: Any
    size: float = 0.0
    rate: Optional[float] = None
    timeout: Optional[float] = None
    priority: float = 1.0
    name: str = ""


@dataclass(slots=True)
class RecvCall(Simcall):
    """Synchronous receive from ``mailbox`` (``MSG_task_get``).

    The yield result is the received payload.
    """

    mailbox: Any
    timeout: Optional[float] = None
    rate: Optional[float] = None


@dataclass(slots=True)
class IsendCall(Simcall):
    """Asynchronous send: returns a communication handle immediately.

    ``detached=True`` means the caller never waits on the handle
    (fire-and-forget, like ``MSG_task_dsend``).
    """

    mailbox: Any
    payload: Any
    size: float = 0.0
    rate: Optional[float] = None
    detached: bool = False
    priority: float = 1.0
    name: str = ""


@dataclass(slots=True)
class IrecvCall(Simcall):
    """Asynchronous receive: returns a communication handle immediately."""

    mailbox: Any
    rate: Optional[float] = None


@dataclass(slots=True)
class StartCall(Simcall):
    """Start a deferred (``*_init``) activity handle.

    The yield result is the activity itself.  Starting an already-started
    activity is a no-op.
    """

    activity: Any


@dataclass(slots=True)
class WaitCall(Simcall):
    """Wait for an activity handle (from Isend/Irecv or an async exec).

    The yield result is the received payload for receive communications,
    ``None`` otherwise.  Waiting on a not-yet-started (``*_init``) activity
    starts it first.
    """

    activity: Any
    timeout: Optional[float] = None


@dataclass(slots=True)
class WaitAnyCall(Simcall):
    """Wait until any of several activity handles completes.

    The yield result is the index of the completed activity in
    ``activities``; when ``owner`` (an ``ActivitySet``) is given, the
    completed activity is removed from the owner and returned instead.
    """

    activities: Sequence[Any]
    timeout: Optional[float] = None
    owner: Optional[Any] = None


@dataclass(slots=True)
class WaitAllCall(Simcall):
    """Wait until every one of several activity handles completed.

    The yield result is ``None``; when ``owner`` (an ``ActivitySet``) is
    given, the completed activities are removed from the owner.
    """

    activities: Sequence[Any]
    timeout: Optional[float] = None
    owner: Optional[Any] = None


@dataclass(slots=True)
class TestCall(Simcall):
    """Non-blocking completion test of an activity handle.

    The yield result is ``True`` when the activity already completed.
    """

    activity: Any


@dataclass(slots=True)
class KillCall(Simcall):
    """Kill ``process`` (possibly the caller itself)."""

    process: Any


@dataclass(slots=True)
class SuspendCall(Simcall):
    """Suspend ``process`` (``None`` means the caller)."""

    process: Optional[Any] = None


@dataclass(slots=True)
class ResumeCall(Simcall):
    """Resume a previously suspended ``process``."""

    process: Any


@dataclass(slots=True)
class JoinCall(Simcall):
    """Block until ``process`` terminates."""

    process: Any
    timeout: Optional[float] = None


@dataclass(slots=True)
class YieldCall(Simcall):
    """Give the scheduler a chance to run other processes (no time passes)."""
