"""Loading and saving platform descriptions.

Two formats are supported:

* a **JSON** format native to this reproduction (round-trips everything the
  :class:`~repro.platform.platform.Platform` API can express except traces,
  which are referenced by inline event lists);
* a minimal subset of the classic **SimGrid XML** platform format
  (``<host>``, ``<link>``, ``<route>`` with ``<link_ctn>``) so that simple
  platform files written for the original tool can be reused.
"""

from __future__ import annotations

import json
import os
import xml.etree.ElementTree as ET
from typing import Dict, List, Optional, Union

from repro.exceptions import PlatformError
from repro.platform.platform import Platform
from repro.surf.trace import Trace

__all__ = ["load_platform", "save_platform", "platform_to_dict",
           "platform_from_dict"]


# ----------------------------------------------------------------------------------
# JSON format
# ----------------------------------------------------------------------------------

def platform_to_dict(platform: Platform) -> Dict:
    """Serialize a platform description (not its realization) to a dict.

    The zone tree round-trips: each zone records its routing strategy,
    parent and gateway; hosts and routers carry a ``zone`` field when
    declared outside the root zone; edges and explicit routes are
    collected across every zone (re-adding them infers the zone from the
    vertices).  A flat platform serializes exactly as before (no
    ``zones`` key, plain router name list).
    """
    def trace_to_list(trace: Optional[Trace]):
        if trace is None:
            return None
        return {"events": [[e.time, e.value] for e in trace.events],
                "period": trace.period}

    def zone_name(node: str) -> Optional[str]:
        zone = platform.zone_of(node)
        return None if zone is platform.root_zone else zone.name

    all_zones = [zone for zone in platform.root_zone.iter_subtree()
                 if zone is not platform.root_zone]
    data = {
        "name": platform.name,
        "hosts": [
            {
                "name": spec.name,
                "speed": spec.speed,
                "cores": spec.cores,
                "availability_trace": trace_to_list(spec.availability_trace),
                "state_trace": trace_to_list(spec.state_trace),
                "properties": spec.properties,
                **({"zone": zone_name(spec.name)}
                   if zone_name(spec.name) else {}),
            }
            for spec in platform.hosts.values()
        ],
        "routers": [
            name if zone_name(name) is None
            else {"name": name, "zone": zone_name(name)}
            for name in sorted(platform.routers)
        ],
        "links": [
            {
                "name": spec.name,
                "bandwidth": spec.bandwidth,
                "latency": spec.latency,
                "shared": spec.shared,
                "bandwidth_trace": trace_to_list(spec.bandwidth_trace),
                "state_trace": trace_to_list(spec.state_trace),
            }
            for spec in platform.links.values()
        ],
        "edges": [
            {"a": a, "b": b, "link": link}
            for zone in platform.root_zone.iter_subtree()
            for a, neighbours in sorted(zone.adjacency.items())
            for b, link in neighbours
            if a < b  # each undirected edge appears once
        ],
        "routes": [
            {"src": spec.src, "dst": spec.dst, "links": spec.links,
             "symmetric": spec.symmetric}
            for zone in platform.root_zone.iter_subtree()
            for spec in zone.routes.values()
        ],
    }
    def effective_gateway(zone) -> Optional[str]:
        # Serialize the *resolved* gateway node: the implicit default is
        # "first declared node", which reloading would not preserve (hosts
        # are re-declared before routers), so pin it explicitly.
        try:
            return zone.gateway
        except PlatformError:
            return None

    if all_zones:
        data["zones"] = [
            {
                "name": zone.name,
                "routing": zone.routing,
                "parent": (None if zone.parent is platform.root_zone
                           else zone.parent.name),
                "gateway": effective_gateway(zone),
            }
            for zone in all_zones
        ]
    return data


def platform_from_dict(data: Dict) -> Platform:
    """Rebuild a platform description from :func:`platform_to_dict` output."""
    def trace_from(obj) -> Optional[Trace]:
        if obj is None:
            return None
        return Trace([(t, v) for t, v in obj["events"]],
                     period=obj.get("period"))

    platform = Platform(data.get("name", "platform"))
    # Zones first (depth-first serialization order guarantees parents
    # precede children), then the nodes that reference them.
    for zone in data.get("zones", []):
        platform.add_zone(zone["name"], routing=zone.get("routing",
                                                         "Dijkstra"),
                          parent=zone.get("parent"),
                          gateway=zone.get("gateway"))
    for host in data.get("hosts", []):
        platform.add_host(host["name"], host["speed"],
                          cores=host.get("cores", 1),
                          availability_trace=trace_from(
                              host.get("availability_trace")),
                          state_trace=trace_from(host.get("state_trace")),
                          properties=host.get("properties") or {},
                          zone=host.get("zone"))
    for router in data.get("routers", []):
        if isinstance(router, dict):
            platform.add_router(router["name"], zone=router.get("zone"))
        else:
            platform.add_router(router)
    for link in data.get("links", []):
        platform.add_link(link["name"], link["bandwidth"],
                          latency=link.get("latency", 0.0),
                          shared=link.get("shared", True),
                          bandwidth_trace=trace_from(
                              link.get("bandwidth_trace")),
                          state_trace=trace_from(link.get("state_trace")))
    for edge in data.get("edges", []):
        platform.connect(edge["a"], edge["b"], edge["link"])
    for route in data.get("routes", []):
        platform.add_route(route["src"], route["dst"], route["links"],
                           symmetric=route.get("symmetric", True))
    return platform


# ----------------------------------------------------------------------------------
# SimGrid-style XML format (subset)
# ----------------------------------------------------------------------------------

#: SI prefixes accepted in front of the base units (case matters: ``M`` is
#: mega; ``k`` and ``K`` are both kilo, as SimGrid platform files use either).
_PREFIXES = {"": 1.0, "k": 1e3, "K": 1e3, "M": 1e6, "G": 1e9, "T": 1e12,
             "Ki": 1024.0, "Mi": 1024.0 ** 2, "Gi": 1024.0 ** 3,
             "u": 1e-6, "m": 1e-3, "n": 1e-9}

#: Base units and their scale to this library's canonical units
#: (bytes/s for bandwidth, flop/s for speed, seconds for time).
_BASE_UNITS = {"Bps": 1.0, "bps": 1.0 / 8.0, "f": 1.0, "F": 1.0,
               "flops": 1.0, "s": 1.0, "B": 1.0, "b": 1.0 / 8.0}


def parse_quantity(text: Union[str, float, int]) -> float:
    """Parse ``"100MBps"``, ``"1Gbps"``, ``"1Gf"``, ``"50us"`` quantities.

    Case is significant where it matters: ``MBps`` is megabytes per second,
    ``Mbps`` megabits per second (both forms appear in SimGrid platforms).
    """
    if isinstance(text, (int, float)):
        return float(text)
    value = text.strip()
    idx = len(value)
    while idx > 0 and not (value[idx - 1].isdigit() or value[idx - 1] == "."):
        idx -= 1
    number, unit = value[:idx].strip(), value[idx:].strip()
    if not number:
        raise PlatformError(f"cannot parse quantity {text!r}")
    if not unit:
        return float(number)
    for base, base_scale in sorted(_BASE_UNITS.items(),
                                   key=lambda kv: -len(kv[0])):
        if unit.endswith(base):
            prefix = unit[:-len(base)]
            if prefix in _PREFIXES:
                return float(number) * _PREFIXES[prefix] * base_scale
    raise PlatformError(f"unknown unit {unit!r} in {text!r}")


def _load_xml(text: str) -> Platform:
    root = ET.fromstring(text)
    if root.tag != "platform":
        # SimGrid XML wraps everything in <platform><AS>...</AS></platform>
        raise PlatformError("XML root element must be <platform>")
    platform = Platform("xml-platform")
    containers = [root] + root.findall(".//AS") + root.findall(".//zone")
    for container in containers:
        for host in container.findall("host"):
            platform.add_host(host.get("id"),
                              parse_quantity(host.get("speed",
                                                      host.get("power", "1Gf"))),
                              cores=int(host.get("core", "1")))
        for router in container.findall("router"):
            platform.add_router(router.get("id"))
        for link in container.findall("link"):
            platform.add_link(link.get("id"),
                              parse_quantity(link.get("bandwidth")),
                              latency=parse_quantity(link.get("latency", "0s")),
                              shared=link.get("sharing_policy",
                                              "SHARED").upper() != "FATPIPE")
        for route in container.findall("route"):
            links = [ctn.get("id") for ctn in route.findall("link_ctn")]
            platform.add_route(route.get("src"), route.get("dst"), links,
                               symmetric=route.get("symmetrical",
                                                   "yes").lower() in
                               ("yes", "true", "1"))
    return platform


# ----------------------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------------------

def load_platform(path: str) -> Platform:
    """Load a platform description from a ``.json`` or ``.xml`` file."""
    path = os.fspath(path)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith(".xml") or text.lstrip().startswith("<"):
        return _load_xml(text)
    return platform_from_dict(json.loads(text))


def save_platform(platform: Platform, path: str) -> None:
    """Save a platform description to a JSON file."""
    data = platform_to_dict(platform)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
