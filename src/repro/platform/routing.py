"""Hierarchical zone routing: a tree of NetZones with pluggable strategies.

Flat per-pair route tables are O(hosts²) once fully touched, which caps
platforms at a few thousand hosts.  This module provides SimGrid-style
nested *routing zones* instead: the platform is a tree of
:class:`NetZone` objects, each routing between its own *vertices* (the
hosts/routers declared directly in it, plus its child zones) with a
pluggable strategy:

* ``"Full"``     — every vertex pair needs an explicit route (an ordered
  list of link names), O(1) lookup, O(V²) declaration;
* ``"Dijkstra"`` — routes are computed on demand by Dijkstra over the
  zone's graph edges (explicit routes still win), O(E log V) per query,
  nothing precomputed;
* ``"Floyd"``    — the all-pairs next-hop table is precomputed lazily at
  first query (and invalidated if the zone is modified), O(1) amortized
  lookup.  The table is built by running the *same* deterministic
  Dijkstra from every source vertex, so ``"Floyd"`` and ``"Dijkstra"``
  produce bit-identical routes by construction.

An end-to-end route between two hosts is the concatenation of intra-zone
segments up and down the zone tree: the route climbs from the source to
the common-ancestor zone (crossing each zone's *gateway*), crosses the
ancestor zone between the two child-zone vertices, and descends to the
destination.  A zone represented as a vertex in its parent's graph is
entered and left through its gateway node, so transiting a zone
contributes only the links of the parent-level edges that reach it.

A flat platform is simply one root zone holding every host — the legacy
:class:`~repro.platform.platform.Platform` API (``add_host`` /
``connect`` / ``add_route`` without a zone) targets the root zone and
behaves exactly as before.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import NoRouteError, PlatformError

__all__ = ["LRUCache", "NetZone", "ROUTING_STRATEGIES"]


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    Replaces the unbounded ``(src, dst)`` route memos: route resolution
    stays O(touched) in memory no matter how many pairs a long-running
    simulation eventually communicates across.  ``maxsize=None`` disables
    the bound (an ordinary dict with LRU bookkeeping).
    """

    __slots__ = ("maxsize", "_data", "hits", "misses", "evictions")

    def __init__(self, maxsize: Optional[int] = 16384) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError("LRUCache maxsize must be >= 1 (or None)")
        self.maxsize = maxsize
        self._data: "OrderedDict" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key):
        """Return the cached value or ``None``, refreshing recency."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if self.maxsize is not None and len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def stats(self) -> Dict[str, int]:
        """Cache counters (observable contract of the routing subsystem)."""
        return {"size": len(self._data), "hits": self.hits,
                "misses": self.misses, "evictions": self.evictions}


# ----------------------------------------------------------------------------------
# intra-zone routing strategies
# ----------------------------------------------------------------------------------

def _dijkstra_prev(zone: "NetZone", src: str,
                   dst: Optional[str] = None) -> Dict[str, Tuple[str, str]]:
    """Deterministic Dijkstra over a zone's vertex graph.

    Returns the predecessor map ``vertex -> (parent_vertex, link_name)``.
    Weight is link latency plus a tiny epsilon so hop count breaks ties;
    vertices are settled in heap order with an insertion counter, and
    improvements must beat the incumbent by more than 1e-15 — the exact
    algorithm the flat platform has used since the seed, so moving it here
    changes no route.  When ``dst`` is given the search stops as soon as
    it is settled (the predecessor chain of a settled vertex is final).
    """
    links = zone.platform.links
    dist: Dict[str, float] = {src: 0.0}
    prev: Dict[str, Tuple[str, str]] = {}
    heap: List[Tuple[float, int, str]] = [(0.0, 0, src)]
    counter = 1
    visited = set()
    while heap:
        d, _, vertex = heapq.heappop(heap)
        if vertex in visited:
            continue
        visited.add(vertex)
        if dst is not None and vertex == dst:
            break
        for neighbour, link_name in zone.adjacency.get(vertex, []):
            weight = links[link_name].latency + 1e-9
            nd = d + weight
            if neighbour not in dist or nd < dist[neighbour] - 1e-15:
                dist[neighbour] = nd
                prev[neighbour] = (vertex, link_name)
                heapq.heappush(heap, (nd, counter, neighbour))
                counter += 1
    return prev


def _reconstruct(prev: Dict[str, Tuple[str, str]], src: str,
                 dst: str) -> Optional[List[str]]:
    """Link names along the predecessor chain, or None when unreachable."""
    if dst not in prev:
        return None
    path: List[str] = []
    vertex = dst
    while vertex != src:
        parent, link_name = prev[vertex]
        path.append(link_name)
        vertex = parent
    path.reverse()
    return path


class _Strategy:
    """Base intra-zone strategy: resolve a route between two zone vertices."""

    name = "abstract"

    def __init__(self, zone: "NetZone") -> None:
        self.zone = zone

    def route(self, src: str, dst: str) -> List[str]:
        raise NotImplementedError

    def _explicit(self, src: str, dst: str) -> Optional[List[str]]:
        spec = self.zone.routes.get((src, dst))
        if spec is not None:
            return list(spec.links)
        return None

    def _no_route(self, src: str, dst: str) -> NoRouteError:
        return NoRouteError(
            f"no route from {src!r} to {dst!r} in zone {self.zone.name!r}")


class FullRouting(_Strategy):
    """Every vertex pair must have an explicit route (SimGrid ``Full``)."""

    name = "Full"

    def route(self, src: str, dst: str) -> List[str]:
        links = self._explicit(src, dst)
        if links is None:
            raise self._no_route(src, dst)
        return links


class DijkstraRouting(_Strategy):
    """Shortest path on demand; explicit routes take precedence.

    This is the legacy flat-platform behaviour, so it is the default
    strategy of the root zone.

    Resolved ``(src, dst)`` pairs are memoized (and dropped when the zone
    is modified, same invalidation as Floyd's sealed trees): a zone vertex
    that many routes funnel through — a gateway in a star site — would
    otherwise re-run its Dijkstra, relaxing every adjacent edge, once per
    *end-to-end pair* instead of once per segment.  The memo holds paths,
    not trees, so memory stays O(distinct queried pairs), each O(path).
    """

    name = "Dijkstra"

    def __init__(self, zone: "NetZone") -> None:
        super().__init__(zone)
        self._path_cache: Dict[Tuple[str, str], List[str]] = {}
        self._cached_version = -1

    def route(self, src: str, dst: str) -> List[str]:
        links = self._explicit(src, dst)
        if links is not None:
            return links
        if self._cached_version != self.zone.version:
            self._path_cache.clear()
            self._cached_version = self.zone.version
        path = self._path_cache.get((src, dst))
        if path is None:
            if src not in self.zone.adjacency:
                raise self._no_route(src, dst)
            path = _reconstruct(_dijkstra_prev(self.zone, src, dst),
                                src, dst)
            if path is None:
                raise self._no_route(src, dst)
            self._path_cache[(src, dst)] = path
        return list(path)


class FloydRouting(_Strategy):
    """Precomputed all-pairs routing (SimGrid ``Floyd``).

    The predecessor map of each *source* is sealed at its first query (and
    dropped when the zone is modified) by running the shared deterministic
    Dijkstra — same weights, same tie-breaking — so the resolved routes
    are identical to :class:`DijkstraRouting` on the same zone, with
    O(path) lookups after the per-source O(E log V) seal.  Sealing source
    by source instead of all at once keeps a 10⁵-host platform O(touched):
    only the sources that actually route pay for their tree.
    """

    name = "Floyd"

    def __init__(self, zone: "NetZone") -> None:
        super().__init__(zone)
        self._prev_by_src: Dict[str, Dict[str, Tuple[str, str]]] = {}
        self._sealed_version = -1

    def route(self, src: str, dst: str) -> List[str]:
        links = self._explicit(src, dst)
        if links is not None:
            return links
        if self._sealed_version != self.zone.version:
            self._prev_by_src.clear()
            self._sealed_version = self.zone.version
        prev = self._prev_by_src.get(src)
        if prev is None:
            if src not in self.zone.adjacency:
                raise self._no_route(src, dst)
            prev = self._prev_by_src[src] = _dijkstra_prev(self.zone, src)
        path = _reconstruct(prev, src, dst)
        if path is None:
            raise self._no_route(src, dst)
        return path


ROUTING_STRATEGIES = {
    "Full": FullRouting,
    "Dijkstra": DijkstraRouting,
    "Floyd": FloydRouting,
}


# ----------------------------------------------------------------------------------
# the zone tree
# ----------------------------------------------------------------------------------

class NetZone:
    """One routing zone: a set of vertices routed by one strategy.

    A vertex is either a host/router declared directly in this zone or a
    child zone (represented in this zone's graph by its name; physically
    entered and left through its *gateway* node).  Zones are created via
    :meth:`repro.platform.platform.Platform.add_zone` (or
    :meth:`add_zone` on a parent zone) — the platform always has a root
    zone that the flat, zone-less API targets.
    """

    def __init__(self, platform, name: str, parent: Optional["NetZone"],
                 routing: str = "Dijkstra",
                 gateway: Optional[str] = None) -> None:
        try:
            strategy_cls = ROUTING_STRATEGIES[routing]
        except KeyError:
            raise PlatformError(
                f"unknown routing strategy {routing!r}; pick one of "
                f"{sorted(ROUTING_STRATEGIES)}") from None
        self.platform = platform
        self.name = name
        self.parent = parent
        self.children: Dict[str, "NetZone"] = {}
        #: Names of the hosts/routers declared directly in this zone.
        self.nodes: Dict[str, None] = {}
        #: Explicit vertex-pair routes (RouteSpec objects, like the flat API).
        self.routes: Dict[Tuple[str, str], object] = {}
        #: Graph edges: vertex -> list of (vertex, link name).
        self.adjacency: Dict[str, List[Tuple[str, str]]] = {}
        self.routing = routing
        self.strategy: _Strategy = strategy_cls(self)
        self._gateway = gateway
        #: Bumped on every mutation; lets precomputed strategies re-seal.
        self.version = 0
        if parent is not None:
            parent.children[name] = self

    # -- construction (delegates to the platform for global bookkeeping) ---------------
    def add_zone(self, name: str, routing: str = "Dijkstra",
                 gateway: Optional[str] = None) -> "NetZone":
        """Create a child zone."""
        return self.platform.add_zone(name, routing=routing, parent=self,
                                      gateway=gateway)

    def add_host(self, name: str, speed: float, **kwargs):
        """Declare a host inside this zone (see ``Platform.add_host``)."""
        return self.platform.add_host(name, speed, zone=self, **kwargs)

    def add_router(self, name: str) -> str:
        """Declare a router inside this zone."""
        return self.platform.add_router(name, zone=self)

    def add_link(self, name: str, bandwidth: float, latency: float = 0.0,
                 **kwargs):
        """Declare a link (links are platform-global; convenience alias)."""
        return self.platform.add_link(name, bandwidth, latency, **kwargs)

    def connect(self, vertex_a: str, vertex_b: str, link_name: str) -> None:
        """Declare a graph edge between two vertices of this zone.

        A vertex naming a child zone attaches the link at that zone's
        gateway; this is how inter-zone (gateway) links are wired.
        """
        self._check_vertex(vertex_a)
        self._check_vertex(vertex_b)
        if link_name not in self.platform.links:
            raise PlatformError(f"unknown link {link_name!r}")
        self.adjacency.setdefault(vertex_a, []).append((vertex_b, link_name))
        self.adjacency.setdefault(vertex_b, []).append((vertex_a, link_name))
        self.version += 1

    def add_route(self, src: str, dst: str, links: Sequence[str],
                  symmetric: bool = True):
        """Declare an explicit route between two vertices of this zone."""
        from repro.platform.platform import RouteSpec
        self._check_vertex(src)
        self._check_vertex(dst)
        for link in links:
            if link not in self.platform.links:
                raise PlatformError(
                    f"route {src}->{dst}: unknown link {link!r}")
        spec = RouteSpec(src, dst, list(links), symmetric)
        self.routes[(src, dst)] = spec
        if symmetric:
            self.routes.setdefault(
                (dst, src), RouteSpec(dst, src, list(reversed(links)),
                                      symmetric))
        self.version += 1
        return spec

    def set_gateway(self, node_name: str) -> None:
        """Name the node through which routes enter and leave this zone."""
        self._gateway = node_name
        self.version += 1

    # -- introspection -----------------------------------------------------------------
    def vertices(self) -> List[str]:
        """This zone's vertices: direct nodes then child zones, in order."""
        return list(self.nodes) + list(self.children)

    @property
    def gateway(self) -> str:
        """The gateway *node* of this zone, descending into child zones.

        Defaults to the first host/router of the zone subtree (in
        declaration order) when none was set explicitly.
        """
        if self._gateway is not None:
            # The gateway may itself name a child zone: descend to a node.
            child = self.children.get(self._gateway)
            if child is not None:
                return child.gateway
            return self._gateway
        if self.nodes:
            return next(iter(self.nodes))
        for child in self.children.values():
            try:
                return child.gateway
            except PlatformError:
                continue
        raise PlatformError(f"zone {self.name!r} has no gateway "
                            "(it contains no host or router)")

    def ancestry(self) -> List["NetZone"]:
        """Zones from the root down to (and including) this zone."""
        chain: List[NetZone] = []
        zone: Optional[NetZone] = self
        while zone is not None:
            chain.append(zone)
            zone = zone.parent
        chain.reverse()
        return chain

    def iter_subtree(self) -> Iterable["NetZone"]:
        """This zone and every descendant, depth-first."""
        yield self
        for child in self.children.values():
            yield from child.iter_subtree()

    def _check_vertex(self, name: str) -> None:
        if name not in self.nodes and name not in self.children:
            raise PlatformError(
                f"{name!r} is not a vertex of zone {self.name!r} "
                "(declare the node in this zone, or name a child zone)")

    def local_route(self, src: str, dst: str) -> List[str]:
        """Resolve a route between two *vertices* of this zone."""
        if src == dst:
            return []
        return self.strategy.route(src, dst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"NetZone(name={self.name!r}, routing={self.routing!r}, "
                f"nodes={len(self.nodes)}, children={len(self.children)})")


def resolve_route(platform, src: str, dst: str) -> List[str]:
    """End-to-end route between two nodes across the zone tree.

    The route is the concatenation of intra-zone segments: climb from
    ``src`` to the lowest common ancestor zone (each crossed zone is
    entered/left through its gateway), cross the ancestor between the two
    child-side vertices, descend to ``dst``.  For a flat platform (every
    node in the root zone) this collapses to one ``local_route`` call —
    the legacy behaviour.
    """
    if src == dst:
        return []
    zone_src: NetZone = platform._node_zone[src]
    zone_dst: NetZone = platform._node_zone[dst]
    if zone_src is zone_dst:
        return zone_src.local_route(src, dst)

    chain_src = zone_src.ancestry()
    chain_dst = zone_dst.ancestry()
    depth = 0
    while (depth < len(chain_src) and depth < len(chain_dst)
           and chain_src[depth] is chain_dst[depth]):
        depth += 1
    if depth == 0:
        raise NoRouteError(f"no route from {src!r} to {dst!r}: "
                           "the nodes live in unrelated zone trees")
    ancestor = chain_src[depth - 1]
    # The vertex representing each endpoint inside the ancestor zone: the
    # node itself when declared directly there, else the child zone on its
    # side of the tree.
    if zone_src is ancestor:
        vertex_src, descend_src = src, None
    else:
        descend_src = chain_src[depth]
        vertex_src = descend_src.name
    if zone_dst is ancestor:
        vertex_dst, descend_dst = dst, None
    else:
        descend_dst = chain_dst[depth]
        vertex_dst = descend_dst.name

    route: List[str] = []
    if descend_src is not None:
        gateway = descend_src.gateway
        if gateway != src:
            route.extend(resolve_route(platform, src, gateway))
    route.extend(ancestor.local_route(vertex_src, vertex_dst))
    if descend_dst is not None:
        gateway = descend_dst.gateway
        if gateway != dst:
            route.extend(resolve_route(platform, gateway, dst))
    return route
