"""BRITE-style random topology generation.

The paper's validation experiment uses a *"random topology generated with
BRITE (random bandwidths and latencies)"*.  BRITE's router-level models are
the Waxman model and the Barabási–Albert preferential-attachment model;
this module implements both from scratch and turns the resulting graphs into
:class:`~repro.platform.platform.Platform` objects:

* every graph vertex becomes a *host* (so flows can start and end anywhere),
* every edge becomes a link with a bandwidth and latency drawn uniformly
  from configurable ranges (BRITE's default bandwidth assignment is uniform),
* routing between vertices is shortest-path over link latency, like the
  packet-level simulators the experiment compares against.

The generator is deterministic given a seed, so the fluid and packet-level
simulators of experiment E1 run on the *same* topology.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.platform.platform import Platform

__all__ = ["BriteConfig", "make_waxman_topology",
           "make_barabasi_albert_topology", "make_hierarchical_topology",
           "random_flows"]


@dataclass
class BriteConfig:
    """Parameters of the random topology generation.

    Attributes mirror BRITE's configuration file:

    * ``plane_size`` — vertices are placed uniformly in a square of this side;
    * ``alpha`` / ``beta`` — Waxman connection-probability parameters;
    * ``bw_min`` / ``bw_max`` — uniform range for link bandwidths (byte/s);
    * ``lat_min`` / ``lat_max`` — uniform range for link latencies (s);
      when ``None`` the latency is derived from the Euclidean distance
      between the two vertices (BRITE's default), scaled so the diagonal of
      the plane is ``lat_max_distance``;
    * ``host_speed`` — CPU speed given to every host.
    """

    plane_size: float = 1000.0
    alpha: float = 0.4
    beta: float = 0.4
    bw_min: float = 1.25e6           # 10 Mb/s
    bw_max: float = 1.25e7           # 100 Mb/s
    lat_min: Optional[float] = None
    lat_max: Optional[float] = None
    lat_max_distance: float = 0.05   # 50 ms across the plane diagonal
    host_speed: float = 1e9

    def __post_init__(self) -> None:
        if self.plane_size <= 0:
            raise ValueError("plane_size must be > 0")
        if not (0 < self.alpha <= 1) or not (0 < self.beta <= 1):
            raise ValueError("alpha and beta must be in (0, 1]")
        if self.bw_min <= 0 or self.bw_max < self.bw_min:
            raise ValueError("bandwidth range is invalid")
        if (self.lat_min is None) != (self.lat_max is None):
            raise ValueError("set both lat_min and lat_max, or neither")
        if self.lat_min is not None and (self.lat_min < 0
                                         or self.lat_max < self.lat_min):
            raise ValueError("latency range is invalid")


def _place_nodes(n: int, rng: random.Random,
                 config: BriteConfig) -> List[Tuple[float, float]]:
    return [(rng.uniform(0, config.plane_size),
             rng.uniform(0, config.plane_size)) for _ in range(n)]


def _link_latency(pos_a: Tuple[float, float], pos_b: Tuple[float, float],
                  rng: random.Random, config: BriteConfig) -> float:
    if config.lat_min is not None:
        return rng.uniform(config.lat_min, config.lat_max)
    diag = math.hypot(config.plane_size, config.plane_size)
    dist = math.hypot(pos_a[0] - pos_b[0], pos_a[1] - pos_b[1])
    return max(1e-5, config.lat_max_distance * dist / diag)


def _build_platform(n: int, edges: Sequence[Tuple[int, int]],
                    positions: Sequence[Tuple[float, float]],
                    rng: random.Random, config: BriteConfig,
                    name: str) -> Platform:
    platform = Platform(name)
    for i in range(n):
        platform.add_host(f"host-{i}", config.host_speed)
    for idx, (a, b) in enumerate(edges):
        bandwidth = rng.uniform(config.bw_min, config.bw_max)
        latency = _link_latency(positions[a], positions[b], rng, config)
        link = platform.add_link(f"link-{idx}", bandwidth, latency)
        platform.connect(f"host-{a}", f"host-{b}", link.name)
    return platform


def _ensure_connected(n: int, edges: List[Tuple[int, int]],
                      rng: random.Random) -> None:
    """Add the minimum extra edges required to make the graph connected."""
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        parent[find(a)] = find(b)

    for a, b in edges:
        union(a, b)
    components = {}
    for i in range(n):
        components.setdefault(find(i), []).append(i)
    roots = list(components)
    for prev, nxt in zip(roots, roots[1:]):
        a = rng.choice(components[prev])
        b = rng.choice(components[nxt])
        edges.append((a, b))
        union(a, b)


def make_waxman_topology(num_nodes: int = 10, seed: int = 42,
                         config: Optional[BriteConfig] = None,
                         name: str = "brite-waxman") -> Platform:
    """Generate a Waxman random topology (BRITE's ``RTWaxman`` model).

    Vertices are placed uniformly in a plane; an edge between ``u`` and
    ``v`` exists with probability ``alpha * exp(-d(u,v) / (beta * L))``
    where ``L`` is the plane diagonal.  The graph is then patched to be
    connected (BRITE grows connected graphs by construction; we achieve the
    same property by joining leftover components).
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    config = config or BriteConfig()
    rng = random.Random(seed)
    positions = _place_nodes(num_nodes, rng, config)
    diag = math.hypot(config.plane_size, config.plane_size)
    edges: List[Tuple[int, int]] = []
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            dist = math.hypot(positions[i][0] - positions[j][0],
                              positions[i][1] - positions[j][1])
            prob = config.alpha * math.exp(-dist / (config.beta * diag))
            if rng.random() < prob:
                edges.append((i, j))
    _ensure_connected(num_nodes, edges, rng)
    return _build_platform(num_nodes, edges, positions, rng, config, name)


def make_barabasi_albert_topology(num_nodes: int = 10, m: int = 2,
                                  seed: int = 42,
                                  config: Optional[BriteConfig] = None,
                                  name: str = "brite-ba") -> Platform:
    """Generate a Barabási–Albert topology (BRITE's ``RTBarabasiAlbert``).

    Nodes join one at a time and attach ``m`` edges to existing nodes with
    probability proportional to their degree (preferential attachment).
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    if m < 1:
        raise ValueError("m must be >= 1")
    config = config or BriteConfig()
    rng = random.Random(seed)
    positions = _place_nodes(num_nodes, rng, config)
    edges: List[Tuple[int, int]] = []
    # start from a small seed clique of size m+1 (or num_nodes if smaller)
    seed_size = min(m + 1, num_nodes)
    for i in range(seed_size):
        for j in range(i + 1, seed_size):
            edges.append((i, j))
    degree = [0] * num_nodes
    for a, b in edges:
        degree[a] += 1
        degree[b] += 1
    for new in range(seed_size, num_nodes):
        targets = set()
        # preferential attachment by repeated weighted draws
        candidates = list(range(new))
        weights = [degree[c] + 1e-9 for c in candidates]
        total = sum(weights)
        while len(targets) < min(m, new):
            r = rng.random() * total
            acc = 0.0
            for cand, w in zip(candidates, weights):
                acc += w
                if acc >= r:
                    targets.add(cand)
                    break
        for target in targets:
            edges.append((new, target))
            degree[new] += 1
            degree[target] += 1
    _ensure_connected(num_nodes, edges, rng)
    return _build_platform(num_nodes, edges, positions, rng, config, name)


def make_hierarchical_topology(num_sites: int = 8, hosts_per_site: int = 16,
                               seed: int = 42,
                               config: Optional[BriteConfig] = None,
                               site_routing: str = "Floyd",
                               site_bandwidth: float = 125e6,
                               site_latency: float = 100e-6,
                               name: str = "brite-hier") -> Platform:
    """BRITE's *top-down hierarchical* mode as a tree of routing zones.

    The AS level is a Waxman random graph over ``num_sites`` gateway
    routers — same placement, edge probability, bandwidth and latency
    draws as :func:`make_waxman_topology` — and each AS is a
    :class:`~repro.platform.routing.NetZone` holding ``hosts_per_site``
    hosts in a LAN star behind its gateway.  Deterministic given ``seed``,
    and O(hosts + wan_edges) to build: no per-pair table is ever stored,
    so 10⁵-host instances are practical.
    """
    if num_sites < 2:
        raise ValueError("need at least two sites")
    if hosts_per_site < 1:
        raise ValueError("need at least one host per site")
    config = config or BriteConfig()
    rng = random.Random(seed)
    positions = _place_nodes(num_sites, rng, config)
    diag = math.hypot(config.plane_size, config.plane_size)
    edges: List[Tuple[int, int]] = []
    for i in range(num_sites):
        for j in range(i + 1, num_sites):
            dist = math.hypot(positions[i][0] - positions[j][0],
                              positions[i][1] - positions[j][1])
            prob = config.alpha * math.exp(-dist / (config.beta * diag))
            if rng.random() < prob:
                edges.append((i, j))
    _ensure_connected(num_sites, edges, rng)

    platform = Platform(name)
    for s in range(num_sites):
        site = platform.add_zone(f"as-{s}", routing=site_routing)
        gw = site.add_router(f"as-{s}-gw")   # first node => default gateway
        for i in range(hosts_per_site):
            host = site.add_host(f"as-{s}-host-{i}", config.host_speed)
            link = platform.add_link(f"as-{s}-lan-{i}", site_bandwidth,
                                     site_latency)
            site.connect(host.name, gw, link.name)
    # WAN edges join the zones in the root zone (entered via gateways).
    for idx, (a, b) in enumerate(edges):
        bandwidth = rng.uniform(config.bw_min, config.bw_max)
        latency = _link_latency(positions[a], positions[b], rng, config)
        link = platform.add_link(f"wan-{idx}", bandwidth, latency)
        platform.connect(f"as-{a}", f"as-{b}", link.name)
    return platform


def random_flows(platform: Platform, num_flows: int = 10,
                 seed: int = 7) -> List[Tuple[str, str]]:
    """Pick random (source, destination) host pairs for the E1 experiment.

    Pairs always have distinct endpoints; the same pair may appear twice
    (two flows between the same hosts), matching "10 random flows for 10
    random source-destination pairs".
    """
    rng = random.Random(seed)
    hosts = platform.host_names()
    if len(hosts) < 2:
        raise ValueError("need at least two hosts to draw flows")
    flows: List[Tuple[str, str]] = []
    for _ in range(num_flows):
        src, dst = rng.sample(hosts, 2)
        flows.append((src, dst))
    return flows
