"""Ready-made platform topologies.

The paper motivates SimGrid with a list of target applications, each tied to
a platform class: *a commodity cluster*, *a network of workstations*, *a
multi-site high-end grid platform*, *a wide-area network*, *volatile
Internet hosts*.  These factory functions build representative instances of
those platform classes so examples, tests and benchmarks don't re-invent
them.

All bandwidths are in bytes/s, latencies in seconds, speeds in flop/s.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.platform.platform import Platform

__all__ = ["make_cluster", "make_star", "make_dumbbell", "make_two_site_grid",
           "make_client_server_lan", "make_zoned_grid"]


def make_cluster(num_hosts: int = 8,
                 host_speed: float = 1e9,
                 link_bandwidth: float = 125e6,
                 link_latency: float = 50e-6,
                 backbone_bandwidth: float = 1.25e9,
                 backbone_latency: float = 500e-6,
                 prefix: str = "node",
                 name: str = "cluster") -> Platform:
    """A commodity cluster: hosts behind private links and a shared backbone.

    Every host ``node-<i>`` has a private up/down link to the cluster
    backbone; a transfer between two hosts crosses ``link-src``, the
    backbone, and ``link-dst`` — the classic SimGrid cluster model.
    """
    if num_hosts < 1:
        raise ValueError("a cluster needs at least one host")
    platform = Platform(name)
    switch = platform.add_router(f"{prefix}-switch")
    platform.add_link("backbone", backbone_bandwidth, backbone_latency,
                      shared=True)
    for i in range(num_hosts):
        host = platform.add_host(f"{prefix}-{i}", host_speed)
        link = platform.add_link(f"{prefix}-link-{i}", link_bandwidth,
                                 link_latency)
        platform.connect(host.name, switch, link.name)
    # route through private link + backbone + private link: encode the
    # backbone by inserting it as an edge from the switch to itself is not
    # possible, so declare explicit routes instead.
    for i in range(num_hosts):
        for j in range(num_hosts):
            if i == j:
                continue
            platform.add_route(f"{prefix}-{i}", f"{prefix}-{j}",
                               [f"{prefix}-link-{i}", "backbone",
                                f"{prefix}-link-{j}"],
                               symmetric=False)
    return platform


def make_star(num_hosts: int = 5,
              host_speed: float = 1e9,
              link_bandwidth: float = 1.25e7,
              link_latency: float = 5e-3,
              center_name: str = "center",
              prefix: str = "leaf",
              name: str = "star") -> Platform:
    """A network of workstations: leaves around a central host.

    The centre is itself a host (e.g. the master of a master/worker
    application); each leaf is connected by its own link.
    """
    if num_hosts < 1:
        raise ValueError("a star needs at least one leaf")
    platform = Platform(name)
    platform.add_host(center_name, host_speed)
    for i in range(num_hosts):
        leaf = platform.add_host(f"{prefix}-{i}", host_speed)
        link = platform.add_link(f"{prefix}-link-{i}", link_bandwidth,
                                 link_latency)
        platform.connect(leaf.name, center_name, link.name)
    return platform


def make_dumbbell(num_left: int = 3, num_right: int = 3,
                  host_speed: float = 1e9,
                  edge_bandwidth: float = 125e6,
                  edge_latency: float = 1e-3,
                  bottleneck_bandwidth: float = 12.5e6,
                  bottleneck_latency: float = 10e-3,
                  name: str = "dumbbell") -> Platform:
    """The classic dumbbell: two access trees around one bottleneck link.

    This is the canonical topology for studying how concurrent TCP flows
    share a bottleneck — the resource-sharing scenario of the SURF panel.
    """
    platform = Platform(name)
    left_router = platform.add_router("router-left")
    right_router = platform.add_router("router-right")
    platform.add_link("bottleneck", bottleneck_bandwidth, bottleneck_latency)
    platform.connect(left_router, right_router, "bottleneck")
    for i in range(num_left):
        host = platform.add_host(f"left-{i}", host_speed)
        link = platform.add_link(f"left-link-{i}", edge_bandwidth, edge_latency)
        platform.connect(host.name, left_router, link.name)
    for i in range(num_right):
        host = platform.add_host(f"right-{i}", host_speed)
        link = platform.add_link(f"right-link-{i}", edge_bandwidth,
                                 edge_latency)
        platform.connect(host.name, right_router, link.name)
    return platform


def make_two_site_grid(hosts_per_site: int = 4,
                       host_speed: float = 2e9,
                       lan_bandwidth: float = 125e6,
                       lan_latency: float = 100e-6,
                       wan_bandwidth: float = 12.5e6,
                       wan_latency: float = 50e-3,
                       name: str = "grid") -> Platform:
    """A multi-site grid: two clusters joined by a wide-area link.

    Models the paper's "scientific simulation running on a multi-site
    high-end grid platform" and the California–France WAN of the GRAS
    experiment (default one-way latency of 50 ms).
    """
    platform = Platform(name)
    routers = []
    for site_idx, site in enumerate(("siteA", "siteB")):
        router = platform.add_router(f"{site}-router")
        routers.append(router)
        for i in range(hosts_per_site):
            host = platform.add_host(f"{site}-{i}", host_speed)
            link = platform.add_link(f"{site}-link-{i}", lan_bandwidth,
                                     lan_latency)
            platform.connect(host.name, router, link.name)
    platform.add_link("wan", wan_bandwidth, wan_latency)
    platform.connect(routers[0], routers[1], "wan")
    return platform


def make_client_server_lan(num_clients: int = 3, num_servers: int = 2,
                           client_speed: float = 5e8,
                           server_speed: float = 2e9,
                           hub_bandwidth: float = 1.25e6,
                           hub_latency: float = 1e-4,
                           uplink_bandwidth: float = 1.25e7,
                           uplink_latency: float = 5e-4,
                           internet_bandwidth: float = 6.25e5,
                           internet_latency: float = 2e-2,
                           name: str = "client-server") -> Platform:
    """The hub/switch/router/Internet topology of the paper's Gantt figure.

    Clients sit behind a shared hub; the hub reaches a switch, the switch a
    router, and the router crosses the Internet to reach the servers.  The
    concurrent client flows share the hub and Internet links, which is what
    produces the interference visible in the Gantt chart (experiment E4).
    """
    platform = Platform(name)
    hub = platform.add_router("hub")
    switch = platform.add_router("switch")
    router = platform.add_router("router")
    server_router = platform.add_router("server-router")

    platform.add_link("hub-switch", hub_bandwidth, hub_latency)
    platform.connect(hub, switch, "hub-switch")
    platform.add_link("switch-router", uplink_bandwidth, uplink_latency)
    platform.connect(switch, router, "switch-router")
    platform.add_link("internet", internet_bandwidth, internet_latency)
    platform.connect(router, server_router, "internet")

    for i in range(num_clients):
        host = platform.add_host(f"client-{i}", client_speed)
        link = platform.add_link(f"client-link-{i}", hub_bandwidth, hub_latency)
        platform.connect(host.name, hub, link.name)
    for i in range(num_servers):
        host = platform.add_host(f"server-{i}", server_speed)
        link = platform.add_link(f"server-link-{i}", uplink_bandwidth,
                                 uplink_latency)
        platform.connect(host.name, server_router, link.name)
    return platform


def make_zoned_grid(num_sites: int = 4, hosts_per_site: int = 8,
                    host_speed: float = 2e9,
                    lan_bandwidth: float = 125e6,
                    lan_latency: float = 100e-6,
                    wan_bandwidth: float = 12.5e6,
                    wan_latency: float = 50e-3,
                    site_routing: str = "Floyd",
                    name: str = "zoned-grid") -> Platform:
    """A multi-site grid as a tree of routing zones.

    Each site is a :class:`~repro.platform.routing.NetZone` holding a
    gateway router and its hosts in a star; the root zone connects the
    sites to a WAN hub router with one wide-area link per site.  A route
    between ``site-<s>-host-<i>`` and ``site-<t>-host-<j>`` is therefore
    ``lan(i) + wan(s) + wan(t) + lan(j)`` — resolved zone by zone, never
    storing a per-pair table, so construction and memory stay O(hosts)
    even at 10⁵ hosts.

    ``site_routing`` picks the intra-site strategy (``"Floyd"`` by
    default, exercising the precomputed table; ``"Dijkstra"`` and
    ``"Full"`` work too — ``"Full"`` declares the O(hosts_per_site²)
    explicit pair routes, so keep the default for large sites).
    """
    if num_sites < 1:
        raise ValueError("a zoned grid needs at least one site")
    if hosts_per_site < 1:
        raise ValueError("a zoned grid needs at least one host per site")
    platform = Platform(name)
    hub = platform.add_router("wan-hub")
    for s in range(num_sites):
        site = platform.add_zone(f"site-{s}", routing=site_routing)
        gw = site.add_router(f"site-{s}-gw")     # first node => default gateway
        for i in range(hosts_per_site):
            host = site.add_host(f"site-{s}-host-{i}", host_speed)
            link = platform.add_link(f"site-{s}-lan-{i}", lan_bandwidth,
                                     lan_latency)
            if site_routing == "Full":
                # Full has no transitive closure: declare every pair.
                site.add_route(host.name, gw, [link.name])
                for j in range(i):
                    site.add_route(f"site-{s}-host-{j}", host.name,
                                   [f"site-{s}-lan-{j}", link.name])
            else:
                site.connect(host.name, gw, link.name)
        platform.add_link(f"wan-{s}", wan_bandwidth, wan_latency)
        platform.connect(hub, site.name, f"wan-{s}")
    return platform
