"""Platform descriptions: hosts, links, routes and topology generators.

A :class:`~repro.platform.platform.Platform` is a *description* of the
simulated hardware (the paper's "virtual platform"): hosts with CPU speeds,
links with bandwidth/latency, and the routes connecting them.  It is
independent of any simulation state; calling
:meth:`~repro.platform.platform.Platform.realize` instantiates the SURF
resources inside an engine.

Topologies can be built programmatically, generated (clusters, stars,
dumbbells, multi-site grids, BRITE-style random graphs) or loaded from
simple JSON/XML files.
"""

from repro.platform.platform import (
    HostSpec,
    LinkSpec,
    Platform,
    RealizedHost,
    RouteSpec,
)
from repro.platform.routing import LRUCache, NetZone
from repro.platform.generators import (
    make_client_server_lan,
    make_cluster,
    make_dumbbell,
    make_star,
    make_two_site_grid,
    make_zoned_grid,
)
from repro.platform.brite import (
    BriteConfig,
    make_barabasi_albert_topology,
    make_hierarchical_topology,
    make_waxman_topology,
)
from repro.platform.loader import load_platform, save_platform

__all__ = [
    "BriteConfig",
    "HostSpec",
    "LRUCache",
    "LinkSpec",
    "NetZone",
    "Platform",
    "RealizedHost",
    "RouteSpec",
    "load_platform",
    "make_barabasi_albert_topology",
    "make_client_server_lan",
    "make_cluster",
    "make_dumbbell",
    "make_hierarchical_topology",
    "make_star",
    "make_two_site_grid",
    "make_waxman_topology",
    "make_zoned_grid",
    "save_platform",
]
