"""The virtual platform: hosts, links, routes, and their realization in SURF.

The platform supports the two routing schemes needed by the paper's
experiments:

* **explicit (full) routing** — a route (ordered list of links) is declared
  for each pair of endpoints, like SimGrid platform files do;
* **graph (shortest-path) routing** — links are edges of a graph whose
  vertices are hosts and routers; routes are computed on demand by Dijkstra
  on the link latencies.  This is what the BRITE-generated random topologies
  of the validation experiment use.

Both can be mixed: explicit routes take precedence, the graph is the
fallback.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import NoRouteError, PlatformError
from repro.surf.cpu import CpuResource
from repro.surf.engine import SurfEngine
from repro.surf.network import LinkResource
from repro.surf.trace import Trace

__all__ = ["HostSpec", "LinkSpec", "RouteSpec", "Platform", "RealizedHost"]


@dataclass
class HostSpec:
    """Description of one host (a machine with a CPU)."""

    name: str
    speed: float                      # flop/s
    cores: int = 1
    availability_trace: Optional[Trace] = None
    state_trace: Optional[Trace] = None
    properties: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise PlatformError(f"host {self.name!r}: speed must be > 0")
        if self.cores < 1:
            raise PlatformError(f"host {self.name!r}: cores must be >= 1")


@dataclass
class LinkSpec:
    """Description of one network link."""

    name: str
    bandwidth: float                  # byte/s
    latency: float = 0.0              # seconds
    shared: bool = True
    bandwidth_trace: Optional[Trace] = None
    state_trace: Optional[Trace] = None

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise PlatformError(f"link {self.name!r}: bandwidth must be > 0")
        if self.latency < 0:
            raise PlatformError(f"link {self.name!r}: latency must be >= 0")


@dataclass
class RouteSpec:
    """An explicit route between two endpoints (hosts or routers)."""

    src: str
    dst: str
    links: List[str]
    symmetric: bool = True


@dataclass
class RealizedHost:
    """A host bound to its SURF CPU resource after :meth:`Platform.realize`."""

    spec: HostSpec
    cpu: CpuResource


class Platform:
    """A complete platform description plus (after realization) its resources."""

    def __init__(self, name: str = "platform") -> None:
        self.name = name
        self.hosts: Dict[str, HostSpec] = {}
        self.routers: Dict[str, str] = {}            # name -> name (a set, really)
        self.links: Dict[str, LinkSpec] = {}
        self.routes: Dict[Tuple[str, str], RouteSpec] = {}
        # graph routing: adjacency  node -> list of (neighbour, link_name)
        self.adjacency: Dict[str, List[Tuple[str, str]]] = {}
        # realization state
        self._realized = False
        self.engine: Optional[SurfEngine] = None
        self.cpu_by_host: Dict[str, CpuResource] = {}
        self.link_by_name: Dict[str, LinkResource] = {}
        self._route_cache: Dict[Tuple[str, str], List[str]] = {}
        # name->resource resolution of realized routes, memoized per
        # endpoint pair: the topology is frozen once realized, so the s4u
        # comm hot path must not re-resolve link names on every transfer.
        self._resource_route_cache: Dict[Tuple[str, str],
                                         List[LinkResource]] = {}

    # -- description ------------------------------------------------------------
    def add_host(self, name: str, speed: float, cores: int = 1,
                 availability_trace: Optional[Trace] = None,
                 state_trace: Optional[Trace] = None,
                 properties: Optional[Dict[str, str]] = None) -> HostSpec:
        """Declare a host.  ``speed`` is in flop/s."""
        self._check_not_realized()
        if name in self.hosts or name in self.routers:
            raise PlatformError(f"duplicate node name {name!r}")
        spec = HostSpec(name, speed, cores, availability_trace, state_trace,
                        dict(properties or {}))
        self.hosts[name] = spec
        return spec

    def add_router(self, name: str) -> str:
        """Declare a router: a routing-only node without a CPU."""
        self._check_not_realized()
        if name in self.hosts or name in self.routers:
            raise PlatformError(f"duplicate node name {name!r}")
        self.routers[name] = name
        return name

    def add_link(self, name: str, bandwidth: float, latency: float = 0.0,
                 shared: bool = True,
                 bandwidth_trace: Optional[Trace] = None,
                 state_trace: Optional[Trace] = None) -> LinkSpec:
        """Declare a link.  ``bandwidth`` is in byte/s, ``latency`` in s."""
        self._check_not_realized()
        if name in self.links:
            raise PlatformError(f"duplicate link name {name!r}")
        spec = LinkSpec(name, bandwidth, latency, shared,
                        bandwidth_trace, state_trace)
        self.links[name] = spec
        return spec

    def add_route(self, src: str, dst: str, links: Sequence[str],
                  symmetric: bool = True) -> RouteSpec:
        """Declare an explicit route between two nodes."""
        self._check_not_realized()
        self._check_node(src)
        self._check_node(dst)
        for link in links:
            if link not in self.links:
                raise PlatformError(f"route {src}->{dst}: unknown link {link!r}")
        spec = RouteSpec(src, dst, list(links), symmetric)
        self.routes[(src, dst)] = spec
        if symmetric:
            self.routes.setdefault((dst, src),
                                   RouteSpec(dst, src, list(reversed(links)),
                                             symmetric))
        return spec

    def connect(self, node_a: str, node_b: str, link_name: str) -> None:
        """Declare a graph edge: ``link_name`` joins ``node_a`` and ``node_b``.

        Routes between nodes without an explicit route are computed with
        Dijkstra over these edges.
        """
        self._check_not_realized()
        self._check_node(node_a)
        self._check_node(node_b)
        if link_name not in self.links:
            raise PlatformError(f"unknown link {link_name!r}")
        self.adjacency.setdefault(node_a, []).append((node_b, link_name))
        self.adjacency.setdefault(node_b, []).append((node_a, link_name))

    def _check_node(self, name: str) -> None:
        if name not in self.hosts and name not in self.routers:
            raise PlatformError(f"unknown node {name!r}")

    def _check_not_realized(self) -> None:
        if self._realized:
            raise PlatformError(
                "the platform was already realized; describe it fully first")

    # -- routing ------------------------------------------------------------------
    def route_links(self, src: str, dst: str) -> List[str]:
        """Ordered link names of the route from ``src`` to ``dst``.

        An explicit route wins; otherwise a shortest path (by latency, with
        hop count as tie-breaker) is computed over the graph edges.  A
        loopback route (``src == dst``) is the empty list.
        """
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return []
        key = (src, dst)
        if key in self._route_cache:
            return self._route_cache[key]
        if key in self.routes:
            links = list(self.routes[key].links)
        else:
            links = self._dijkstra(src, dst)
        self._route_cache[key] = links
        return links

    def _dijkstra(self, src: str, dst: str) -> List[str]:
        if src not in self.adjacency:
            raise NoRouteError(f"no route from {src!r} to {dst!r}")
        dist: Dict[str, float] = {src: 0.0}
        prev: Dict[str, Tuple[str, str]] = {}
        heap: List[Tuple[float, int, str]] = [(0.0, 0, src)]
        counter = 1
        visited = set()
        while heap:
            d, _, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == dst:
                break
            for neighbour, link_name in self.adjacency.get(node, []):
                link = self.links[link_name]
                # latency as primary weight; tiny epsilon so hop count breaks ties
                weight = link.latency + 1e-9
                nd = d + weight
                if neighbour not in dist or nd < dist[neighbour] - 1e-15:
                    dist[neighbour] = nd
                    prev[neighbour] = (node, link_name)
                    heapq.heappush(heap, (nd, counter, neighbour))
                    counter += 1
        if dst not in prev and dst != src:
            raise NoRouteError(f"no route from {src!r} to {dst!r}")
        # reconstruct
        path: List[str] = []
        node = dst
        while node != src:
            parent, link_name = prev[node]
            path.append(link_name)
            node = parent
        path.reverse()
        return path

    def route_latency(self, src: str, dst: str) -> float:
        """Sum of the latencies along the route from ``src`` to ``dst``."""
        return sum(self.links[name].latency for name in self.route_links(src, dst))

    # -- realization -----------------------------------------------------------------
    def realize(self, engine: Optional[SurfEngine] = None) -> SurfEngine:
        """Instantiate every host CPU and link inside a SURF engine.

        Returns the engine (creating a fresh one when none is supplied).
        Realization may only happen once per Platform instance.
        """
        if self._realized:
            raise PlatformError("platform already realized")
        engine = engine or SurfEngine()
        for spec in self.hosts.values():
            cpu = engine.cpu_model.add_cpu(
                spec.name, spec.speed, spec.cores,
                availability_trace=spec.availability_trace,
                state_trace=spec.state_trace)
            engine.register_resource_traces(cpu)
            self.cpu_by_host[spec.name] = cpu
        for spec in self.links.values():
            link = engine.network_model.add_link(
                spec.name, spec.bandwidth, spec.latency, spec.shared,
                bandwidth_trace=spec.bandwidth_trace,
                state_trace=spec.state_trace)
            engine.register_resource_traces(link)
            self.link_by_name[spec.name] = link
        self.engine = engine
        self._realized = True
        return engine

    @property
    def realized(self) -> bool:
        """Whether :meth:`realize` has been called."""
        return self._realized

    def route_resources(self, src: str, dst: str) -> List[LinkResource]:
        """The realized :class:`LinkResource` objects along a route.

        Memoized per ``(src, dst)``: realization freezes the topology, so
        the resolved list is computed once and the cached list itself is
        returned afterwards — callers must treat it as read-only.
        """
        if not self._realized:
            raise PlatformError("platform not realized yet")
        key = (src, dst)
        links = self._resource_route_cache.get(key)
        if links is None:
            links = [self.link_by_name[name]
                     for name in self.route_links(src, dst)]
            self._resource_route_cache[key] = links
        return links

    def cpu_of(self, host_name: str) -> CpuResource:
        """The realized CPU of a host."""
        if not self._realized:
            raise PlatformError("platform not realized yet")
        try:
            return self.cpu_by_host[host_name]
        except KeyError:
            raise PlatformError(f"unknown host {host_name!r}") from None

    # -- introspection ------------------------------------------------------------------
    def host_names(self) -> List[str]:
        """Sorted list of host names."""
        return sorted(self.hosts)

    def link_names(self) -> List[str]:
        """Sorted list of link names."""
        return sorted(self.links)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Platform(name={self.name!r}, hosts={len(self.hosts)}, "
                f"routers={len(self.routers)}, links={len(self.links)})")
