"""The virtual platform: hosts, links, routes, and their realization in SURF.

Routing is hierarchical (see :mod:`repro.platform.routing`): the platform
is a tree of :class:`~repro.platform.routing.NetZone` objects, each with a
pluggable intra-zone strategy:

* **Full** — a route (ordered list of links) is declared for each pair of
  vertices, like SimGrid platform files do;
* **Dijkstra** — links are edges of a graph; routes are computed on demand
  by Dijkstra on the link latencies (explicit routes win).  This is what
  the BRITE-generated random topologies of the validation experiment use,
  and the default of the root zone — a flat platform built through the
  zone-less API behaves exactly as it always did;
* **Floyd** — the all-pairs table is precomputed at first query.

End-to-end routes are concatenations of intra-zone segments up and down
the zone tree, resolved on demand behind an LRU-bounded cache, so a fully
touched platform stays O(touched) in memory instead of O(hosts²).

Realization is **lazy** by default: hosts, links and their SURF resources
materialize on first touch, so a 10⁵-host topology loads in O(touched).
SURF constraint ids are pinned to declaration indices, which makes lazy
realization bit-identical to **eager** realization (``realize(eager=True)``,
every resource instantiated up front) — same solver tie-breaking, same
simulated dates.  ``realize(sharded=True)`` additionally partitions the
kernel along the top-level zones (see :mod:`repro.surf.shard`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import NoRouteError, PlatformError
from repro.platform.routing import LRUCache, NetZone, resolve_route
from repro.surf.cpu import CpuResource
from repro.surf.engine import SurfEngine
from repro.surf.network import LinkResource
from repro.surf.trace import Trace

__all__ = ["HostSpec", "LinkSpec", "RouteSpec", "Platform", "RealizedHost",
           "NetZone"]


@dataclass
class HostSpec:
    """Description of one host (a machine with a CPU)."""

    name: str
    speed: float                      # flop/s
    cores: int = 1
    availability_trace: Optional[Trace] = None
    state_trace: Optional[Trace] = None
    properties: Dict[str, str] = field(default_factory=dict)
    # Declaration index, set by Platform.add_host: pins the SURF
    # constraint id so lazy/eager/sharded realization all number the
    # resource identically.
    index: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise PlatformError(f"host {self.name!r}: speed must be > 0")
        if self.cores < 1:
            raise PlatformError(f"host {self.name!r}: cores must be >= 1")


@dataclass
class LinkSpec:
    """Description of one network link."""

    name: str
    bandwidth: float                  # byte/s
    latency: float = 0.0              # seconds
    shared: bool = True
    bandwidth_trace: Optional[Trace] = None
    state_trace: Optional[Trace] = None
    # Declaration index, set by Platform.add_link (see HostSpec.index).
    index: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise PlatformError(f"link {self.name!r}: bandwidth must be > 0")
        if self.latency < 0:
            raise PlatformError(f"link {self.name!r}: latency must be >= 0")


@dataclass
class RouteSpec:
    """An explicit route between two endpoints (hosts, routers or zones)."""

    src: str
    dst: str
    links: List[str]
    symmetric: bool = True


@dataclass
class RealizedHost:
    """A host bound to its SURF CPU resource after :meth:`Platform.realize`."""

    spec: HostSpec
    cpu: CpuResource


class Platform:
    """A complete platform description plus (after realization) its resources.

    Parameters
    ----------
    name:
        Display name.
    route_cache_size:
        Bound of the two route LRU caches (resolved link-name routes and
        realized resource routes).  ``None`` removes the bound.
    """

    def __init__(self, name: str = "platform",
                 route_cache_size: Optional[int] = 16384) -> None:
        self.name = name
        self.hosts: Dict[str, HostSpec] = {}
        self.routers: Dict[str, str] = {}            # name -> name (a set, really)
        self.links: Dict[str, LinkSpec] = {}
        # The zone tree.  The root zone holds every node declared through
        # the flat (zone-less) API; its Dijkstra strategy with
        # explicit-route precedence is the legacy flat behaviour.
        self.root_zone = NetZone(self, "root", parent=None, routing="Dijkstra")
        self.zones: Dict[str, NetZone] = {}
        self._node_zone: Dict[str, NetZone] = {}
        # realization state
        self._realized = False
        self._lazy = False
        self.engine: Optional[SurfEngine] = None
        self.cpu_by_host: Dict[str, CpuResource] = {}
        self.link_by_name: Dict[str, LinkResource] = {}
        self._link_zone: Dict[str, Optional[NetZone]] = {}
        # Route resolution is on-demand behind LRU-bounded caches: names
        # per (src, dst), and — after realization — the resolved
        # LinkResource tuples the s4u comm hot path consumes.
        self.route_cache_size = route_cache_size
        self._route_cache: LRUCache = LRUCache(route_cache_size)
        self._resource_route_cache: LRUCache = LRUCache(route_cache_size)

    # -- legacy flat views of the root zone -------------------------------------------
    @property
    def routes(self) -> Dict[Tuple[str, str], RouteSpec]:
        """Explicit routes of the root zone (legacy flat attribute)."""
        return self.root_zone.routes

    @property
    def adjacency(self) -> Dict[str, List[Tuple[str, str]]]:
        """Graph edges of the root zone (legacy flat attribute)."""
        return self.root_zone.adjacency

    # -- description ------------------------------------------------------------------
    def add_zone(self, name: str, routing: str = "Dijkstra",
                 parent: Optional[Union[str, NetZone]] = None,
                 gateway: Optional[str] = None) -> NetZone:
        """Create a routing zone (child of ``parent``, default the root).

        ``routing`` picks the intra-zone strategy (``"Full"``,
        ``"Dijkstra"`` or ``"Floyd"``); ``gateway`` optionally names the
        node (or child zone) through which routes enter and leave.
        """
        self._check_not_realized()
        parent_zone = self._resolve_zone(parent)
        if name in self.zones or name in self.hosts or name in self.routers:
            raise PlatformError(f"duplicate zone name {name!r}")
        zone = NetZone(self, name, parent_zone, routing=routing,
                       gateway=gateway)
        self.zones[name] = zone
        self._invalidate_route_caches()
        return zone

    def zone(self, name: str) -> NetZone:
        """Lookup a zone by name (the root zone is ``platform.root_zone``)."""
        try:
            return self.zones[name]
        except KeyError:
            raise PlatformError(f"unknown zone {name!r}") from None

    def zone_of(self, node_name: str) -> NetZone:
        """The zone a host or router was declared in."""
        self._check_node(node_name)
        return self._node_zone[node_name]

    def _resolve_zone(self, zone: Optional[Union[str, NetZone]]) -> NetZone:
        if zone is None:
            return self.root_zone
        if isinstance(zone, NetZone):
            if zone.platform is not self:
                raise PlatformError(
                    f"zone {zone.name!r} belongs to another platform")
            return zone
        return self.zone(zone)

    def add_host(self, name: str, speed: float, cores: int = 1,
                 availability_trace: Optional[Trace] = None,
                 state_trace: Optional[Trace] = None,
                 properties: Optional[Dict[str, str]] = None,
                 zone: Optional[Union[str, NetZone]] = None) -> HostSpec:
        """Declare a host.  ``speed`` is in flop/s."""
        self._check_not_realized()
        zone_obj = self._resolve_zone(zone)
        self._check_fresh_node_name(name)
        if availability_trace is not None:
            # Fail at declaration, naming the trace, not mid-step when the
            # bad scaling factor would finally be applied.
            availability_trace.validate_availability()
        spec = HostSpec(name, speed, cores, availability_trace, state_trace,
                        dict(properties or {}))
        spec.index = len(self.hosts)
        self.hosts[name] = spec
        zone_obj.nodes[name] = None
        self._node_zone[name] = zone_obj
        return spec

    def add_router(self, name: str,
                   zone: Optional[Union[str, NetZone]] = None) -> str:
        """Declare a router: a routing-only node without a CPU."""
        self._check_not_realized()
        zone_obj = self._resolve_zone(zone)
        self._check_fresh_node_name(name)
        self.routers[name] = name
        zone_obj.nodes[name] = None
        self._node_zone[name] = zone_obj
        return name

    def add_link(self, name: str, bandwidth: float, latency: float = 0.0,
                 shared: bool = True,
                 bandwidth_trace: Optional[Trace] = None,
                 state_trace: Optional[Trace] = None) -> LinkSpec:
        """Declare a link.  ``bandwidth`` is in byte/s, ``latency`` in s."""
        self._check_not_realized()
        if name in self.links:
            raise PlatformError(f"duplicate link name {name!r}")
        if bandwidth_trace is not None:
            bandwidth_trace.validate_availability()
        spec = LinkSpec(name, bandwidth, latency, shared,
                        bandwidth_trace, state_trace)
        spec.index = len(self.links)
        self.links[name] = spec
        return spec

    def add_route(self, src: str, dst: str, links: Sequence[str],
                  symmetric: bool = True) -> RouteSpec:
        """Declare an explicit route between two vertices of one zone.

        Both endpoints must be vertices of the same zone: nodes declared
        directly in it, or names of its child zones.
        """
        self._check_not_realized()
        zone = self._common_zone_of_vertices(src, dst)
        spec = zone.add_route(src, dst, links, symmetric)
        self._invalidate_route_caches()
        return spec

    def connect(self, node_a: str, node_b: str, link_name: str) -> None:
        """Declare a graph edge: ``link_name`` joins two vertices.

        Routes between vertices without an explicit route are computed by
        the zone's strategy over these edges.  Vertices naming child zones
        attach the link at the zone's gateway (an inter-zone link).
        """
        self._check_not_realized()
        zone = self._common_zone_of_vertices(node_a, node_b)
        zone.connect(node_a, node_b, link_name)
        self._invalidate_route_caches()

    def _common_zone_of_vertices(self, name_a: str, name_b: str) -> NetZone:
        """The zone that has both names as vertices (node or child zone)."""
        zone_a = self._vertex_zone(name_a)
        zone_b = self._vertex_zone(name_b)
        if zone_a is not zone_b:
            raise PlatformError(
                f"{name_a!r} (zone {zone_a.name!r}) and {name_b!r} "
                f"(zone {zone_b.name!r}) are not vertices of the same zone; "
                "connect their zones in the common ancestor instead")
        return zone_a

    def _vertex_zone(self, name: str) -> NetZone:
        """The zone in which ``name`` is a vertex."""
        zone = self._node_zone.get(name)
        if zone is not None:
            return zone
        child = self.zones.get(name)
        if child is not None:
            if child.parent is None:
                raise PlatformError(f"zone {name!r} has no parent zone")
            return child.parent
        raise PlatformError(f"unknown node or zone {name!r}")

    def _check_fresh_node_name(self, name: str) -> None:
        if name in self.hosts or name in self.routers:
            raise PlatformError(f"duplicate node name {name!r}")
        if name in self.zones:
            raise PlatformError(
                f"node name {name!r} collides with a zone name")

    def _check_node(self, name: str) -> None:
        if name not in self.hosts and name not in self.routers:
            raise PlatformError(f"unknown node {name!r}")

    def _check_not_realized(self) -> None:
        if self._realized:
            raise PlatformError(
                "the platform was already realized; describe it fully first")

    def _invalidate_route_caches(self) -> None:
        """Topology changed pre-realization: drop memoized routes."""
        self._route_cache.clear()
        self._resource_route_cache.clear()

    # -- routing ------------------------------------------------------------------
    def route_links(self, src: str, dst: str) -> List[str]:
        """Ordered link names of the route from ``src`` to ``dst``.

        The route is resolved on demand across the zone tree (see
        :mod:`repro.platform.routing`) and memoized in an LRU-bounded
        cache.  The returned list is a fresh copy — mutating it never
        corrupts the cache.  A loopback route (``src == dst``) is the
        empty list.
        """
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return []
        key = (src, dst)
        links = self._route_cache.get(key)
        if links is None:
            links = tuple(resolve_route(self, src, dst))
            self._route_cache.put(key, links)
        return list(links)

    def route_latency(self, src: str, dst: str) -> float:
        """Sum of the latencies along the route from ``src`` to ``dst``."""
        return sum(self.links[name].latency for name in self.route_links(src, dst))

    def route_cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Counters of the two route caches (routing's observable contract)."""
        return {"routes": self._route_cache.stats(),
                "resource_routes": self._resource_route_cache.stats()}

    # -- realization -----------------------------------------------------------------
    def realize(self, engine: Optional[SurfEngine] = None,
                lazy: Optional[bool] = None, eager: bool = False,
                sharded: bool = False) -> SurfEngine:
        """Instantiate host CPUs and links inside a SURF engine.

        Lazy (the default): resources materialize on first touch
        (``cpu_of``, ``route_resources``, ``link_resource``), so a huge
        platform realizes in O(touched); only resources carrying traces
        are materialized immediately (their events must be able to fire
        whether or not the resource is otherwise used).  Because SURF
        constraint ids are pinned to declaration indices, lazy and eager
        realization produce bit-identical simulated dates — ``eager=True``
        remains as an escape hatch that instantiates everything up front.

        ``sharded=True`` builds a :class:`ShardedSurfEngine` partitioned
        along the top-level zones of this platform (ignored when an
        ``engine`` is supplied).

        Returns the engine (creating a fresh one when none is supplied).
        Realization may only happen once per Platform instance.
        """
        if self._realized:
            raise PlatformError("platform already realized")
        if lazy is None:
            lazy = not eager
        elif eager and lazy:
            raise PlatformError("realize(): lazy and eager are exclusive")
        if engine is None:
            if sharded:
                from repro.surf.shard import ShardedSurfEngine
                engine = ShardedSurfEngine(list(self.root_zone.children))
            else:
                engine = SurfEngine()
        self.engine = engine
        self._lazy = lazy
        self._realized = True
        self._link_zone = self._compute_link_zones()
        if lazy:
            for spec in self.hosts.values():
                if (spec.availability_trace is not None
                        or spec.state_trace is not None):
                    self._materialize_cpu(spec)
            for spec in self.links.values():
                if (spec.bandwidth_trace is not None
                        or spec.state_trace is not None):
                    self._materialize_link(spec)
        else:
            for spec in self.hosts.values():
                self._materialize_cpu(spec)
            for spec in self.links.values():
                self._materialize_link(spec)
        return engine

    def _compute_link_zones(self) -> Dict[str, Optional[NetZone]]:
        """Owning zone per link: the single zone referencing it, else root.

        A link referenced by the routes/edges of exactly one zone belongs
        to that zone (a sharded engine keeps its constraint in the zone's
        shard); links referenced from several zones — inter-zone links
        attached in a common ancestor — map to ``None``, the root shard.
        """
        owners: Dict[str, Optional[NetZone]] = {}
        ambiguous: Dict[str, bool] = {}
        for zone in [self.root_zone, *self.zones.values()]:
            names = set()
            for route in zone.routes.values():
                names.update(route.links)
            for edges in zone.adjacency.values():
                for _vertex, link_name in edges:
                    names.add(link_name)
            for name in names:
                if name not in owners:
                    owners[name] = None if zone.parent is None else zone
                elif owners[name] is not zone:
                    ambiguous[name] = True
        for name in ambiguous:
            owners[name] = None
        return owners

    def _materialize_cpu(self, spec: HostSpec) -> CpuResource:
        cpu = self.engine.add_cpu(
            spec.name, spec.speed, spec.cores,
            availability_trace=spec.availability_trace,
            state_trace=spec.state_trace,
            index=spec.index,
            zone=self._node_zone.get(spec.name))
        self.engine.register_resource_traces(cpu)
        self.cpu_by_host[spec.name] = cpu
        return cpu

    def _materialize_link(self, spec: LinkSpec) -> LinkResource:
        link = self.engine.add_link(
            spec.name, spec.bandwidth, spec.latency, spec.shared,
            bandwidth_trace=spec.bandwidth_trace,
            state_trace=spec.state_trace,
            index=spec.index,
            zone=self._link_zone.get(spec.name))
        self.engine.register_resource_traces(link)
        self.link_by_name[spec.name] = link
        return link

    def kernel_stats(self) -> Dict[str, object]:
        """Engine solver/shard stats merged with the route cache stats.

        One aggregated observability dict (satellite of the sharded
        kernel): ``solver`` sums every model's LMM counters across shards,
        ``route_caches`` is :meth:`route_cache_stats`, plus parallel
        executor and shard/window sections when present.
        """
        if self.engine is None:
            raise PlatformError("platform not realized yet")
        stats = dict(self.engine.kernel_stats())
        stats["route_caches"] = self.route_cache_stats()
        return stats

    @property
    def realized(self) -> bool:
        """Whether :meth:`realize` has been called."""
        return self._realized

    @property
    def lazy(self) -> bool:
        """Whether the platform was realized lazily."""
        return self._realized and self._lazy

    def link_resource(self, name: str) -> LinkResource:
        """The realized :class:`LinkResource` of a link (materializing it)."""
        if not self._realized:
            raise PlatformError("platform not realized yet")
        link = self.link_by_name.get(name)
        if link is None:
            spec = self.links.get(name)
            if spec is None:
                raise PlatformError(f"unknown link {name!r}")
            if not self._lazy:
                raise PlatformError(
                    f"link {name!r} missing from an eagerly realized "
                    "platform (realization is inconsistent)")
            link = self._materialize_link(spec)
        return link

    def route_resources(self, src: str, dst: str) -> Tuple[LinkResource, ...]:
        """The realized :class:`LinkResource` objects along a route.

        Returns a **tuple** — route lists are read-only by contract (PR 5)
        and a tuple enforces it.  Memoized per ``(src, dst)`` in an
        LRU-bounded cache; on a lazily realized platform the links of the
        route materialize here, on first touch.
        """
        if not self._realized:
            raise PlatformError("platform not realized yet")
        key = (src, dst)
        links = self._resource_route_cache.get(key)
        if links is None:
            links = tuple(self.link_resource(name)
                          for name in self.route_links(src, dst))
            self._resource_route_cache.put(key, links)
        return links

    def cpu_of(self, host_name: str) -> CpuResource:
        """The realized CPU of a host (materializing it when lazy)."""
        if not self._realized:
            raise PlatformError("platform not realized yet")
        cpu = self.cpu_by_host.get(host_name)
        if cpu is None:
            spec = self.hosts.get(host_name)
            if spec is None:
                raise PlatformError(f"unknown host {host_name!r}")
            if not self._lazy:
                raise PlatformError(
                    f"host {host_name!r} missing from an eagerly realized "
                    "platform (realization is inconsistent)")
            cpu = self._materialize_cpu(spec)
        return cpu

    # -- introspection ------------------------------------------------------------------
    def host_names(self) -> List[str]:
        """Sorted list of host names."""
        return sorted(self.hosts)

    def link_names(self) -> List[str]:
        """Sorted list of link names."""
        return sorted(self.links)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Platform(name={self.name!r}, hosts={len(self.hosts)}, "
                f"routers={len(self.routers)}, links={len(self.links)}, "
                f"zones={len(self.zones)})")
