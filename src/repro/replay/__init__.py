"""Trace-driven cluster replay and recovery policies on top of s4u.

``repro.replay`` is a frontend, not kernel code: it composes the platform
description (availability/state traces attached at declaration), the s4u
actor API (auto-restart daemons, detached sends), the failure injector
and the campaign runner into the paper's validation workloads — replaying
cluster-log shapes and comparing checkpoint/recovery policies under
seeded churn.  Import from here::

    from repro.replay import ClusterReplay, synthetic_workload
    from repro.replay import compare_recovery_policies
"""

from repro.replay.cluster import (
    ClusterJob,
    ClusterReplay,
    ClusterWorkload,
    synthetic_workload,
)
from repro.replay.recovery import (
    RECOVERY_POLICIES,
    compare_recovery_policies,
    run_recovery_experiment,
)

__all__ = [
    "ClusterJob",
    "ClusterReplay",
    "ClusterWorkload",
    "synthetic_workload",
    "RECOVERY_POLICIES",
    "compare_recovery_policies",
    "run_recovery_experiment",
]
