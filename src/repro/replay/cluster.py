"""Cluster-trace replay: drive an s4u fleet from job/availability logs.

The paper validates SimGrid by replaying the shapes found in production
cluster logs: jobs arriving over time on machines whose speed is modulated
by external load and which occasionally fail outright.  This module is the
corresponding frontend: a :class:`ClusterWorkload` captures those shapes
(job arrivals + per-machine availability/state traces), and
:class:`ClusterReplay` turns one into a running master/worker fleet —
availability traces attached at platform declaration, failures driven
either by the workload's state traces or by seeded
:class:`~repro.s4u.failure.FailureInjector` churn layered on top.

Everything is seeded, so a replay is a pure function of
``(workload, churn options, kernel flavour)`` — the equivalence tests run
the same workload on the flat, sharded and parallel-solve kernels and
compare dates.

Two delivery semantics (PR 10):

* ``at_most_once`` (default) — the original fire-and-forget pipeline: a
  job consumed by a worker that dies mid-compute is simply lost and shows
  up in ``metrics["lost"]``;
* ``at_least_once`` — jobs carry sequence numbers, a
  :class:`~repro.ft.heartbeat.HeartbeatMonitor` watches the nodes, and a
  resubmitter actor re-sends the outstanding jobs of suspected nodes
  (plus an ack-timeout sweep for blips too short for the detector).
  Duplicate executions are deduplicated at the collector, so
  ``metrics["lost"]`` is zero whenever every node is eventually up long
  enough before the horizon — at the price of ``metrics["duplicates"]``
  redundant executions.

``supervised=True`` additionally replaces the workers' ``auto_restart``
flag with a :class:`~repro.ft.supervisor.Supervisor` tree (one
``permanent`` child per node), exercising the same host-down park/respawn
path through the supervision machinery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ft import ChildSpec, HeartbeatMonitor, Supervisor
from repro.platform import Platform
from repro.s4u import Engine, FailureInjector, this_actor
from repro.exceptions import (
    HostFailureError,
    SimTimeoutError,
    TransferFailureError,
)
from repro.surf.trace import Trace

__all__ = ["ClusterJob", "ClusterWorkload", "ClusterReplay",
           "synthetic_workload"]


@dataclass(frozen=True)
class ClusterJob:
    """One job of the replayed log: arrival date and work amount.

    ``host`` pins the job to a node name; ``None`` lets the dispatcher
    assign round-robin (deterministically, by job order).
    """

    submit: float
    flops: float
    host: Optional[str] = None
    name: str = ""


@dataclass
class ClusterWorkload:
    """The replayable shape of a cluster log.

    ``availability`` and ``state`` map node names to the traces replayed
    on them (external load and failures respectively); ``horizon`` is the
    date the replay stops banking results — lost jobs (e.g. killed by a
    failure with nobody to resubmit them) then show up as
    ``jobs - completed`` instead of hanging the run forever.
    """

    num_hosts: int
    jobs: List[ClusterJob]
    availability: Dict[str, Trace] = field(default_factory=dict)
    state: Dict[str, Trace] = field(default_factory=dict)
    horizon: Optional[float] = None


def synthetic_workload(seed: int, num_hosts: int = 8, num_jobs: int = 32,
                       mean_interarrival: float = 0.5,
                       mean_flops: float = 2e9,
                       host_speed: float = 1e9,
                       load_period: float = 4.0, dip: float = 0.5,
                       failing_fraction: float = 0.25,
                       node_prefix: str = "node") -> ClusterWorkload:
    """A seeded workload with the statistical shape of a cluster log.

    Job arrivals are Poisson (exponential inter-arrival times), sizes
    uniform around ``mean_flops``; every node carries a periodic
    availability trace whose dip lands at a seeded phase (so the dips are
    de-synchronized like independent background load); a seeded fraction
    of the nodes additionally gets one finite off/on failure pulse as a
    state trace.  Same seed, same workload — the replay tests lean on it.
    """
    if num_hosts < 1:
        raise ValueError("a workload needs at least one host")
    rng = random.Random(seed)
    jobs: List[ClusterJob] = []
    clock = 0.0
    for index in range(num_jobs):
        clock += rng.expovariate(1.0 / mean_interarrival)
        pinned = (f"{node_prefix}-{rng.randrange(num_hosts)}"
                  if rng.random() < 0.5 else None)
        jobs.append(ClusterJob(submit=clock,
                               flops=rng.uniform(0.5, 1.5) * mean_flops,
                               host=pinned, name=f"job-{index}"))
    availability: Dict[str, Trace] = {}
    state: Dict[str, Trace] = {}
    for index in range(num_hosts):
        node = f"{node_prefix}-{index}"
        phase = rng.uniform(0.5, load_period - 1.5)
        availability[node] = Trace(
            [(0.0, 1.0), (phase, dip), (phase + 1.0, 1.0)],
            period=load_period, name=f"{node}-load")
        if rng.random() < failing_fraction:
            down_at = rng.uniform(1.0, 0.5 * num_jobs * mean_interarrival)
            downtime = rng.uniform(0.5, 2.0)
            state[node] = Trace([(down_at, 0.0), (down_at + downtime, 1.0)],
                                name=f"{node}-state")
    last_submit = jobs[-1].submit if jobs else 0.0
    # Generous tail: total work spread over the fleet at the dipped speed,
    # tripled — enough for every non-lost job to land before the horizon.
    work = sum(job.flops for job in jobs)
    tail = 3.0 * work / (num_hosts * host_speed * dip) + 5.0
    return ClusterWorkload(num_hosts=num_hosts, jobs=jobs,
                           availability=availability, state=state,
                           horizon=last_submit + tail)


# -- actor bodies (module-level so snapshotted engines can name them) ----------

def _dispatcher(actor, replay):
    """Feed jobs to per-node mailboxes at their submit dates, then hold
    the simulation open until the horizon (workers are daemons)."""
    engine = actor.engine
    for index, job in enumerate(replay.workload.jobs):
        if job.submit > actor.now:
            yield this_actor.sleep_for(job.submit - actor.now)
        node = job.host or f"{replay.node_prefix}-{index % replay.workload.num_hosts}"
        if replay.at_least_once:
            # Record the outstanding entry before the send: the
            # resubmitter must never observe an unacked job it cannot see.
            replay.outstanding[index] = [node, job, actor.now]
            payload = (index, job)
        else:
            payload = job
        # Detached: a dispatch to a currently-dead node waits in the
        # mailbox and is redelivered when its auto-restart worker reboots.
        yield engine.mailbox(node).put_async(payload,
                                             size=replay.dispatch_size,
                                             detached=True)
        replay.dispatched += 1
    horizon = replay.horizon
    if horizon > actor.now:
        yield this_actor.sleep_for(horizon - actor.now)


def _worker(actor, replay):
    """One node: pull jobs from the node mailbox, compute, ack."""
    engine = actor.engine
    box = engine.mailbox(actor.host.name)
    while True:
        msg = yield box.get()
        seq, job = msg if replay.at_least_once else (None, msg)
        try:
            yield actor.execute(job.flops)
        except HostFailureError:
            # The exec died but the actor survived (link-level failure
            # modes); a host failure kills the actor instead and the
            # auto-restart reboot re-enters this loop with a fresh body.
            replay.metrics["failed_execs"] += 1
            continue
        ack = ((actor.now, seq, job) if replay.at_least_once
               else (actor.now, job))
        yield engine.mailbox("acks").put_async(
            ack, size=replay.ack_size, detached=True)


def _collector(actor, replay):
    """Bank acks on the frontend until the run ends.

    In at-least-once mode this is where duplicates die: the first ack of
    a sequence number retires its outstanding entry, later ones only
    bump the ``duplicates`` counter.
    """
    box = actor.engine.mailbox("acks")
    while True:
        msg = yield box.get()
        if replay.at_least_once:
            done_at, seq, job = msg
            if seq in replay.acked:
                replay.metrics["duplicates"] += 1
                continue
            replay.acked.add(seq)
            replay.outstanding.pop(seq, None)
        else:
            done_at, job = msg
        replay.completed.append((actor.now, job.name))


def _resubmitter(actor, replay):
    """At-least-once driver: re-send unacked jobs of suspected nodes.

    Wakes on detector events (forwarded over the ``ft:notify`` mailbox)
    and every ``detector_period`` otherwise.  A *suspect* event re-sends
    everything outstanding on that node immediately; the periodic sweep
    re-sends entries unacked for longer than ``ack_timeout`` — the safety
    net for jobs lost to blips too short for the detector (e.g. a message
    that died in flight while its node stayed up).
    """
    engine = actor.engine
    notify = engine.mailbox("ft:notify")
    while True:
        suspect = None
        try:
            kind, node, _date = yield notify.get(
                timeout=replay.detector_period)
            if kind == "suspect":
                suspect = node
        except (SimTimeoutError, TransferFailureError):
            pass
        now = actor.now
        for seq, entry in sorted(replay.outstanding.items()):
            node, job, sent = entry
            if node != suspect and now - sent <= replay.ack_timeout:
                continue
            if seq not in replay.outstanding:  # acked while we resent
                continue
            entry[2] = actor.now
            replay.metrics["resubmitted"] += 1
            yield engine.mailbox(node).put_async(
                (seq, job), size=replay.dispatch_size, detached=True)


class ClusterReplay:
    """Replay a :class:`ClusterWorkload` on an s4u star fleet.

    The platform is one ``frontend`` host with a star of worker nodes;
    each node carries the workload's availability/state traces *attached
    at declaration*, so the kernel drives them through the trace heap.
    Optional seeded churn (``churn_seed``) layers a
    :class:`FailureInjector` on top of the trace-driven failures.

    ``semantics`` selects the delivery mode (see the module docstring);
    ``detector_period``/``detector_timeout`` parameterize the heartbeat
    detector of the at-least-once pipeline and ``ack_timeout`` its
    periodic resubmission sweep.  ``supervised`` swaps the workers'
    ``auto_restart`` flag for a :class:`~repro.ft.supervisor.Supervisor`
    tree.
    """

    def __init__(self, workload: ClusterWorkload,
                 host_speed: float = 1e9,
                 link_bandwidth: float = 1.25e7,
                 link_latency: float = 1e-4,
                 node_prefix: str = "node",
                 dispatch_size: float = 1e4,
                 ack_size: float = 1e4,
                 churn_seed: Optional[int] = None,
                 churn_mtbf: float = 2.0,
                 churn_downtime: float = 0.5,
                 churn_max_failures: int = 5,
                 semantics: str = "at_most_once",
                 detector_period: float = 0.25,
                 detector_timeout: Optional[float] = None,
                 ack_timeout: float = 5.0,
                 supervised: bool = False,
                 supervisor_max_restarts: int = 1000,
                 supervisor_window: float = 1.0) -> None:
        if semantics not in ("at_most_once", "at_least_once"):
            raise ValueError(f"unknown semantics {semantics!r}; pick "
                             "'at_most_once' or 'at_least_once'")
        self.workload = workload
        self.host_speed = host_speed
        self.link_bandwidth = link_bandwidth
        self.link_latency = link_latency
        self.node_prefix = node_prefix
        self.dispatch_size = dispatch_size
        self.ack_size = ack_size
        self.churn_seed = churn_seed
        self.churn_mtbf = churn_mtbf
        self.churn_downtime = churn_downtime
        self.churn_max_failures = churn_max_failures
        self.semantics = semantics
        self.at_least_once = semantics == "at_least_once"
        self.detector_period = detector_period
        self.detector_timeout = detector_timeout
        self.ack_timeout = ack_timeout
        self.supervised = supervised
        self.supervisor_max_restarts = supervisor_max_restarts
        self.supervisor_window = supervisor_window
        self.horizon = (workload.horizon if workload.horizon is not None
                        else (workload.jobs[-1].submit + 30.0
                              if workload.jobs else 1.0))
        self.completed: List[tuple] = []
        self.dispatched = 0
        self.metrics: Dict[str, float] = {}
        #: At-least-once state: seq -> [node, job, last-sent date] for
        #: unacked jobs; the set of seqs already acked (dedup).
        self.outstanding: Dict[int, list] = {}
        self.acked: set = set()
        self.supervisor: Optional[Supervisor] = None
        self.detector: Optional[HeartbeatMonitor] = None

    # -- platform ------------------------------------------------------------------
    def build_platform(self) -> Platform:
        workload = self.workload
        platform = Platform("cluster-replay")
        platform.add_host("frontend", self.host_speed)
        for index in range(workload.num_hosts):
            node = f"{self.node_prefix}-{index}"
            host = platform.add_host(
                node, self.host_speed,
                availability_trace=workload.availability.get(node),
                state_trace=workload.state.get(node))
            link = platform.add_link(f"{node}-link", self.link_bandwidth,
                                     self.link_latency)
            platform.connect(host.name, "frontend", link.name)
        return platform

    # -- execution -----------------------------------------------------------------
    def run(self, sharded: bool = False,
            parallel_solves: bool = False) -> Dict[str, float]:
        """Replay the workload; returns the metrics dictionary."""
        engine = Engine(self.build_platform(), sharded=sharded,
                        parallel_solves=parallel_solves)
        try:
            return self._run(engine)
        finally:
            engine.close()

    def _run(self, engine: Engine) -> Dict[str, float]:
        workload = self.workload
        self.completed = []
        self.dispatched = 0
        self.outstanding = {}
        self.acked = set()
        self.supervisor = None
        self.detector = None
        self.metrics = {"failed_execs": 0, "speed_changes": 0,
                        "host_downs": 0, "host_ups": 0,
                        "duplicates": 0, "resubmitted": 0}

        engine.on_resource_speed_change(self._count_speed_change)
        engine.on_host_state_change(self._count_state_change)

        nodes = [f"{self.node_prefix}-{i}"
                 for i in range(workload.num_hosts)]
        engine.add_actor("dispatcher", "frontend", _dispatcher, self)
        engine.add_actor("collector", "frontend", _collector, self,
                         daemon=True)
        if self.supervised:
            self.supervisor = Supervisor(
                engine,
                [ChildSpec(f"worker-{index}", node, _worker, self,
                           restart="permanent", daemon=True)
                 for index, node in enumerate(nodes)],
                strategy="one_for_one",
                max_restarts=self.supervisor_max_restarts,
                window=self.supervisor_window,
                name="worker-supervisor", host="frontend", daemon=True)
            self.supervisor.start()
        else:
            for index, node in enumerate(nodes):
                engine.add_actor(f"worker-{index}", node,
                                 _worker, self, daemon=True,
                                 auto_restart=True)
        if self.at_least_once:
            self.detector = HeartbeatMonitor(
                engine, nodes, "frontend",
                period=self.detector_period,
                timeout=self.detector_timeout,
                notify_mailbox="ft:notify", name="ft").start()
            engine.add_actor("resubmitter", "frontend", _resubmitter,
                             self, daemon=True)
        injector = None
        if self.churn_seed is not None:
            injector = FailureInjector(
                engine, seed=self.churn_seed,
                hosts=nodes,
                mtbf=self.churn_mtbf, mean_downtime=self.churn_downtime,
                max_failures=self.churn_max_failures).start()

        final = engine.run()
        metrics = dict(self.metrics)
        metrics.update(
            jobs=len(workload.jobs),
            dispatched=self.dispatched,
            completed=len(self.completed),
            lost=len(workload.jobs) - len(self.completed),
            makespan=(max(date for date, _ in self.completed)
                      if self.completed else 0.0),
            injected_failures=injector.failures if injector else 0,
            worker_restarts=(self.supervisor.restarts if self.supervisor
                             else engine.restart_count),
            suspects=(len([e for e in self.detector.events
                           if e[1] == "suspect"]) if self.detector else 0),
            final_time=final,
        )
        return metrics

    # -- observers -----------------------------------------------------------------
    def _count_speed_change(self, resource, available_speed) -> None:
        self.metrics["speed_changes"] += 1

    def _count_state_change(self, host, is_on) -> None:
        self.metrics["host_ups" if is_on else "host_downs"] += 1
