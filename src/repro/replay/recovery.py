"""Checkpoint/recovery policies compared under seeded churn.

The scenario the paper's availability traces exist for: long-running work
on machines that fail and come back.  Each worker computes a fixed amount
of flops in chunks, banking progress into its host's ``data`` dictionary
(which survives actor restarts) whenever it *checkpoints* — paying a
checkpoint cost in flops.  Two policies are compared:

* ``periodic`` — checkpoint after every chunk: maximum checkpoint
  overhead, minimum work lost per failure;
* ``event`` — checkpoint only when a failure has been observed anywhere
  in the fleet since the last checkpoint (via the engine's host state
  observers): near-zero overhead in calm runs, more work lost when a
  failure hits a worker that had not banked for a while.

Workers are ``transient`` children of a
:class:`~repro.ft.supervisor.Supervisor` tree (PR 10 — previously a
hand-rolled keep-alive poller next to ``auto_restart`` flags): a worker
killed by churn is respawned by the supervisor (parked while its host is
down), a worker that finished its flops is done for good, and the tree's
``deadline`` bounds the run.  ``on_exit`` accounting measures the wasted
(unbanked) flops per kill.  :func:`compare_recovery_policies` runs the
two policies over a seed grid with :func:`~repro.campaign.run_campaign`,
forking every run from one warmed engine snapshot.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.campaign import grid, run_campaign, summarize
from repro.ft import ChildSpec, Supervisor
from repro.platform import make_star
from repro.s4u import Engine, FailureInjector

__all__ = ["RECOVERY_POLICIES", "DEFAULT_RECOVERY_CONFIG",
           "run_recovery_experiment", "compare_recovery_policies"]

RECOVERY_POLICIES = ("periodic", "event")

DEFAULT_RECOVERY_CONFIG: Dict[str, Any] = {
    "num_workers": 4,
    "host_speed": 1e9,
    "work_flops": 4e9,          # 4 s of work per worker, failure-free
    "chunk_flops": 5e8,         # 8 chunks
    "checkpoint_cost": 5e7,     # a checkpoint costs 10% of a chunk
    "mtbf": 1.5,
    "mean_downtime": 0.3,
    "max_failures": 4,
    "deadline": 120.0,
}


# -- actor bodies (module-level: snapshot-forked engines must name them) -------

def _recovery_worker(actor, state: Dict[str, Any]) -> Any:
    """Chunked computation with policy-driven checkpointing.

    A reboot after a host failure re-enters this body fresh and resumes
    from the bank; everything not banked since the last checkpoint is
    recomputed — and accounted as wasted by the ``on_exit`` hook.
    """
    cfg = state["config"]
    policy = cfg["policy"]
    bank = actor.host.data.setdefault("ckpt", {})
    live = {"progress": bank.get(actor.name, 0.0),
            "seen_failures": state["failures_observed"]}
    metrics = state["metrics"]

    def account(failed: bool) -> None:
        if failed:
            metrics["wasted_flops"] += (live["progress"]
                                        - bank.get(actor.name, 0.0))
            metrics["kills"] += 1

    actor.on_exit(account)

    while live["progress"] < cfg["work_flops"]:
        chunk = min(cfg["chunk_flops"], cfg["work_flops"] - live["progress"])
        yield actor.execute(chunk)
        live["progress"] += chunk
        if live["progress"] >= cfg["work_flops"]:
            break
        if policy == "periodic":
            checkpoint = True
        elif policy == "event":
            checkpoint = state["failures_observed"] > live["seen_failures"]
        else:
            raise ValueError(f"unknown recovery policy {policy!r}")
        if checkpoint:
            yield actor.execute(cfg["checkpoint_cost"])
            bank[actor.name] = live["progress"]
            live["seen_failures"] = state["failures_observed"]
            metrics["checkpoints"] += 1
    bank[actor.name] = live["progress"]
    metrics["completed"] += 1
    state["finish_dates"].append(actor.now)


def run_recovery_experiment(seed: int,
                            config: Optional[Mapping[str, Any]] = None,
                            engine: Optional[Engine] = None
                            ) -> Dict[str, float]:
    """One seeded recovery run; returns the metrics dictionary.

    ``engine`` (e.g. restored from a warmed snapshot) must be a quiescent
    engine on a :func:`make_star` platform matching ``num_workers``; when
    omitted one is built from the config.
    """
    cfg = dict(DEFAULT_RECOVERY_CONFIG)
    if config:
        cfg.update(config)
    cfg.setdefault("policy", "periodic")
    owns_engine = engine is None
    if engine is None:
        engine = Engine(make_star(num_hosts=cfg["num_workers"],
                                  host_speed=cfg["host_speed"]))
    try:
        return _run_recovery(engine, seed, cfg)
    finally:
        if owns_engine:
            engine.close()


def _run_recovery(engine: Engine, seed: int,
                  cfg: Dict[str, Any]) -> Dict[str, float]:
    state: Dict[str, Any] = {
        "config": cfg,
        "failures_observed": 0,
        "finish_dates": [],
        "metrics": {"completed": 0, "checkpoints": 0, "kills": 0,
                    "wasted_flops": 0.0},
    }

    def observe(host, is_on):
        if not is_on:
            state["failures_observed"] += 1

    engine.on_host_state_change(observe)

    leaves = [f"leaf-{i}" for i in range(cfg["num_workers"])]
    # Transient children: respawned after a churn kill (parked while the
    # host is down), finished for good once the flops are banked.  The
    # supervisor actor is the run's one non-daemon — the simulation ends
    # exactly when the work (or the tree's deadline) does.  Host-driven
    # deaths don't spend intensity tokens, so the bound only guards
    # against a systematically crashing body.
    supervisor = Supervisor(
        engine,
        [ChildSpec(f"rw-{index}", host, _recovery_worker, state,
                   restart="transient", daemon=True)
         for index, host in enumerate(leaves)],
        strategy="one_for_one", max_restarts=8 * cfg["num_workers"],
        window=cfg["deadline"], name="supervisor", host="center",
        deadline=cfg["deadline"]).start()
    injector = FailureInjector(engine, seed=seed, hosts=leaves,
                               mtbf=cfg["mtbf"],
                               mean_downtime=cfg["mean_downtime"],
                               max_failures=cfg["max_failures"]).start()
    final = engine.run()
    metrics = dict(state["metrics"])
    metrics.update(
        makespan=(max(state["finish_dates"])
                  if state["finish_dates"] else cfg["deadline"]),
        failures=injector.failures,
        restarts=supervisor.restarts,
        final_time=final,
        policy=cfg["policy"],
    )
    return metrics


def _campaign_run(engine: Engine, seed: int,
                  config: Mapping[str, Any]) -> Dict[str, float]:
    """``run_fn`` for :func:`run_campaign`'s snapshot-fork mode."""
    return run_recovery_experiment(seed, config, engine=engine)


def compare_recovery_policies(seeds: Iterable[int],
                              config: Optional[Mapping[str, Any]] = None,
                              workers: Optional[int] = None
                              ) -> Dict[str, Any]:
    """Periodic vs event-driven checkpoints over a seed grid.

    Every run is forked from one warmed engine snapshot (PR 8), so the
    platform is realized once; the result maps each policy label to its
    :func:`~repro.campaign.summarize` distribution summary, plus the raw
    per-run metrics under ``"runs"``.
    """
    cfg = dict(DEFAULT_RECOVERY_CONFIG)
    if config:
        cfg.update(config)
    warmed = Engine(make_star(num_hosts=cfg["num_workers"],
                              host_speed=cfg["host_speed"]))
    blob = warmed.snapshot()
    warmed.close()
    configs: List[Dict[str, Any]] = [
        {**cfg, "policy": policy, "label": policy}
        for policy in RECOVERY_POLICIES]
    result = run_campaign(_campaign_run, grid(list(seeds), configs),
                          workers=workers, snapshot=blob)
    by_policy: Dict[str, List[Mapping[str, Any]]] = {
        policy: [] for policy in RECOVERY_POLICIES}
    for spec, metrics in zip(result.specs, result.metrics()):
        by_policy[spec.label].append(metrics)
    return {
        "seeds": [spec.seed for spec in result.specs],
        "forked": result.forked,
        "summary": {policy: summarize(runs)
                    for policy, runs in by_policy.items()},
        "runs": result.runs,
    }
