"""XML wire format: fully textual encoding of the message."""

from __future__ import annotations

from typing import Any

from repro.gras.arch import Architecture
from repro.gras.datadesc import (
    ArrayDesc,
    DataDescription,
    ScalarDesc,
    StringDesc,
    StructDesc,
)
from repro.wire.codec import Codec, ConversionCost

__all__ = ["XmlCodec"]


class XmlCodec(Codec):
    """An XML-RPC-style text encoding (the paper's "XML" column).

    Every scalar becomes decimal text wrapped in element tags, so the wire
    size balloons (a 4-byte integer becomes ``<i>1234567890</i>``) and both
    sides pay text formatting / parsing over every byte.  Being pure text it
    is, of course, architecture independent.
    """

    name = "XML"

    HEADER_BYTES = 128.0          # HTTP-ish envelope + document prolog
    #: Average text bytes produced per scalar element (digits + tags).
    TAG_OVERHEAD = 9.0
    TEXT_EXPANSION = 2.6          # digits vs. binary bytes, on average
    FORMAT_FACTOR = 4.0           # printf/atoi cost per wire byte
    PARSE_FACTOR = 6.0            # XML parsing is costlier than formatting

    # -- size model -----------------------------------------------------------------
    def _text_size(self, desc: DataDescription, value: Any) -> float:
        if isinstance(desc, ScalarDesc):
            return self.TAG_OVERHEAD + 8.0 * self.TEXT_EXPANSION / 2.0
        if isinstance(desc, StringDesc):
            return self.TAG_OVERHEAD + float(len(str(value)))
        if isinstance(desc, ArrayDesc):
            return (self.TAG_OVERHEAD
                    + sum(self._text_size(desc.element, item)
                          for item in value))
        if isinstance(desc, StructDesc):
            return (self.TAG_OVERHEAD
                    + sum(self._text_size(fdesc, StructDesc._field(value, fname))
                          for fname, fdesc in desc.fields))
        # unknown description: fall back to the binary size, expanded
        return desc.wire_size(value) * self.TEXT_EXPANSION

    def wire_size(self, desc: DataDescription, value: Any,
                  sender: Architecture, receiver: Architecture) -> float:
        return self._text_size(desc, value) + self.HEADER_BYTES

    def conversion_operations(self, desc: DataDescription, value: Any,
                              sender: Architecture,
                              receiver: Architecture) -> ConversionCost:
        text = self._text_size(desc, value)
        return ConversionCost(sender_ops=text * self.FORMAT_FACTOR,
                              receiver_ops=text * self.PARSE_FACTOR)
