"""MPICH wire format: dense binary between identical architectures only."""

from __future__ import annotations

from typing import Any

from repro.gras.arch import Architecture
from repro.gras.datadesc import DataDescription
from repro.wire.codec import Codec, ConversionCost

__all__ = ["MpichCodec"]


class MpichCodec(Codec):
    """MPICH-1 style messaging, as benchmarked in the paper.

    MPICH ships raw memory with a small envelope and (in the configurations
    of the paper's era) offers no heterogeneous data conversion, so every
    heterogeneous pair is reported ``n/a`` in the tables; this codec mirrors
    that by refusing such pairs.  On homogeneous pairs it is lean but pays
    the derived-datatype packing of the structured Pastry message.
    """

    name = "MPICH"

    #: Message envelope (tag, communicator, length...).
    HEADER_BYTES = 32.0
    #: Relative cost of walking the derived datatype while packing/unpacking.
    PACK_FACTOR = 1.6

    def supports(self, sender: Architecture, receiver: Architecture) -> bool:
        return (sender.byte_order == receiver.byte_order
                and sender.type_sizes == receiver.type_sizes)

    def wire_size(self, desc: DataDescription, value: Any,
                  sender: Architecture, receiver: Architecture) -> float:
        self.check_supported(sender, receiver)
        return self.native_size(desc, value, sender) + self.HEADER_BYTES

    def conversion_operations(self, desc: DataDescription, value: Any,
                              sender: Architecture,
                              receiver: Architecture) -> ConversionCost:
        self.check_supported(sender, receiver)
        payload = self.native_size(desc, value, sender)
        # Packing a non-contiguous derived datatype costs more than a flat
        # copy on both sides.
        return ConversionCost(sender_ops=payload * self.PACK_FACTOR,
                              receiver_ops=payload * self.PACK_FACTOR)
