"""The exchange model: from a codec to a message-exchange time.

Reproduces what the paper's tables actually measure: the average time to
exchange one Pastry message between two hosts, i.e.

    encode on the sender + transfer on the network + decode on the receiver

The transfer term uses the route bandwidth and latency of a platform (the
LAN or the California–France WAN); the conversion terms use a per-host
"conversion operation rate" — how many bytes/second of serialisation work a
CPU of that era sustains — so that the resulting milliseconds land in the
same range as the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.gras.arch import ARCHITECTURES, Architecture
from repro.gras.datadesc import DataDescription
from repro.platform.platform import Platform
from repro.wire.codec import Codec, CodecUnavailableError
from repro.wire.gras_codec import GrasCodec
from repro.wire.mpich_codec import MpichCodec
from repro.wire.omniorb_codec import OmniOrbCodec
from repro.wire.pbio_codec import PbioCodec
from repro.wire.xml_codec import XmlCodec

__all__ = ["ExchangeModel", "ExchangeResult", "all_codecs"]


def all_codecs() -> List[Codec]:
    """The five stacks of the paper's tables, in their column order."""
    return [GrasCodec(), MpichCodec(), OmniOrbCodec(), PbioCodec(), XmlCodec()]


@dataclass
class ExchangeResult:
    """Outcome of one modelled message exchange."""

    codec: str
    sender_arch: str
    receiver_arch: str
    wire_bytes: float
    encode_time: float
    transfer_time: float
    decode_time: float
    available: bool = True

    @property
    def total_time(self) -> float:
        """End-to-end exchange time in seconds (inf when unavailable)."""
        if not self.available:
            return float("inf")
        return self.encode_time + self.transfer_time + self.decode_time


class ExchangeModel:
    """Computes exchange times over a platform route.

    Parameters
    ----------
    platform:
        The platform carrying the exchange (LAN or WAN topology).
    src_host / dst_host:
        Endpoints of the exchange; the route between them provides the
        bandwidth (bottleneck link) and latency (sum along the route).
    conversion_rate:
        Serialisation throughput of the endpoint CPUs in bytes/second of
        conversion work.  The default (~60 MB/s) matches the 2006-era
        workstations of the paper well enough to land in the right
        millisecond range.
    """

    def __init__(self, platform: Platform, src_host: str, dst_host: str,
                 conversion_rate: float = 6e7) -> None:
        if conversion_rate <= 0:
            raise ValueError("conversion_rate must be > 0")
        self.platform = platform
        self.src_host = src_host
        self.dst_host = dst_host
        self.conversion_rate = conversion_rate
        link_names = platform.route_links(src_host, dst_host)
        if link_names:
            self.bandwidth = min(platform.links[n].bandwidth
                                 for n in link_names)
            self.latency = sum(platform.links[n].latency for n in link_names)
        else:  # loopback
            self.bandwidth = float("inf")
            self.latency = 0.0

    # -- single exchange -----------------------------------------------------------------
    def exchange(self, codec: Codec, desc: DataDescription, value: Any,
                 sender_arch: str, receiver_arch: str) -> ExchangeResult:
        """Model one message exchange; unavailable pairs yield ``available=False``."""
        sender = ARCHITECTURES[sender_arch]
        receiver = ARCHITECTURES[receiver_arch]
        if not codec.supports(sender, receiver):
            return ExchangeResult(codec=codec.name, sender_arch=sender_arch,
                                  receiver_arch=receiver_arch, wire_bytes=0.0,
                                  encode_time=0.0, transfer_time=0.0,
                                  decode_time=0.0, available=False)
        wire_bytes = codec.wire_size(desc, value, sender, receiver)
        cost = codec.conversion_operations(desc, value, sender, receiver)
        encode_time = cost.sender_ops / self.conversion_rate
        decode_time = cost.receiver_ops / self.conversion_rate
        transfer_time = self.latency + wire_bytes / self.bandwidth
        return ExchangeResult(codec=codec.name, sender_arch=sender_arch,
                              receiver_arch=receiver_arch,
                              wire_bytes=wire_bytes,
                              encode_time=encode_time,
                              transfer_time=transfer_time,
                              decode_time=decode_time)

    # -- full table -----------------------------------------------------------------------
    def table(self, desc: DataDescription, value: Any,
              architectures: Optional[Sequence[str]] = None,
              codecs: Optional[Sequence[Codec]] = None
              ) -> Dict[str, Dict[str, ExchangeResult]]:
        """Build the full (sender arch, receiver arch) -> codec table.

        Returns ``{f"{src}->{dst}": {codec_name: ExchangeResult}}``, which is
        exactly the structure of the paper's LAN and WAN tables.
        """
        archs = list(architectures or ("powerpc", "sparc", "x86"))
        codec_list = list(codecs or all_codecs())
        table: Dict[str, Dict[str, ExchangeResult]] = {}
        for src in archs:
            for dst in archs:
                key = f"{src}->{dst}"
                table[key] = {
                    codec.name: self.exchange(codec, desc, value, src, dst)
                    for codec in codec_list
                }
        return table
