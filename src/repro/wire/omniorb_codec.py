"""OmniORB wire format: CORBA CDR / GIOP."""

from __future__ import annotations

from typing import Any

from repro.gras.arch import Architecture
from repro.gras.datadesc import DataDescription
from repro.wire.codec import Codec, ConversionCost

__all__ = ["OmniOrbCodec"]


class OmniOrbCodec(Codec):
    """CORBA's Common Data Representation as implemented by OmniORB.

    * Every value is marshalled field by field into a CDR stream with
      natural alignment padding and a GIOP request header carrying the
      operation name and object key — noticeably more bytes than GRAS.
    * CDR streams declare their byte order: the sender always marshals
      (one full pass) and the receiver always unmarshals (another full
      pass), swapping when its native order differs from the stream's.
    """

    name = "OmniORB"

    #: GIOP header + request header (object key, operation, service ctx).
    HEADER_BYTES = 96.0
    #: Alignment padding + CDR encapsulation overhead on the payload.
    PADDING_FACTOR = 1.18
    #: Marshalling walks the IDL-generated code: costlier than a memcpy.
    MARSHAL_FACTOR = 1.8

    def wire_size(self, desc: DataDescription, value: Any,
                  sender: Architecture, receiver: Architecture) -> float:
        payload = self.native_size(desc, value, sender)
        return payload * self.PADDING_FACTOR + self.HEADER_BYTES

    def conversion_operations(self, desc: DataDescription, value: Any,
                              sender: Architecture,
                              receiver: Architecture) -> ConversionCost:
        payload = self.native_size(desc, value, sender)
        sender_ops = payload * self.MARSHAL_FACTOR
        receiver_ops = payload * self.MARSHAL_FACTOR
        if sender.byte_order != receiver.byte_order:
            receiver_ops += payload  # byte-swap pass on the receiver
        return ConversionCost(sender_ops=sender_ops,
                              receiver_ops=receiver_ops)
