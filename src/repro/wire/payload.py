"""The Pastry-like benchmark message of the GRAS tables.

The paper's tables measure the exchange of "one Pastry message".  Pastry is
a structured peer-to-peer overlay; its routing messages carry the sender's
nodeId, a leaf set, a neighbourhood set and a routing table of nodeIds (plus
a few scalars).  This module builds a representative instance of that
message and its GRAS data description, so every codec serialises the *same*
logical payload.

Sizes follow the classic FreePastry defaults: 128-bit nodeIds, a leaf set of
24 entries, a neighbourhood set of 32 entries and a 40x16 routing table --
of which roughly a quarter is populated, which is what a node in a small
overlay would actually send.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.gras.datadesc import (
    ArrayDesc,
    ScalarDesc,
    StringDesc,
    StructDesc,
)

__all__ = ["PASTRY_MESSAGE_DESC", "make_pastry_message",
           "NODEID_WORDS", "LEAF_SET_SIZE", "NEIGHBOUR_SET_SIZE",
           "ROUTING_ENTRIES"]

#: A 128-bit nodeId is carried as four 32-bit words.
NODEID_WORDS = 4
#: FreePastry defaults.
LEAF_SET_SIZE = 24
NEIGHBOUR_SET_SIZE = 32
#: Populated routing-table entries carried by the benchmark message.
ROUTING_ENTRIES = 160


_nodeid_desc = ArrayDesc(ScalarDesc("uint32"), fixed_length=NODEID_WORDS,
                         name="nodeid")

_route_entry_desc = StructDesc("route_entry", [
    ("nodeid", _nodeid_desc),
    ("proximity", ScalarDesc("int32")),
    ("address", StringDesc()),
])

PASTRY_MESSAGE_DESC = StructDesc("pastry_message", [
    ("msg_kind", ScalarDesc("int32")),
    ("hop_count", ScalarDesc("int32")),
    ("timestamp", ScalarDesc("double")),
    ("sender", _nodeid_desc),
    ("target_key", _nodeid_desc),
    ("leaf_set", ArrayDesc(_nodeid_desc, fixed_length=LEAF_SET_SIZE,
                           name="leaf_set")),
    ("neighbour_set", ArrayDesc(_nodeid_desc,
                                fixed_length=NEIGHBOUR_SET_SIZE,
                                name="neighbour_set")),
    ("routing_table", ArrayDesc(_route_entry_desc, name="routing_table")),
])


def _random_nodeid(rng: random.Random) -> List[int]:
    return [rng.getrandbits(32) for _ in range(NODEID_WORDS)]


def make_pastry_message(seed: int = 1,
                        routing_entries: int = ROUTING_ENTRIES) -> Dict:
    """Build one Pastry-like message (deterministic for a given seed)."""
    rng = random.Random(seed)
    return {
        "msg_kind": 3,                      # JOIN_REQUEST-like
        "hop_count": rng.randint(0, 8),
        "timestamp": 1139900000.0 + rng.random() * 1000.0,
        "sender": _random_nodeid(rng),
        "target_key": _random_nodeid(rng),
        "leaf_set": [_random_nodeid(rng) for _ in range(LEAF_SET_SIZE)],
        "neighbour_set": [_random_nodeid(rng)
                          for _ in range(NEIGHBOUR_SET_SIZE)],
        "routing_table": [
            {
                "nodeid": _random_nodeid(rng),
                "proximity": rng.randint(1, 500),
                "address": f"10.{rng.randint(0, 255)}.{rng.randint(0, 255)}."
                           f"{rng.randint(1, 254)}:{rng.randint(1024, 65535)}",
            }
            for _ in range(routing_entries)
        ],
    }
