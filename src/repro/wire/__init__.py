"""Wire-format comparators for the GRAS message-exchange tables (E2/E3).

The paper measures the *average time to exchange one Pastry message* between
PowerPC, Sparc and x86 hosts, over a LAN and over a California–France WAN,
for five communication stacks: **GRAS**, **MPICH**, **OmniORB**, **PBIO**
and an **XML**-based encoding.  Those middlewares are not redistributable
here, so this package models what actually differentiates them in that
benchmark — the wire strategy:

* :class:`~repro.wire.gras_codec.GrasCodec` — native sender layout +
  receiver-makes-right conversion (conversion only when architectures
  differ);
* :class:`~repro.wire.mpich_codec.MpichCodec` — dense binary, but only
  defined between identical architectures (the paper reports ``n/a`` for
  heterogeneous pairs);
* :class:`~repro.wire.omniorb_codec.OmniOrbCodec` — CORBA CDR: aligned
  encoding, GIOP headers, conversion driven by the wire byte order;
* :class:`~repro.wire.pbio_codec.PbioCodec` — sender-native binary plus
  self-describing metadata, receiver converts using the metadata;
* :class:`~repro.wire.xml_codec.XmlCodec` — fully textual encoding, largest
  messages and the most conversion work on both sides.

:mod:`repro.wire.exchange` combines a codec with a platform (LAN or WAN) to
produce the exchange time that the benchmark tables report.
"""

from repro.wire.payload import PASTRY_MESSAGE_DESC, make_pastry_message
from repro.wire.codec import Codec, CodecUnavailableError
from repro.wire.gras_codec import GrasCodec
from repro.wire.mpich_codec import MpichCodec
from repro.wire.omniorb_codec import OmniOrbCodec
from repro.wire.pbio_codec import PbioCodec
from repro.wire.xml_codec import XmlCodec
from repro.wire.exchange import ExchangeModel, ExchangeResult, all_codecs

__all__ = [
    "Codec",
    "CodecUnavailableError",
    "ExchangeModel",
    "ExchangeResult",
    "GrasCodec",
    "MpichCodec",
    "OmniOrbCodec",
    "PASTRY_MESSAGE_DESC",
    "PbioCodec",
    "XmlCodec",
    "all_codecs",
    "make_pastry_message",
]
