"""PBIO wire format: sender-native binary plus self-describing metadata."""

from __future__ import annotations

from typing import Any

from repro.gras.arch import Architecture
from repro.gras.datadesc import DataDescription
from repro.wire.codec import Codec, ConversionCost

__all__ = ["PbioCodec"]


class PbioCodec(Codec):
    """The Portable Binary I/O library (Eisenhauer et al.).

    PBIO, like GRAS, ships the sender's native layout and converts on the
    receiver; unlike GRAS the format metadata (field names, types, offsets)
    travels with the first message of each format, and the receiver's
    conversion goes through a generic interpreter rather than generated
    code, so the receiver-side cost is higher.  The paper reports PBIO
    results only for some pairs (its PowerPC port was incomplete); the
    benchmark harness reproduces those gaps by marking the PowerPC pairs
    unsupported.
    """

    name = "PBIO"

    HEADER_BYTES = 64.0
    #: Amortised per-message share of the self-describing format metadata.
    METADATA_BYTES = 256.0
    #: Receiver-side generic conversion interpreter overhead.
    CONVERT_FACTOR = 2.2

    def supports(self, sender: Architecture, receiver: Architecture) -> bool:
        # The paper's tables show "n/a" for every pair involving PowerPC.
        return "powerpc" not in (sender.name, receiver.name)

    def wire_size(self, desc: DataDescription, value: Any,
                  sender: Architecture, receiver: Architecture) -> float:
        self.check_supported(sender, receiver)
        payload = self.native_size(desc, value, sender)
        return payload + self.HEADER_BYTES + self.METADATA_BYTES

    def conversion_operations(self, desc: DataDescription, value: Any,
                              sender: Architecture,
                              receiver: Architecture) -> ConversionCost:
        self.check_supported(sender, receiver)
        payload = self.native_size(desc, value, sender)
        sender_ops = payload  # plain copy of native memory
        receiver_ops = payload
        if (sender.byte_order != receiver.byte_order
                or sender.type_sizes != receiver.type_sizes):
            receiver_ops += payload * self.CONVERT_FACTOR
        return ConversionCost(sender_ops=sender_ops,
                              receiver_ops=receiver_ops)
