"""GRAS wire format: sender-native layout, receiver makes right."""

from __future__ import annotations

from typing import Any

from repro.gras.arch import Architecture
from repro.gras.datadesc import DataDescription
from repro.wire.codec import Codec, ConversionCost

__all__ = ["GrasCodec"]


class GrasCodec(Codec):
    """The paper's own middleware.

    * The sender copies its in-memory structures to the socket with no
      transformation (native byte order and sizes) plus a small
      per-message header describing its architecture.
    * The receiver converts **only when needed**: identical architectures
      pay a plain copy; different byte orders pay one swap pass; different
      type sizes pay a resize pass.

    This "NDR / receiver-makes-right" strategy is why GRAS wins the paper's
    tables on homogeneous pairs and stays competitive on heterogeneous ones.
    """

    name = "GRAS"

    #: Per-message header: architecture id, message name, payload length.
    HEADER_BYTES = 48.0

    def wire_size(self, desc: DataDescription, value: Any,
                  sender: Architecture, receiver: Architecture) -> float:
        return self.native_size(desc, value, sender) + self.HEADER_BYTES

    def conversion_operations(self, desc: DataDescription, value: Any,
                              sender: Architecture,
                              receiver: Architecture) -> ConversionCost:
        payload = self.native_size(desc, value, sender)
        # Sender: one copy of the payload into the socket buffer.
        sender_ops = payload
        # Receiver: one copy, plus a swap pass when byte orders differ,
        # plus a re-sizing pass when the type sizes differ.
        receiver_ops = payload
        if sender.byte_order != receiver.byte_order:
            receiver_ops += payload
        if sender.type_sizes != receiver.type_sizes:
            receiver_ops += payload
        return ConversionCost(sender_ops=sender_ops,
                              receiver_ops=receiver_ops)
