"""Base class of the middleware wire-format comparators.

A :class:`Codec` answers two questions about sending a structured message
from one architecture to another:

* :meth:`wire_size` — how many bytes end up on the wire;
* :meth:`conversion_operations` — how many per-byte conversion operations
  the sender and the receiver perform (byte swapping, copying into aligned
  buffers, text formatting/parsing...).

The exchange model (:mod:`repro.wire.exchange`) turns those into a time by
charging the bytes to the network link and the conversion operations to the
endpoint CPUs, which is enough to reproduce the *ordering* and rough
*magnitudes* of the paper's tables (GRAS fastest, XML slowest, MPICH
unavailable across architectures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.exceptions import SimGridError
from repro.gras.arch import Architecture
from repro.gras.datadesc import DataDescription

__all__ = ["Codec", "CodecUnavailableError", "ConversionCost"]


class CodecUnavailableError(SimGridError):
    """The middleware cannot exchange this pair of architectures.

    Used by the MPICH codec for heterogeneous pairs, which the paper's
    tables report as ``n/a``.
    """


@dataclass(frozen=True)
class ConversionCost:
    """Per-endpoint conversion work, expressed in *operations*.

    One operation corresponds to touching one byte once (copy, swap,
    format...).  The exchange model converts operations to seconds using a
    per-architecture operation rate.
    """

    sender_ops: float
    receiver_ops: float


class Codec:
    """One middleware's serialisation strategy."""

    #: Short name used in tables ("GRAS", "MPICH", "OmniORB", "PBIO", "XML").
    name: str = "abstract"

    def wire_size(self, desc: DataDescription, value: Any,
                  sender: Architecture, receiver: Architecture) -> float:
        """Bytes on the wire for one message."""
        raise NotImplementedError

    def conversion_operations(self, desc: DataDescription, value: Any,
                              sender: Architecture,
                              receiver: Architecture) -> ConversionCost:
        """Per-endpoint serialisation/deserialisation work."""
        raise NotImplementedError

    def supports(self, sender: Architecture, receiver: Architecture) -> bool:
        """Whether this middleware can connect the two architectures."""
        return True

    def check_supported(self, sender: Architecture,
                        receiver: Architecture) -> None:
        if not self.supports(sender, receiver):
            raise CodecUnavailableError(
                f"{self.name} cannot exchange {sender.name} -> {receiver.name}")

    # Shared helper: the native binary size of the payload on an architecture.
    @staticmethod
    def native_size(desc: DataDescription, value: Any,
                    arch: Architecture) -> float:
        return float(desc.wire_size(value, arch))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Codec {self.name}>"
