"""repro.s4u — the unified actor/activity API every other API runs on.

Mirrors SimGrid's S4U ("SimGrid for you") interface: one
:class:`~repro.s4u.engine.Engine` owns the platform and the simulated
clock; :class:`~repro.s4u.actor.Actor`\\ s run on
:class:`~repro.s4u.host.Host`\\ s and exchange payloads through named
:class:`~repro.s4u.mailbox.Mailbox`\\ es; everything that takes simulated
time is a first-class :class:`~repro.s4u.activity.Activity` future
(:class:`~repro.s4u.activity.Comm`, :class:`~repro.s4u.activity.Exec`,
:class:`~repro.s4u.activity.Sleep`) that can be ``start()``-ed,
``test()``-ed, ``wait()``-ed and ``cancel()``-ed, and reaped in groups
with :class:`~repro.s4u.activity.ActivitySet`.

Quickstart (generator contexts: blocking calls are ``yield``-ed)::

    from repro import s4u
    from repro.platform import make_star

    engine = s4u.Engine(make_star(num_hosts=2))

    def worker(actor):
        inbox = actor.engine.mailbox("inbox")
        comp = yield actor.exec_async(1e9)       # overlap compute...
        comm = yield inbox.get_async()           # ...with a receive
        pending = s4u.ActivitySet([comp, comm])
        while not pending.empty():
            done = yield pending.wait_any()      # reap in completion order

    def feeder(actor):
        yield actor.engine.mailbox("inbox").put("hello", size=1e6)

    engine.add_actor("worker", "leaf-0", worker)
    engine.add_actor("feeder", "leaf-1", feeder)
    engine.run()

s4u is the canonical API of the package: GRAS (simulation mode), SMPI and
AMOK drive these classes directly — every simulation executes on this one
engine.  (The paper's MSG API was retired after a deprecation cycle; its
names map to Engine/Actor/mailbox payloads.)
"""

from repro.s4u import this_actor
from repro.s4u.activity import (
    Activity,
    ActivitySet,
    ActivityState,
    Comm,
    Exec,
    Sleep,
)
from repro.s4u.actor import Actor, ActorState, current_actor
from repro.s4u.engine import Engine
from repro.s4u.failure import FailureInjector
from repro.s4u.host import Host
from repro.s4u.link import Link
from repro.s4u.mailbox import Mailbox

__all__ = [
    "Activity",
    "ActivitySet",
    "ActivityState",
    "Actor",
    "ActorState",
    "Comm",
    "Engine",
    "Exec",
    "FailureInjector",
    "Host",
    "Link",
    "Mailbox",
    "Sleep",
    "current_actor",
    "this_actor",
]
