"""The S4U engine: the one simulation kernel every user-facing API runs on.

The engine is the orchestrator tying everything together (SimGrid's
*simix*, later ``s4u::Engine``):

* it owns the realized :class:`~repro.platform.platform.Platform` and its
  :class:`~repro.surf.engine.SurfEngine`;
* it schedules the simulated actors (created, suspended, resumed and
  killed dynamically, as the paper requires);
* it matches senders and receivers on mailboxes, creates the SURF actions
  realising executions and transfers, and advances simulated time;
* it converts resource failures into the exceptions the paper's API
  reports (host failure, transfer failure, timeouts).

GRAS (in simulation mode), SMPI and AMOK drive this engine directly
through the s4u actor/mailbox/activity objects — there is exactly one
simulation loop in the package and this is it.
"""

from __future__ import annotations

import gc
import math
import pickle
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple, Type, Union

from repro.exceptions import (
    CancelledError,
    DeadlockError,
    HostFailureError,
    PlatformError,
    SimTimeoutError,
    SnapshotError,
    TransferFailureError,
)
from repro.kernel.context import FINISHED, make_context_factory
from repro.kernel.simcall import (
    ExecAsyncCall, ExecuteCall, IrecvCall, IsendCall, JoinCall, KillCall,
    RecvCall, ResumeCall, SendCall, Simcall, SleepAsyncCall, SleepCall,
    StartCall, SuspendCall, TestCall, WaitAllCall, WaitAnyCall, WaitCall,
    YieldCall,
)
from repro.kernel.timer import TimerQueue
from repro.s4u import actor as _actor_mod
from repro.s4u.activity import Activity, ActivityState, Comm, Exec, Sleep
from repro.s4u.actor import Actor, ActorState
from repro.s4u.host import Host
from repro.s4u.link import Link
from repro.s4u.mailbox import Mailbox
from repro.platform.platform import Platform
from repro.surf.cpu import CpuResource
from repro.surf.network import LinkResource

__all__ = ["Engine"]

_EPS = 1e-12


class Engine:
    """A complete simulation world: platform + actors + simulated time.

    Parameters
    ----------
    platform:
        The platform description.  It is realized automatically if needed.
    context_factory:
        ``"generator"`` (default) or ``"thread"`` — how simulated actor
        bodies are executed (see :mod:`repro.kernel.context`).
    recorder:
        Optional :class:`repro.tracing.recorder.Recorder` receiving the
        computation/communication intervals (to build Gantt charts).
    raise_on_deadlock:
        When True, :meth:`run` raises :class:`DeadlockError` if every
        remaining actor is blocked forever; otherwise the simulation just
        ends (mirroring SimGrid's warning).
    sharded:
        When True (and the platform is not realized yet), realize it on a
        :class:`~repro.surf.shard.ShardedSurfEngine` partitioned along
        the platform's top-level zones.  Simulated dates are bit-identical
        to the flat kernel either way.
    parallel_solves:
        When True, attach a :class:`~repro.surf.shard.ParallelSolveExecutor`
        to the kernel (worker count from ``REPRO_PARALLEL``; a disabled
        executor costs nothing).
    """

    def __init__(self, platform: Platform,
                 context_factory: str = "generator",
                 recorder=None,
                 raise_on_deadlock: bool = False,
                 sharded: bool = False,
                 parallel_solves: bool = False,
                 manage_gc: Optional[bool] = None) -> None:
        self.platform = platform
        if not platform.realized:
            platform.realize(sharded=sharded)
        self.surf = platform.engine
        if parallel_solves:
            self.surf.enable_parallel_solves()
        self.context_factory = make_context_factory(context_factory)
        self.recorder = recorder
        self.raise_on_deadlock = raise_on_deadlock
        #: Cyclic-collector policy during :meth:`run` (None = auto by
        #: simulation size, see ``_enter_gc_policy``).
        self.manage_gc = manage_gc

        # On a lazily realized platform only the already-materialized
        # resources (those carrying traces) get wrappers up front; the rest
        # materialize on first lookup, keeping engine construction
        # O(touched) for 10⁵-host platforms.
        self._lazy_platform = platform.lazy
        self.hosts: Dict[str, Host] = {}
        self._host_by_cpu: Dict[int, Host] = {}
        names = (platform.cpu_by_host if self._lazy_platform
                 else platform.hosts)
        for name in names:
            self._materialize_host(name)

        self.links: Dict[str, Link] = {}
        self._link_by_resource: Dict[int, Link] = {}
        for name in list(platform.link_by_name
                         if self._lazy_platform else platform.links):
            self._materialize_link(name)

        self.mailboxes: Dict[str, Mailbox] = {}
        self.actors: List[Actor] = []
        self.timers = TimerQueue()
        self._ready: Deque[Tuple[Actor, object, Optional[BaseException]]] = deque()
        self._alive_nondaemon = 0
        # Alive actors as an insertion-ordered set (a dict): daemon reaping
        # and deadlock handling iterate it instead of scanning the full
        # historical ``actors`` list, and ``actor_count`` is O(1).
        self._alive_actors: Dict[Actor, None] = {}
        # Started comms, as an insertion-ordered set (a dict): host
        # failures iterate it to fail the crossing transfers, so its
        # order must survive a snapshot/restore round-trip — a plain set
        # would iterate in id()-hash order, which no restored process
        # reproduces.
        self._active_comms: Dict[Comm, None] = {}
        self._deadlocked = False
        # Failure-model bookkeeping: observers of resource state flips and
        # the actors awaiting an auto-restart of their failed host.
        self._host_state_listeners: List[Callable[[Host, bool], None]] = []
        self._link_state_listeners: List[Callable[[Link, bool], None]] = []
        self._speed_listeners: List[Callable] = []
        self._pending_restarts: Dict[Host, List[Tuple]] = {}
        #: Number of actors rebooted by the auto-restart machinery.
        self.restart_count = 0
        # True while the run-loop reaps leftover actors (daemon kill at
        # end of run, deadlock cleanup).  Lifecycle hooks that respawn
        # actors — e.g. a repro.ft Supervisor restarting a killed child —
        # must check it: a respawn during teardown would never be
        # scheduled and would leave the engine non-quiescent.
        self._tearing_down = False
        # Simcall dispatch by concrete type: the kernel handles one call
        # per actor resume, so this lookup sits on the hottest path.
        self._simcall_handlers = self._build_simcall_handlers()

    def _build_simcall_handlers(self) -> Dict[type, Callable]:
        return {
            ExecuteCall: self._do_execute,
            ExecAsyncCall: self._do_exec_async,
            SleepCall: self._do_sleep,
            SleepAsyncCall: self._do_sleep_async,
            SendCall: self._do_send,
            RecvCall: self._do_recv,
            IsendCall: self._do_isend,
            IrecvCall: self._do_irecv,
            StartCall: self._do_start,
            WaitCall: self._do_wait,
            WaitAnyCall: self._do_wait_any,
            WaitAllCall: self._do_wait_all,
            TestCall: self._do_test,
            KillCall: self._do_kill,
            SuspendCall: self._do_suspend,
            ResumeCall: self._do_resume_other,
            JoinCall: self._do_join,
            YieldCall: self._do_yield,
        }

    # ------------------------------------------------------------------------------
    # world accessors
    # ------------------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.surf.clock

    @property
    def engine(self):
        """The underlying :class:`~repro.surf.engine.SurfEngine`.

        Kept under its historical name so pre-s4u call sites keep
        working.
        """
        return self.surf

    def kernel_stats(self) -> dict:
        """Aggregated kernel observability (solver + caches + shards).

        Merges every fluid model's LMM counters across shards with the
        platform's route cache stats, the parallel-executor stats and the
        shard/conservative-window section when the kernel is sharded.
        """
        return self.platform.kernel_stats()

    def close(self) -> None:
        """Release kernel OS resources (parallel workers, shared memory).

        Idempotent; safe to call on a never-parallel engine.
        """
        self.surf.close()

    # ------------------------------------------------------------------------------
    # snapshot / fork
    # ------------------------------------------------------------------------------
    def snapshot(self) -> bytes:
        """Serialize the whole simulation state into an opaque blob.

        The kernel state is pure Python, so the realized platform, the
        SURF models (clocks, LMM systems, completion heaps, pending trace
        events), the armed timers (e.g. a mid-churn
        :class:`~repro.s4u.failure.FailureInjector`, RNG state included)
        and the auto-restart bookkeeping all pickle directly.
        :meth:`restore` resumes from the blob with bit-identical future
        dates — in this process or another one.

        The one thing that cannot travel is a live actor body (a Python
        generator frame), so a snapshot requires a *quiescent* engine: no
        actor alive, nothing in the ready queue — i.e. right after
        :meth:`run` completed a phase.  The idiom is to run a warmed
        prefix to completion, snapshot, then add the per-experiment actors
        after :meth:`restore` (see :mod:`repro.campaign`).  Raises
        :class:`~repro.exceptions.SnapshotError` otherwise.

        OS-level handles (the parallel-solve worker pool and its shared
        memory) are detached by their own ``__getstate__`` hooks and
        re-created lazily after restore; functions referenced by the
        surviving state (auto-restart actor bodies, pending payloads,
        state listeners) must be module-level so pickle can name them.
        """
        if self._alive_actors or self._ready:
            alive = ", ".join(a.name for a in self._alive_actors)
            raise SnapshotError(
                f"snapshot needs a quiescent engine (actor bodies are live "
                f"generator frames and cannot be pickled); still alive: "
                f"[{alive}] at t={self.now:g} — run() the current phase to "
                f"completion first")
        # Lazily-deleted timer entries (cancelled timeouts of completed
        # waits) can hold closures over dead actors; they never fire, so
        # drop them rather than pickle them.
        self.timers.compact()
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def restore(cls, blob: bytes) -> "Engine":
        """Rebuild an engine from a :meth:`snapshot` blob.

        The restored engine continues exactly where the snapshot was
        taken: same clock, same pending timers/traces/restarts, same
        solver and RNG state — future simulated dates and event order are
        bit-identical to the engine that produced the blob.  Each call
        returns an independent copy, so one warmed blob can fork any
        number of experiment runs.
        """
        engine = pickle.loads(blob)
        if not isinstance(engine, Engine):
            raise SnapshotError(
                f"blob does not hold an s4u.Engine (got {type(engine).__name__})")
        return engine

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Rebuilt on load: bound-method dispatch table and the two
        # id()-keyed resource maps (object ids change across the trip).
        state.pop("_simcall_handlers", None)
        state.pop("_host_by_cpu", None)
        state.pop("_link_by_resource", None)
        # The historical actor list may reference finished bodies defined
        # as closures (unpicklable by reference); only alive actors — none,
        # under the snapshot() quiescence rule — are simulation state.
        state["actors"] = [a for a in self.actors if a.is_alive]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._host_by_cpu = {id(h.cpu): h for h in self.hosts.values()}
        self._link_by_resource = {
            id(link.resource): link for link in self.links.values()}
        self._simcall_handlers = self._build_simcall_handlers()

    def _materialize_host(self, name: str) -> Host:
        host = Host(self, self.platform.hosts[name],
                    self.platform.cpu_of(name))
        self.hosts[name] = host
        self._host_by_cpu[id(host.cpu)] = host
        return host

    def _materialize_link(self, name: str) -> Link:
        link = Link(self, self.platform.link_resource(name))
        self.links[name] = link
        self._link_by_resource[id(link.resource)] = link
        return link

    def host(self, name: str) -> Host:
        """Lookup a host by name (materializing it on a lazy platform)."""
        host = self.hosts.get(name)
        if host is None:
            if self._lazy_platform and name in self.platform.hosts:
                return self._materialize_host(name)
            raise PlatformError(f"unknown host {name!r}")
        return host

    def host_by_name(self, name: str) -> Host:
        """Alias of :meth:`host` (``Engine.host_by_name``)."""
        return self.host(name)

    def link_by_name(self, name: str) -> Link:
        """Lookup a link by name (S4U ``Link::by_name``)."""
        link = self.links.get(name)
        if link is None:
            if self._lazy_platform and name in self.platform.links:
                return self._materialize_link(name)
            raise PlatformError(f"unknown link {name!r}")
        return link

    def mailbox(self, name: str) -> Mailbox:
        """Get (or lazily create) a mailbox by name."""
        box = self.mailboxes.get(name)
        if box is None:
            box = Mailbox(name, engine=self)
            self.mailboxes[name] = box
        return box

    # ------------------------------------------------------------------------------
    # actor management (engine-level API)
    # ------------------------------------------------------------------------------
    def add_actor(self, name: str, host: Union[str, Host], func: Callable,
                  *args, daemon: bool = False, auto_restart: bool = False,
                  actor_cls: Optional[Type[Actor]] = None,
                  **kwargs) -> Actor:
        """Create a simulated actor and make it runnable immediately.

        ``auto_restart`` actors are rebooted (fresh body, same function and
        arguments) when their failed host is restored; ``actor_cls`` lets
        the compat layers (MSG) inject their actor subclass so the bodies
        receive the API object they expect.
        """
        host_obj = host if isinstance(host, Host) else self.host(host)
        cls = actor_cls or Actor
        actor = cls(self, name, host_obj, func, args, kwargs, daemon=daemon,
                    auto_restart=auto_restart)
        actor.context = self.context_factory.create(
            func, (actor, *args), kwargs)
        actor.context.start()
        actor.state = ActorState.RUNNABLE
        self.actors.append(actor)
        self._alive_actors[actor] = None
        host_obj.actors.append(actor)
        if not daemon:
            self._alive_nondaemon += 1
        self._enqueue(actor, None)
        return actor

    def actor_count(self) -> int:
        """Number of actors still alive."""
        return len(self._alive_actors)

    def kill_actor(self, actor: Actor) -> None:
        """Kill an actor from outside the simulation (tests, controllers)."""
        self._kill_actor(actor)

    def suspend_actor(self, actor: Actor) -> None:
        """Suspend an actor from outside the simulation."""
        self._suspend_other(actor)

    def fail_host(self, host: Host) -> None:
        """Turn a host off: its activities fail, its actors are killed."""
        if not host.is_on:
            return
        failed = self.surf.fail_host(host.cpu)
        for action in failed:
            activity = action.data
            if isinstance(activity, Activity):
                self._finish_activity(activity, ActivityState.FAILED)
        self._on_host_down(host)

    def restore_host(self, host: Host) -> None:
        """Turn a failed host back on, rebooting its auto-restart actors."""
        if host.is_on:
            return
        self.surf.restore_host(host.cpu)
        self._on_host_up(host)

    def fail_link(self, link: Union[str, Link]) -> None:
        """Turn a link off: every transfer crossing it fails."""
        link_obj = link if isinstance(link, Link) else self.link_by_name(link)
        if not link_obj.is_on:
            return
        failed = self.surf.fail_link(link_obj.resource)
        for action in failed:
            activity = action.data
            if isinstance(activity, Activity):
                self._finish_activity(activity, ActivityState.FAILED)
        self._notify_link_state(link_obj, False)

    def restore_link(self, link: Union[str, Link]) -> None:
        """Turn a failed link back on."""
        link_obj = link if isinstance(link, Link) else self.link_by_name(link)
        if link_obj.is_on:
            return
        self.surf.restore_link(link_obj.resource)
        self._notify_link_state(link_obj, True)

    # -- resource state observers -------------------------------------------------------
    def on_host_state_change(self, callback: Callable[[Host, bool], None]
                             ) -> Callable[[Host, bool], None]:
        """Register ``callback(host, is_on)``, fired on every host flip.

        Fired for explicit ``turn_off``/``turn_on`` calls and for
        state-trace events alike, after the failure (or restart) side
        effects were applied.  Returns the callback so it can be used as a
        decorator.
        """
        self._host_state_listeners.append(callback)
        return callback

    def on_link_state_change(self, callback: Callable[[Link, bool], None]
                             ) -> Callable[[Link, bool], None]:
        """Register ``callback(link, is_on)``, fired on every link flip."""
        self._link_state_listeners.append(callback)
        return callback

    def on_resource_speed_change(self, callback) -> Callable:
        """Register ``callback(resource, available_speed)`` for speed changes.

        Mirrors the state-change observers: fired when the effective
        speed of a host (flop/s of one core) or link (byte/s) changes —
        whether from an availability/bandwidth trace event or from an
        explicit :meth:`Host.set_speed` / :meth:`Link.set_bandwidth`
        call — after the new capacity reached the solver.  ``resource``
        is the s4u :class:`Host` or :class:`Link` facade.  Returns the
        callback so it can be used as a decorator.
        """
        self._speed_listeners.append(callback)
        return callback

    def set_host_speed(self, host: Host, speed: float) -> None:
        """Change a host's per-core speed at runtime (``Host.set_speed``).

        The new capacity flows through the CPU model's
        ``set_cpu_speed`` — constraint capacity plus the per-core bounds
        of running multi-core executions, all via the sanctioned LMM
        write paths — then the speed observers fire.
        """
        self.surf.model_of(host.cpu).set_cpu_speed(host.cpu, speed)
        self._notify_speed_change(host, host.available_speed)

    def set_link_bandwidth(self, link: Link, bandwidth: float) -> None:
        """Change a link's nominal bandwidth (``Link.set_bandwidth``)."""
        self.surf.model_of(link.resource).set_link_bandwidth(
            link.resource, bandwidth)
        self._notify_speed_change(link, link.current_bandwidth)

    def _notify_host_state(self, host: Host, is_on: bool) -> None:
        for callback in self._host_state_listeners:
            callback(host, is_on)

    def _notify_link_state(self, link: Link, is_on: bool) -> None:
        for callback in self._link_state_listeners:
            callback(link, is_on)

    def _notify_speed_change(self, resource, available_speed: float) -> None:
        for callback in self._speed_listeners:
            callback(resource, available_speed)

    # ------------------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------------------
    #: Simulations with at least this many live actors get the gc policy
    #: by default: below it a full collect + freeze costs more than the
    #: generational passes it avoids.
    _GC_POLICY_MIN_ACTORS = 5000

    def _enter_gc_policy(self) -> bool:
        """Freeze the setup heap for the duration of the event loop.

        A large simulation builds its object graph (hosts, links, actors,
        mailboxes, generator frames) before ``run`` and keeps it alive to
        the end; the cyclic collector re-scans those millions of objects
        on every full generational pass even though none of them is
        garbage.  ``gc.freeze`` moves the pre-loop heap to the permanent
        generation so collections during the run only trace the young
        objects the loop actually churns (activities, actions, tuples).
        The kernel keeps its hot object graph cycle-free by construction
        (activity<->action and actor<->context backlinks are broken on
        completion), so deferring cycle detection of the frozen set to
        the end of the run leaks nothing.
        """
        manage = self.manage_gc
        if manage is None:
            manage = len(self._alive_actors) >= self._GC_POLICY_MIN_ACTORS
        if not manage or not gc.isenabled():
            return False
        gc.collect()
        gc.freeze()
        return True

    def _exit_gc_policy(self) -> None:
        """Thaw the heap frozen by ``_enter_gc_policy``."""
        gc.unfreeze()

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation until it ends (or until the given date).

        Returns the final simulated time.
        """
        limit = math.inf if until is None else float(until)
        self._tearing_down = False
        managed_gc = self._enter_gc_policy()
        try:
            self._run_loop(limit, until)
        finally:
            if managed_gc:
                self._exit_gc_policy()
        return self.now

    def _run_loop(self, limit: float, until: Optional[float]) -> None:
        while True:
            self._schedule_ready()
            if self._simulation_over():
                break
            bound = min(self.timers.next_date(), limit)
            result = self.surf.step(until=bound)
            if result is None:
                # No action can complete, no trace event, no timer, no limit:
                # the remaining actors (if any) are deadlocked.
                self._handle_deadlock()
                break
            now = result.time
            self._handle_state_changes(result.state_changes)
            self._handle_speed_changes(result.speed_changes)
            for action in result.failed:
                activity = action.data
                if isinstance(activity, Activity):
                    self._finish_activity(activity, ActivityState.FAILED)
            for action in result.completed:
                activity = action.data
                if isinstance(activity, Activity):
                    self._finish_activity(activity, ActivityState.DONE)
            self.timers.fire_until(now)
            if until is not None and now >= limit - _EPS:
                self._schedule_ready()
                break

    @property
    def deadlocked(self) -> bool:
        """True when the last run ended because of a deadlock."""
        return self._deadlocked

    @property
    def is_tearing_down(self) -> bool:
        """True while the engine reaps leftover actors at end of run.

        Actor ``on_exit`` hooks that normally respawn actors (supervision
        trees, custom restart logic) must become no-ops when this is set:
        the run is over, so a respawned actor would never be scheduled and
        would leave the engine non-quiescent for snapshots or reuse.
        """
        return self._tearing_down

    # -- loop helpers -------------------------------------------------------------------
    def _enqueue(self, actor: Actor, value=None,
                 exception: Optional[BaseException] = None) -> None:
        self._ready.append((actor, value, exception))

    def _schedule_ready(self) -> None:
        while self._ready:
            actor, value, exception = self._ready.popleft()
            if actor.state == ActorState.DEAD:
                continue
            if actor._suspended:
                actor._parked_resume = (value, exception)
                continue
            self._run_actor(actor, value, exception)

    def _run_actor(self, actor: Actor, value=None,
                   exception: Optional[BaseException] = None) -> None:
        actor.state = ActorState.RUNNABLE
        previous = _actor_mod._current
        _actor_mod._current = actor
        try:
            request = actor.context.resume(value, exception)
        finally:
            _actor_mod._current = previous
        if request is FINISHED:
            self._terminate_actor(actor)
            return
        self._handle_simcall(actor, request)

    def _simulation_over(self) -> bool:
        if self._ready:
            return False
        if self._alive_nondaemon == 0:
            self._kill_remaining_daemons()
            return True
        if (not self.surf.has_running_actions()
                and not self.timers
                and math.isinf(self.surf.next_trace_event_date())):
            self._handle_deadlock()
            return True
        return False

    def _kill_remaining_daemons(self) -> None:
        self._tearing_down = True
        for actor in list(self._alive_actors):
            if actor.daemon:
                self._kill_actor(actor)

    def _handle_deadlock(self) -> None:
        survivors = list(self._alive_actors)
        if not survivors:
            return
        self._deadlocked = True
        self._tearing_down = True
        for actor in survivors:
            self._kill_actor(actor)
        if self.raise_on_deadlock:
            names = ", ".join(a.name for a in survivors)
            raise DeadlockError(
                f"simulation deadlocked at t={self.now:g}: "
                f"actors [{names}] are blocked forever")

    def _handle_state_changes(self, state_changes) -> None:
        for resource, is_on in state_changes:
            if isinstance(resource, CpuResource):
                host = self._host_by_cpu.get(id(resource))
                if host is None:
                    continue
                if is_on:
                    self._on_host_up(host)
                else:
                    self._on_host_down(host)
            elif isinstance(resource, LinkResource):
                link = self._link_by_resource.get(id(resource))
                if link is not None:
                    self._notify_link_state(link, is_on)

    def _handle_speed_changes(self, speed_changes) -> None:
        """Forward trace-driven availability changes to the speed observers."""
        if not speed_changes or not self._speed_listeners:
            return
        for resource, _factor in speed_changes:
            if isinstance(resource, CpuResource):
                host = self._host_by_cpu.get(id(resource))
                if host is not None:
                    self._notify_speed_change(host, host.available_speed)
            elif isinstance(resource, LinkResource):
                link = self._link_by_resource.get(id(resource))
                if link is not None:
                    self._notify_speed_change(link, link.current_bandwidth)

    def _on_host_down(self, host: Host) -> None:
        # Fail every started communication touching this host.
        for comm in list(self._active_comms):
            if comm.is_over():
                continue
            if (comm.src_host is host) or (comm.dst_host is host):
                if comm.surf_action is not None and comm.surf_action.is_running():
                    comm.surf_action.cancel(self.now)
                self._finish_activity(comm, ActivityState.FAILED)
        # Kill every actor running on this host, remembering the ones to
        # reboot when the host comes back (in their creation order).
        for actor in list(host.actors):
            if actor.is_alive:
                if actor.auto_restart:
                    self._pending_restarts.setdefault(host, []).append(
                        (actor.name, actor.func, actor.args, actor.kwargs,
                         actor.daemon, type(actor)))
                self._kill_actor(actor)
        self._notify_host_state(host, False)

    def _on_host_up(self, host: Host) -> None:
        for (name, func, args, kwargs, daemon,
             actor_cls) in self._pending_restarts.pop(host, []):
            self.restart_count += 1
            self.add_actor(name, host, func, *args, daemon=daemon,
                           auto_restart=True, actor_cls=actor_cls, **kwargs)
        # Listeners observe the flip after the reboot side effects, like
        # the down-notification follows the kills.
        self._notify_host_state(host, True)

    # ------------------------------------------------------------------------------
    # simcall handling
    # ------------------------------------------------------------------------------
    def _handle_simcall(self, actor: Actor, call: Simcall) -> None:
        actor.state = ActorState.BLOCKED
        handler = self._simcall_handlers.get(type(call))
        if handler is None:
            raise TypeError(f"unknown simcall {call!r}")
        handler(actor, call)

    def _do_test(self, actor: Actor, call: TestCall) -> None:
        self._enqueue(actor, call.activity.is_over())

    def _do_kill(self, actor: Actor, call: KillCall) -> None:
        target = call.process
        self._kill_actor(target)
        if target is not actor:
            self._enqueue(actor, None)

    def _do_yield(self, actor: Actor, call: YieldCall) -> None:
        self._enqueue(actor, None)

    # -- execution ---------------------------------------------------------------------
    def _start_exec(self, activity: Exec) -> None:
        """Create the SURF action realising an Exec and mark it started."""
        activity.post_time = self.now
        activity.start_time = self.now
        action = self.surf.execute(activity.host.cpu,
                                   activity.flops,
                                   priority=activity.priority,
                                   bound=activity.bound)
        action.data = activity
        activity.surf_action = action
        activity.state = ActivityState.STARTED
        activity._engine = self

    def _do_execute(self, actor: Actor, call: ExecuteCall) -> None:
        host: Host = call.host if isinstance(call.host, Host) else actor.host
        if not host.is_on:
            self._enqueue(actor, None,
                          HostFailureError(f"host {host.name} is down"))
            return
        activity = Exec(actor, host, call.flops, call.name,
                        priority=call.priority, bound=call.bound)
        self._start_exec(activity)
        activity.add_waiter(actor)
        self._block_on(actor, "exec", [activity])

    def _do_exec_async(self, actor: Actor, call: ExecAsyncCall) -> None:
        host: Host = call.host if isinstance(call.host, Host) else actor.host
        if not host.is_on:
            self._enqueue(actor, None,
                          HostFailureError(f"host {host.name} is down"))
            return
        activity = Exec(actor, host, call.flops, call.name,
                        priority=call.priority, bound=call.bound)
        self._start_exec(activity)
        self._enqueue(actor, activity)

    def _do_sleep(self, actor: Actor, call: SleepCall) -> None:
        wake_date = self.now + call.duration

        def _wake() -> None:
            if actor.state == ActorState.DEAD:
                return
            self._clear_wait(actor)
            self._enqueue(actor, None)

        timer = self.timers.schedule(wake_date, _wake)
        actor._wait_kind = "sleep"
        actor._wait_activities = []
        actor._wait_timer = timer

    def _do_sleep_async(self, actor: Actor, call: SleepAsyncCall) -> None:
        activity = Sleep(actor, call.duration)
        self._start_sleep(activity)
        self._enqueue(actor, activity)

    def _start_sleep(self, activity: Sleep) -> None:
        activity.post_time = self.now
        activity.start_time = self.now
        activity.state = ActivityState.STARTED
        activity._engine = self
        activity._timer = self.timers.schedule(
            self.now + activity.duration,
            lambda: self._finish_activity(activity, ActivityState.DONE))

    # -- communications -------------------------------------------------------------------
    def _do_send(self, actor: Actor, call: SendCall) -> None:
        comm = self._post_send(actor, call.mailbox, call.payload, call.size,
                               call.rate, detached=False,
                               priority=call.priority, name=call.name)
        if comm.is_over():
            # Matching can terminate the comm synchronously (the route was
            # broken): wake the caller now, it never became a waiter.
            value, exc = self._activity_result(actor, comm)
            self._enqueue(actor, value, exc)
            return
        comm.add_waiter(actor)
        self._block_on(actor, "send", [comm], timeout=call.timeout)

    def _do_recv(self, actor: Actor, call: RecvCall) -> None:
        comm = self._post_recv(actor, call.mailbox, call.rate)
        if comm.is_over():
            value, exc = self._activity_result(actor, comm)
            self._enqueue(actor, value, exc)
            return
        comm.add_waiter(actor)
        self._block_on(actor, "recv", [comm], timeout=call.timeout)

    def _do_isend(self, actor: Actor, call: IsendCall) -> None:
        comm = self._post_send(actor, call.mailbox, call.payload, call.size,
                               call.rate, detached=call.detached,
                               priority=call.priority, name=call.name)
        self._enqueue(actor, comm)

    def _do_irecv(self, actor: Actor, call: IrecvCall) -> None:
        comm = self._post_recv(actor, call.mailbox, call.rate)
        self._enqueue(actor, comm)

    def _post_send(self, actor: Actor, mailbox: Mailbox, payload,
                   size: float, rate: Optional[float], detached: bool,
                   priority: float = 1.0, name: str = "",
                   prebuilt: Optional[Comm] = None) -> Comm:
        # Let MSG tasks (or any payload implementing the hook) learn who
        # sent them, without the kernel knowing about Task.
        hook = getattr(payload, "_on_comm_post", None)
        if hook is not None:
            hook(actor)
        peer = mailbox.pop_matching_recv()
        if peer is not None:
            comm = peer
            comm.payload = payload
            comm.size = size
            comm.src_actor = actor
            comm.priority = priority
            if name:
                comm.name = name
            if rate is not None:
                comm.rate = rate if comm.rate is None else min(comm.rate, rate)
            comm.detached = detached
            if prebuilt is not None and prebuilt is not comm:
                prebuilt._master = comm
            self._start_comm(comm)
        else:
            comm = prebuilt if prebuilt is not None else Comm(
                mailbox, payload=payload, size=size, src_actor=actor,
                rate=rate, detached=detached, priority=priority, name=name)
            comm.state = ActivityState.PENDING
            comm._direction = "send"
            comm._engine = self
            comm.post_time = self.now
            mailbox.post_send(comm)
        return comm

    def _post_recv(self, actor: Actor, mailbox: Mailbox,
                   rate: Optional[float],
                   prebuilt: Optional[Comm] = None) -> Comm:
        peer = mailbox.pop_matching_send()
        if peer is not None:
            comm = peer
            comm.dst_actor = actor
            if rate is not None:
                comm.rate = rate if comm.rate is None else min(comm.rate, rate)
            if prebuilt is not None and prebuilt is not comm:
                prebuilt._master = comm
            self._start_comm(comm)
        else:
            comm = prebuilt if prebuilt is not None else Comm(
                mailbox, dst_actor=actor, rate=rate)
            comm.state = ActivityState.PENDING
            comm._direction = "recv"
            comm._engine = self
            comm.post_time = self.now
            mailbox.post_recv(comm)
        return comm

    def _start_comm(self, comm: Comm) -> None:
        src_host = comm.src_actor.host
        dst_host = comm.dst_actor.host
        comm._engine = self
        if not src_host.is_on or not dst_host.is_on:
            self._finish_activity(comm, ActivityState.FAILED)
            return
        links = self.platform.route_resources(src_host.name, dst_host.name)
        action = self.surf.communicate(
            links, comm.size, rate=comm.rate, priority=comm.priority)
        action.data = comm
        comm.surf_action = action
        comm.state = ActivityState.STARTED
        comm.start_time = self.now
        hook = getattr(comm.payload, "_on_comm_start", None)
        if hook is not None:
            hook(comm)
        if not action.is_running():
            # A link of the route was already down when the rendezvous
            # matched: the model failed the action synchronously, so it will
            # never surface through a step result — report it here.
            self._finish_activity(comm, ActivityState.FAILED)
            return
        self._active_comms[comm] = None

    # -- deferred (``*_init``) activities ---------------------------------------------------
    def _do_start(self, actor: Actor, call: StartCall) -> None:
        try:
            activity = self._start_activity(actor, call.activity)
        except HostFailureError as exc:
            self._enqueue(actor, None, exc)
            return
        self._enqueue(actor, activity)

    def _start_activity(self, actor: Actor, handle: Activity) -> Activity:
        """Start a ``*_init`` activity; returns the canonical activity.

        Starting a comm whose peer is already pending merges the handle
        into the peer (the handle then forwards every query to it).
        """
        activity = handle._resolved()
        if activity.state is not ActivityState.INITED:
            return activity
        if isinstance(activity, Comm):
            if activity._direction == "send":
                return self._post_send(
                    activity.src_actor, activity.mailbox, activity.payload,
                    activity.size, activity.rate, activity.detached,
                    priority=activity.priority, name=activity.name,
                    prebuilt=activity)
            return self._post_recv(activity.dst_actor, activity.mailbox,
                                   activity.rate, prebuilt=activity)
        if isinstance(activity, Exec):
            if not activity.host.is_on:
                raise HostFailureError(f"host {activity.host.name} is down")
            self._start_exec(activity)
            return activity
        if isinstance(activity, Sleep):
            self._start_sleep(activity)
            return activity
        raise TypeError(f"cannot start {activity!r}")

    # -- waiting -----------------------------------------------------------------------
    def _do_wait(self, actor: Actor, call: WaitCall) -> None:
        activity: Activity = call.activity._resolved()
        if activity.state is ActivityState.INITED:
            try:
                activity = self._start_activity(actor, activity)._resolved()
            except HostFailureError as exc:
                self._enqueue(actor, None, exc)
                return
        if activity.is_over():
            value, exc = self._activity_result(actor, activity)
            self._enqueue(actor, value, exc)
            return
        activity.add_waiter(actor)
        self._block_on(actor, "wait", [activity], timeout=call.timeout)

    def _resolve_and_start(self, actor: Actor, handles) -> List[Activity]:
        """Resolve handles, auto-starting any still-INITED ones."""
        activities = []
        for handle in handles:
            activity = handle._resolved()
            if activity.state is ActivityState.INITED:
                activity = self._start_activity(actor, activity)._resolved()
            activities.append(activity)
        return activities

    def _do_wait_any(self, actor: Actor, call: WaitAnyCall) -> None:
        try:
            activities = self._resolve_and_start(actor, call.activities)
        except HostFailureError as exc:
            self._enqueue(actor, None, exc)
            return
        if not activities:
            raise ValueError("wait_any needs at least one activity")
        for idx, activity in enumerate(activities):
            if activity.is_over():
                self._block_on(actor, "wait_any", activities,
                               owner=call.owner)
                value, exc = self._activity_result(actor, activity)
                self._clear_wait(actor)
                self._enqueue(actor, value, exc)
                return
        for activity in activities:
            activity.add_waiter(actor)
        self._block_on(actor, "wait_any", activities, timeout=call.timeout,
                       owner=call.owner)

    def _do_wait_all(self, actor: Actor, call: WaitAllCall) -> None:
        try:
            activities = self._resolve_and_start(actor, call.activities)
        except HostFailureError as exc:
            self._enqueue(actor, None, exc)
            return
        if not activities:
            raise ValueError("wait_all needs at least one activity")
        over = [a for a in activities if a.is_over()]
        failed = next((a for a in over if not a.succeeded()), None)
        if failed is not None:
            self._block_on(actor, "wait_all", activities, owner=call.owner)
            value, exc = self._activity_result(actor, failed)
            self._clear_wait(actor)
            self._enqueue(actor, value, exc)
            return
        if len(over) == len(activities):
            self._reap_owner_all(call.owner, activities)
            self._enqueue(actor, None)
            return
        for activity in activities:
            if not activity.is_over():
                activity.add_waiter(actor)
        self._block_on(actor, "wait_all", activities, timeout=call.timeout,
                       owner=call.owner)

    def _block_on(self, actor: Actor, kind: str,
                  activities: List[Activity],
                  timeout: Optional[float] = None,
                  owner=None) -> None:
        actor._wait_kind = kind
        actor._wait_activities = list(activities)
        actor._wait_owner = owner
        actor._wait_timer = None
        if timeout is not None:
            deadline = self.now + timeout
            actor._wait_timer = self.timers.schedule(
                deadline, lambda: self._on_wait_timeout(actor))

    def _clear_wait(self, actor: Actor) -> None:
        if actor._wait_timer is not None:
            actor._wait_timer.cancel()
        actor._wait_timer = None
        actor._wait_kind = None
        actor._wait_activities = []
        actor._wait_owner = None

    def _on_wait_timeout(self, actor: Actor) -> None:
        if actor.state == ActorState.DEAD or actor._wait_kind is None:
            return
        kind = actor._wait_kind
        activities = list(actor._wait_activities)
        for entry in activities:
            if isinstance(entry, Actor):  # join timeout
                try:
                    entry._joiners.remove(actor)
                except ValueError:
                    pass
                continue
            activity = entry
            activity.remove_waiter(actor)
            if isinstance(activity, Comm):
                mine = (activity.src_actor is actor
                        or activity.dst_actor is actor)
                if activity.is_pending() and mine and kind in ("send", "recv"):
                    # A synchronous send/recv owns its posted comm: abort it.
                    # Waits on async handles only stop *waiting* — the comm
                    # stays posted so the actor can wait on it again later.
                    activity.mailbox.discard(activity)
                    activity.state = ActivityState.TIMEOUT
                elif activity.is_started() and mine and kind in ("send", "recv"):
                    # Abort the rendezvous: the peer sees a transfer failure.
                    if (activity.surf_action is not None
                            and activity.surf_action.is_running()):
                        activity.surf_action.cancel(self.now)
                    self._active_comms.pop(activity, None)
                    activity.state = ActivityState.TIMEOUT
                    activity.finish_time = self.now
                    for peer in list(activity.waiters):
                        activity.remove_waiter(peer)
                        self._clear_wait(peer)
                        self._enqueue(peer, None, TransferFailureError(
                            f"peer timed out on {activity.mailbox.name}"))
        self._clear_wait(actor)
        self._enqueue(actor, None, SimTimeoutError(
            f"{kind} timed out at t={self.now:g}"))

    # -- actor control ------------------------------------------------------------------
    def _do_suspend(self, actor: Actor, call: SuspendCall) -> None:
        target = call.process or actor
        if target is actor:
            target._suspended = True
            target.state = ActorState.SUSPENDED
            # Not rescheduled: it stays parked until someone resumes it.
            target._parked_resume = (None, None)
            return
        self._suspend_other(target)
        self._enqueue(actor, None)

    def _suspend_other(self, target: Actor) -> None:
        if not target.is_alive or target._suspended:
            return
        target._suspended = True
        if target.state != ActorState.SUSPENDED:
            target.state = ActorState.SUSPENDED
        for activity in target._wait_activities:
            if isinstance(activity, Exec) and activity.surf_action:
                activity.surf_action.suspend()

    def _do_resume_other(self, actor: Actor, call: ResumeCall) -> None:
        self.resume_actor(call.process)
        self._enqueue(actor, None)

    def resume_actor(self, target: Actor) -> None:
        """Resume a suspended actor (engine-level API)."""
        if not target.is_alive or not target._suspended:
            return
        target._suspended = False
        for activity in target._wait_activities:
            if isinstance(activity, Exec) and activity.surf_action:
                activity.surf_action.resume()
        if target._parked_resume is not None:
            value, exc = target._parked_resume
            target._parked_resume = None
            target.state = ActorState.RUNNABLE
            self._enqueue(target, value, exc)
        else:
            target.state = ActorState.BLOCKED

    def _do_join(self, actor: Actor, call: JoinCall) -> None:
        target: Actor = call.process
        if not target.is_alive:
            self._enqueue(actor, None)
            return
        target._joiners.append(actor)
        actor._wait_kind = "join"
        actor._wait_activities = [target]
        actor._wait_owner = None
        actor._wait_timer = None
        if call.timeout is not None:
            actor._wait_timer = self.timers.schedule(
                self.now + call.timeout,
                lambda: self._on_wait_timeout(actor))

    # ------------------------------------------------------------------------------
    # activity completion
    # ------------------------------------------------------------------------------
    def cancel_activity(self, activity: Activity) -> None:
        """Cancel an activity: stop its action/timer, wake its waiters."""
        activity = activity._resolved()
        if activity.is_over():
            return
        if (activity.surf_action is not None
                and activity.surf_action.is_running()):
            activity.surf_action.cancel(self.now)
        if isinstance(activity, Sleep) and activity._timer is not None:
            activity._timer.cancel()
        if isinstance(activity, Comm) and activity.is_pending():
            activity.mailbox.discard(activity)
        self._finish_activity(activity, ActivityState.CANCELLED)

    def _finish_activity(self, activity: Activity, state: ActivityState) -> None:
        if activity.is_over():
            return
        activity.state = state
        activity.finish_time = self.now
        if isinstance(activity, Comm):
            self._active_comms.pop(activity, None)
        self._record_activity(activity)
        # Break the activity <-> action reference cycle: once finished,
        # the pair would otherwise only ever be reclaimed by a gc cycle
        # pass, which at 10⁵ actors dominates the collector's work.
        action = activity.surf_action
        if action is not None and action.data is activity:
            action.data = None
        waiters = list(activity.waiters)
        activity.waiters.clear()
        for actor in waiters:
            self._wake_from_activity(actor, activity)

    def _record_activity(self, activity: Activity) -> None:
        if self.recorder is None or activity.start_time is None:
            return
        start = activity.start_time
        end = activity.finish_time if activity.finish_time is not None else start
        if isinstance(activity, Exec):
            self.recorder.record_interval(
                row=activity.host.name, category="compute",
                start=start, end=end, label=activity.name)
        elif isinstance(activity, Comm):
            label = activity.name
            if activity.src_host is not None:
                self.recorder.record_interval(
                    row=activity.src_host.name, category="comm-send",
                    start=start, end=end, label=label)
            if activity.dst_host is not None:
                self.recorder.record_interval(
                    row=activity.dst_host.name, category="comm-recv",
                    start=start, end=end, label=label)

    def _wake_from_activity(self, actor: Actor, activity: Activity) -> None:
        if actor.state == ActorState.DEAD:
            return
        if actor._wait_kind is None:
            return
        if actor._wait_kind == "wait_all" and activity.succeeded():
            # Keep waiting until every member completed.
            pending = [a for a in actor._wait_activities
                       if isinstance(a, Activity) and not a.is_over()]
            if pending:
                return
            self._reap_owner_all(actor._wait_owner, actor._wait_activities)
            self._clear_wait(actor)
            self._enqueue(actor, None)
            return
        # Detach the actor from every other activity it was waiting on.
        for other in actor._wait_activities:
            if other is not activity and isinstance(other, Activity):
                other.remove_waiter(actor)
        value, exc = self._activity_result(actor, activity)
        self._clear_wait(actor)
        self._enqueue(actor, value, exc)

    def _reap_owner_any(self, owner, activity: Activity
                        ) -> Optional[Activity]:
        """Remove the completed ``activity`` from its ActivitySet owner.

        Returns the removed *member* — the very handle the user pushed,
        which may be a ``*_init`` comm that was merged into a peer — so
        identity checks on the caller side keep working.
        """
        if owner is None:
            return None
        for member in owner.activities:
            if member._resolved() is activity:
                owner.erase(member)
                return member
        return None

    def _reap_owner_all(self, owner, activities) -> None:
        if owner is None:
            return
        targets = {id(a) for a in activities}
        for member in owner.activities:
            if id(member._resolved()) in targets:
                owner.erase(member)

    def _activity_result(self, actor: Actor, activity: Activity
                         ) -> Tuple[object, Optional[BaseException]]:
        kind = actor._wait_kind
        # Whatever the outcome, a terminated activity must leave the
        # ActivitySet being reaped: otherwise a failed member would make
        # every subsequent wait_any raise the same error forever and the
        # set could never empty.
        member = None
        if kind in ("wait_any", "wait_all") and activity.is_over():
            member = self._reap_owner_any(actor._wait_owner, activity)
        if activity.state is ActivityState.DONE:
            if kind == "wait_any":
                if actor._wait_owner is not None:
                    return (member if member is not None else activity), None
                try:
                    index = actor._wait_activities.index(activity)
                except ValueError:
                    index = 0
                return index, None
            if isinstance(activity, Comm) and (
                    activity.dst_actor is actor):
                return activity.payload, None
            return None, None
        if activity.state is ActivityState.FAILED:
            if isinstance(activity, Comm):
                return None, TransferFailureError(
                    f"transfer {activity.name!r} failed at t={self.now:g}")
            return None, HostFailureError(
                f"host failed during {activity.name!r} at t={self.now:g}")
        if activity.state is ActivityState.CANCELLED:
            return None, CancelledError(
                f"activity {activity.name!r} was cancelled")
        if activity.state is ActivityState.TIMEOUT:
            return None, SimTimeoutError(
                f"activity {activity.name!r} timed out")
        return None, None

    # ------------------------------------------------------------------------------
    # death
    # ------------------------------------------------------------------------------
    def _kill_actor(self, target: Actor) -> None:
        if not target.is_alive:
            return
        self._detach_from_waits(target)
        target.context.kill()
        self._terminate_actor(target, failed=True)

    def _detach_from_waits(self, target: Actor) -> None:
        if target._wait_timer is not None:
            target._wait_timer.cancel()
        for entry in list(target._wait_activities):
            if isinstance(entry, Actor):
                try:
                    entry._joiners.remove(target)
                except ValueError:
                    pass
                continue
            activity = entry
            activity.remove_waiter(target)
            if isinstance(activity, Exec) and activity.actor is target:
                if not activity.is_over():
                    activity.cancel()
            elif isinstance(activity, Comm):
                mine = (activity.src_actor is target
                        or activity.dst_actor is target)
                if not mine:
                    continue
                if activity.is_pending():
                    activity.mailbox.discard(activity)
                    activity.state = ActivityState.CANCELLED
                elif activity.is_started() and not activity.detached:
                    if (activity.surf_action is not None
                            and activity.surf_action.is_running()):
                        activity.surf_action.cancel(self.now)
                    self._finish_activity(activity, ActivityState.FAILED)
        target._wait_kind = None
        target._wait_activities = []
        target._wait_owner = None
        target._wait_timer = None

    def _terminate_actor(self, actor: Actor, failed: bool = False) -> None:
        if actor.state == ActorState.DEAD:
            return
        actor.state = ActorState.DEAD
        actor._exit_failed = failed
        self._alive_actors.pop(actor, None)
        try:
            actor.host.actors.remove(actor)
        except ValueError:
            pass
        # Break the actor <-> context backlink: the finished frame (a dead
        # generator or thread) is unreachable garbage now, and it could
        # never travel through a snapshot anyway.
        actor.context = None
        if not actor.daemon:
            self._alive_nondaemon -= 1
        for joiner in actor._joiners:
            if joiner.is_alive and joiner._wait_kind == "join":
                self._clear_wait(joiner)
                self._enqueue(joiner, None)
        actor._joiners = []
        # on_exit callbacks run in kernel context (no blocking simcalls);
        # ``failed`` is False only when the body returned normally.
        callbacks, actor._on_exit_callbacks = actor._on_exit_callbacks, []
        for callback in callbacks:
            callback(failed)
