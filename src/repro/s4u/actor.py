"""S4U actors: the unit of concurrency of the simulation.

An :class:`Actor` is a function running on a :class:`~repro.s4u.host.Host`.
Actors are spawned dynamically (``Engine.add_actor``), can be suspended,
resumed, killed and joined, and perform every blocking operation through
kernel simcalls — under the default generator context factory blocking
calls are ``yield``-ed, under the thread context factory they block
directly.

Module-level helpers mirror SimGrid's ``this_actor`` namespace: they act on
whichever actor the engine is currently running (see
:func:`current_actor`), so library code does not need the actor object
threaded through every call::

    from repro.s4u import this_actor

    def worker(actor):
        yield this_actor.execute(1e9)          # same as actor.execute(...)
        yield this_actor.sleep_for(2.0)
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.kernel.context import Context, ThreadContext
from repro.kernel.simcall import (
    ExecAsyncCall, ExecuteCall, JoinCall, KillCall, ResumeCall, Simcall,
    SleepAsyncCall, SleepCall, SuspendCall, YieldCall,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.s4u.engine import Engine
    from repro.s4u.host import Host

__all__ = ["Actor", "ActorState", "current_actor"]

_pids = itertools.count(1)

#: The actor the engine is currently running (None between schedulings).
_current: Optional["Actor"] = None


def current_actor() -> "Actor":
    """The actor whose code is currently executing.

    Only meaningful from inside a simulated actor; raises ``RuntimeError``
    when called from plain host code.
    """
    if _current is None:
        raise RuntimeError(
            "no actor is running; s4u blocking helpers can only be used "
            "from inside a simulated actor")
    return _current


class ActorState:
    """Symbolic actor states (strings for easy debugging)."""

    CREATED = "created"
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    SUSPENDED = "suspended"
    DEAD = "dead"


class Actor:
    """One simulated actor: a function running on a host."""

    __slots__ = ("engine", "name", "host", "func", "args", "kwargs",
                 "daemon", "auto_restart", "pid", "state", "context", "data",
                 "_wait_activities", "_wait_timer", "_wait_kind",
                 "_wait_owner", "_suspended", "_parked_resume", "_joiners",
                 "_on_exit_callbacks", "_exit_failed", "exit_status")

    def __init__(self, engine: "Engine", name: str, host: "Host",
                 func, args: tuple = (), kwargs: Optional[dict] = None,
                 daemon: bool = False, auto_restart: bool = False) -> None:
        self.engine = engine
        self.name = name
        self.host = host
        self.func = func
        self.args = args
        self.kwargs = kwargs or {}
        self.daemon = daemon
        #: Reboot this actor (fresh body, same function/arguments) when its
        #: failed host is restored (see ``Engine.restore_host``).
        self.auto_restart = auto_restart
        self.pid = next(_pids)
        self.state = ActorState.CREATED
        self.context: Optional[Context] = None
        #: Application-visible storage (``MSG_process_set_data``).
        self.data: Dict[str, Any] = {}
        # kernel bookkeeping
        self._wait_activities: List[Any] = []
        self._wait_timer = None
        self._wait_kind: Optional[str] = None
        self._wait_owner = None  # ActivitySet being reaped, if any
        self._suspended = False
        self._parked_resume: Optional[tuple] = None
        self._joiners: List["Actor"] = []
        self._on_exit_callbacks: List[Any] = []
        #: How the actor died (False = body returned normally); only
        #: meaningful once the actor is DEAD.
        self._exit_failed = False
        self.exit_status: Optional[BaseException] = None

    # ------------------------------------------------------------------------------
    # identity & state
    # ------------------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        return self.state != ActorState.DEAD

    @property
    def is_suspended(self) -> bool:
        return self._suspended

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.engine.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(pid={self.pid}, name={self.name!r}, "
                f"host={self.host.name!r}, state={self.state})")

    def on_exit(self, callback) -> "Actor":
        """Register ``callback(failed)`` to run when this actor terminates.

        Mirrors S4U's ``Actor::on_exit``: the callback fires exactly once,
        whether the body returned normally (``failed=False``) or the actor
        was killed — explicitly or by a host failure (``failed=True``).  It
        runs in kernel context, so it must not block (no simcalls); use it
        for cleanup and accounting.  Returns the actor so calls chain.
        """
        if not callable(callback):
            raise TypeError("on_exit needs a callable")
        if self.state == ActorState.DEAD:
            callback(self._exit_failed)
            return self
        self._on_exit_callbacks.append(callback)
        return self

    # ------------------------------------------------------------------------------
    # simcall submission
    # ------------------------------------------------------------------------------
    def _submit(self, simcall: Simcall):
        """Return the simcall (generator mode) or block on it (thread mode)."""
        if isinstance(self.context, ThreadContext):
            return self.context.block(simcall)
        return simcall

    def _submit_as_caller(self, simcall: Simcall):
        """Submit through the *calling* actor's context when inside the
        simulation, so ``other_actor.kill()`` works S4U-style."""
        if _current is None:
            raise RuntimeError(
                "this operation must be called from inside a simulated "
                "actor; use the Engine-level helpers from host code")
        return _current._submit(simcall)

    # ------------------------------------------------------------------------------
    # blocking operations of the actor itself
    # ------------------------------------------------------------------------------
    def execute(self, flops: float, priority: float = 1.0,
                bound: Optional[float] = None,
                host: Optional["Host"] = None, name: str = "compute"):
        """Execute ``flops`` on this actor's host (blocking)."""
        return self._submit(ExecuteCall(flops=float(flops),
                                        host=host or self.host,
                                        priority=priority, bound=bound,
                                        name=name))

    def exec_init(self, flops: float, priority: float = 1.0,
                  bound: Optional[float] = None,
                  host: Optional["Host"] = None, name: str = "compute"):
        """Create an unstarted :class:`~repro.s4u.activity.Exec` future."""
        from repro.s4u.activity import ActivityState, Exec
        activity = Exec(self, host or self.host, float(flops), name=name,
                        priority=priority, bound=bound)
        activity.state = ActivityState.INITED
        activity._engine = self.engine
        return activity

    def exec_async(self, flops: float, priority: float = 1.0,
                   bound: Optional[float] = None,
                   host: Optional["Host"] = None, name: str = "compute"):
        """Start an asynchronous execution; the result is an ``Exec``."""
        return self._submit(ExecAsyncCall(flops=float(flops),
                                          host=host or self.host,
                                          priority=priority, bound=bound,
                                          name=name))

    def sleep_for(self, duration: float):
        """Do nothing for ``duration`` simulated seconds (blocking)."""
        if duration < 0:
            raise ValueError("sleep duration must be >= 0")
        return self._submit(SleepCall(duration=duration))

    def sleep_until(self, date: float):
        """Sleep until the absolute simulated ``date``."""
        return self.sleep_for(max(0.0, date - self.engine.now))

    def sleep_async(self, duration: float):
        """Start an asynchronous sleep; the result is a ``Sleep`` activity."""
        if duration < 0:
            raise ValueError("sleep duration must be >= 0")
        return self._submit(SleepAsyncCall(duration=duration))

    def yield_(self):
        """Let other runnable actors run (no simulated time passes)."""
        return self._submit(YieldCall())

    # ------------------------------------------------------------------------------
    # lifecycle control (S4U style: the target is *this* actor)
    # ------------------------------------------------------------------------------
    def kill(self):
        """Kill this actor (from another actor, itself, or host code)."""
        if _current is None:
            self.engine.kill_actor(self)
            return None
        return self._submit_as_caller(KillCall(process=self))

    def suspend(self):
        """Suspend this actor until someone resumes it."""
        if _current is None:
            self.engine.suspend_actor(self)
            return None
        if _current is self:
            return self._submit(SuspendCall(process=None))
        return self._submit_as_caller(SuspendCall(process=self))

    def resume(self):
        """Resume this (suspended) actor."""
        if _current is None:
            self.engine.resume_actor(self)
            return None
        return self._submit_as_caller(ResumeCall(process=self))

    def join(self, timeout: Optional[float] = None):
        """Block the calling actor until this actor terminates."""
        return self._submit_as_caller(JoinCall(process=self, timeout=timeout))
