"""S4U links: first-class network endpoints, symmetric to hosts.

The paper's SURF panel lists *trace-based simulation of dynamic resource
failures* for links as well as hosts; this module gives the s4u layer the
control surface to inject those failures explicitly.  A :class:`Link` is a
facade over the realized :class:`~repro.surf.network.LinkResource`:

* :meth:`turn_off` fails every transfer whose route crosses the link (the
  waiters see a ``TransferFailureError``, exactly like a trace-driven link
  failure); :meth:`turn_on` restores it;
* :meth:`set_bandwidth` re-shares the running flows through the lazy-LMM
  constraint-capacity write path (only the component containing this link
  is re-solved); :meth:`set_latency` affects transfers started afterwards.

Lookup is by name: ``engine.link_by_name("backbone")``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.surf.network import LinkResource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.s4u.engine import Engine

__all__ = ["Link"]


class Link:
    """One simulated network link of the platform."""

    def __init__(self, engine: "Engine", resource: LinkResource) -> None:
        self._engine = engine
        self.resource = resource
        self.name = resource.name

    # -- static information ----------------------------------------------------------
    @property
    def bandwidth(self) -> float:
        """Nominal bandwidth in byte/s (after the model's bandwidth factor)."""
        return self.resource.bandwidth

    @property
    def latency(self) -> float:
        """Latency in seconds."""
        return self.resource.latency

    @property
    def is_on(self) -> bool:
        """Whether the link is currently up."""
        return self.resource.is_on

    # -- dynamic information -----------------------------------------------------------
    @property
    def current_bandwidth(self) -> float:
        """Bandwidth after availability scaling (0 when failed)."""
        return self.resource.current_bandwidth

    @property
    def load(self) -> int:
        """Number of transfers currently registered on this link."""
        constraint = self.resource.constraint
        return 0 if constraint is None else len(constraint.elements)

    # -- control ----------------------------------------------------------------------
    def turn_off(self) -> None:
        """Fail the link: every transfer crossing it fails."""
        self._engine.fail_link(self)

    def turn_on(self) -> None:
        """Bring a failed link back up."""
        self._engine.restore_link(self)

    def set_bandwidth(self, bandwidth: float) -> "Link":
        """Change the link bandwidth; running flows are re-shared.

        The engine's ``on_resource_speed_change`` observers fire after
        the new capacity reached the solver.
        """
        self._engine.set_link_bandwidth(self, bandwidth)
        return self

    def set_latency(self, latency: float) -> "Link":
        """Change the link latency (seen by transfers started afterwards)."""
        self._engine.surf.network_model.set_link_latency(
            self.resource, latency)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Link(name={self.name!r}, bandwidth={self.bandwidth:g}, "
                f"latency={self.latency:g}, on={self.is_on})")
