"""Failure injection: seeded churn of hosts and links over a running engine.

The paper lists *trace-based simulation of dynamic resource failures* as a
core SURF feature.  The kernel half (state traces failing actions, actor
kill on host failure) has existed since the seed; this module adds the
controller that *drives* failures at scale: a :class:`FailureInjector`
turns hosts and links off and back on in random pulses from a seeded RNG —
or replays an explicit :class:`~repro.surf.trace.Trace` — through the
engine's timer queue, so the schedule interleaves deterministically with
the simulation and the same seed always produces bit-identical dates.

Typical churn study::

    engine = s4u.Engine(make_star(num_hosts=64))
    # ... add a master on "center" and auto_restart workers on the leaves
    injector = FailureInjector(
        engine, seed=42,
        hosts=[f"leaf-{i}" for i in range(64)],
        mtbf=0.01, mean_downtime=0.05, max_failures=100)
    injector.start()
    engine.run()
    print(injector.failures, "failures,", engine.restart_count, "restarts")

Every failure uses the same path as an explicit ``turn_off()``: running
activities fail (their waiters see the failure exception), actors on a
failed host are killed, and ``auto_restart`` actors reboot when the
injector restores the host.  The injector never keeps the simulation
alive by itself being idle: pulses stop at ``max_failures`` and/or
``until``, and every injected failure schedules its own restore.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple, Union, TYPE_CHECKING

from repro.surf.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.s4u.engine import Engine
    from repro.s4u.host import Host
    from repro.s4u.link import Link

__all__ = ["FailureInjector"]


class _Pulse:
    """A scheduled on/off flip of one target, as a picklable callable.

    Timer callbacks must survive ``engine.snapshot()`` (pickle) and
    ``copy.deepcopy``; a lambda would either fail to pickle or — worse —
    be shared by ``deepcopy``, so the copied engine's pulses would flip
    the *original* injector's targets.  A plain object holding the
    injector and the victim follows both protocols correctly.
    """

    __slots__ = ("injector", "target", "is_on")

    def __init__(self, injector: "FailureInjector",
                 target: Union["Host", "Link"], is_on: bool) -> None:
        self.injector = injector
        self.target = target
        self.is_on = is_on

    def __call__(self) -> None:
        if self.is_on:
            self.injector._apply_on(self.target)
        else:
            self.injector._apply_off(self.target)


class FailureInjector:
    """Drives random host/link off/on pulses over a running engine.

    Parameters
    ----------
    engine:
        The :class:`~repro.s4u.engine.Engine` to churn.
    seed:
        Seed of the private :class:`random.Random`; the whole schedule is a
        pure function of it (and of the simulation it perturbs).
    hosts / links:
        The candidate victims, as objects or names.  Defaults to *no*
        target of that kind; pass ``hosts=engine.hosts.values()`` to churn
        everything (keep the hosts of irreplaceable actors out of the
        list).
    mtbf:
        Mean time between consecutive failure injections across the whole
        target fleet (exponentially distributed), in simulated seconds.
    mean_downtime:
        Mean repair delay of one failure (exponentially distributed).
    max_failures / until:
        Stop bounds: no new failure is injected past ``max_failures`` or
        after date ``until``.  At least one must be given, otherwise the
        pulse chain would keep the engine's timer queue busy forever.

    The injector snapshots with its engine: the seeded ``random.Random``
    pickles with its full Mersenne state and the armed timers hold plain
    bound methods / :class:`_Pulse` objects, so churn resumed from an
    ``engine.snapshot()`` blob replays the exact pulse schedule a
    never-snapshotted run would produce.
    """

    def __init__(self, engine: "Engine", seed: int = 0,
                 hosts: Optional[Iterable[Union[str, "Host"]]] = None,
                 links: Optional[Iterable[Union[str, "Link"]]] = None,
                 mtbf: float = 1.0, mean_downtime: float = 0.1,
                 max_failures: Optional[int] = None,
                 until: Optional[float] = None) -> None:
        if mtbf <= 0:
            raise ValueError("mtbf must be > 0")
        if mean_downtime <= 0:
            raise ValueError("mean_downtime must be > 0")
        if max_failures is None and until is None:
            raise ValueError(
                "give max_failures and/or until so the churn terminates")
        self.engine = engine
        self.seed = seed
        self.mtbf = float(mtbf)
        self.mean_downtime = float(mean_downtime)
        self.max_failures = max_failures
        self.until = until
        self.targets: List[Union["Host", "Link"]] = []
        for host in hosts or ():
            self.targets.append(
                host if not isinstance(host, str) else engine.host(host))
        for link in links or ():
            self.targets.append(
                link if not isinstance(link, str) else engine.link_by_name(link))
        self._rng = random.Random(seed)
        self._started = False
        #: Number of failures injected / restores performed so far.
        self.failures = 0
        self.restores = 0
        #: Chronological ``(date, resource_name, is_on)`` log of the pulses
        #: actually applied — the replay fingerprint of a churn run.
        self.events: List[Tuple[float, str, bool]] = []

    # ------------------------------------------------------------------------------
    # random churn
    # ------------------------------------------------------------------------------
    def start(self) -> "FailureInjector":
        """Arm the first failure pulse; returns the injector."""
        if self._started:
            raise RuntimeError("the injector was already started")
        if not self.targets:
            raise ValueError("no hosts or links to churn")
        self._started = True
        self._arm_next_failure(self.engine.now)
        return self

    def _arm_next_failure(self, now: float) -> None:
        if (self.max_failures is not None
                and self.failures >= self.max_failures):
            return
        date = now + self._rng.expovariate(1.0 / self.mtbf)
        if self.until is not None and date > self.until:
            return
        self.engine.timers.schedule(date, self._fire_failure)

    def _fire_failure(self) -> None:
        now = self.engine.now
        candidates = [t for t in self.targets if t.is_on]
        if candidates:
            victim = self._rng.choice(candidates)
            self._apply_off(victim)
            restore_date = now + self._rng.expovariate(1.0 / self.mean_downtime)
            self.engine.timers.schedule(
                restore_date, _Pulse(self, victim, is_on=True))
        self._arm_next_failure(now)

    def _apply_off(self, target: Union["Host", "Link"]) -> None:
        """Turn a target off, counting and logging the pulse (idempotent)."""
        if not target.is_on:
            return
        target.turn_off()
        self.failures += 1
        self.events.append((self.engine.now, target.name, False))

    def _apply_on(self, target: Union["Host", "Link"]) -> None:
        """Turn a target back on, counting and logging the pulse."""
        if target.is_on:
            return
        target.turn_on()
        self.restores += 1
        self.events.append((self.engine.now, target.name, True))

    # ------------------------------------------------------------------------------
    # trace replay
    # ------------------------------------------------------------------------------
    def schedule_trace(self, target: Union[str, "Host", "Link"],
                       trace: Trace, until: Optional[float] = None
                       ) -> "FailureInjector":
        """Replay a state :class:`Trace` as explicit off/on pulses.

        Equivalent to attaching the trace to the resource at platform
        definition time, but applied through the same s4u ``turn_off`` /
        ``turn_on`` path as the random churn (so auto-restart and the state
        observers fire identically).  Trace dates are interpreted relative
        to the *current* simulated date, so a mid-run replay starts from
        now rather than scheduling pulses in the past.  ``until`` bounds
        the replay of periodic (infinite) traces — it is a relative
        duration too, defaulting to the injector's own ``until``.
        """
        if isinstance(target, str):
            # Resolve against the platform description, not engine.hosts:
            # on a lazily realized platform the wrapper may not exist yet
            # (engine.host materializes it).
            target = (self.engine.host(target)
                      if target in self.engine.platform.hosts
                      else self.engine.link_by_name(target))
        limit = until if until is not None else self.until
        if trace.period is not None and limit is None:
            raise ValueError("a periodic trace needs an `until` bound")
        base = self.engine.now
        iterator = trace.iter_from(0.0)
        while True:
            event = iterator.next_event()
            if event is None:
                break
            date, value = event
            if limit is not None and date > limit:
                break
            self.engine.timers.schedule(
                base + date, _Pulse(self, target, is_on=value > 0))
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FailureInjector(seed={self.seed}, targets={len(self.targets)},"
                f" failures={self.failures}, restores={self.restores})")
