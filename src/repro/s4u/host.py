"""S4U hosts: the machines actors run on.

Facade over a platform host and its realized CPU resource.  It exposes the
host speed and load, carries the per-host "data" dictionary applications
can hang state on, and lists the actors currently running on it.
"""

from __future__ import annotations

from typing import Any, Dict, List, TYPE_CHECKING

from repro.platform.platform import HostSpec
from repro.surf.cpu import CpuResource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.s4u.actor import Actor
    from repro.s4u.engine import Engine

__all__ = ["Host"]


class Host:
    """One simulated machine: a name, a CPU, and the actors it hosts."""

    def __init__(self, engine: "Engine", spec: HostSpec,
                 cpu: CpuResource) -> None:
        self._engine = engine
        self.spec = spec
        self.cpu = cpu
        self.name = spec.name
        #: Application-visible storage (``MSG_host_set_data``).
        self.data: Dict[str, Any] = {}
        self.actors: List["Actor"] = []

    @property
    def processes(self) -> List["Actor"]:
        """MSG-era alias of :attr:`actors` (same list object)."""
        return self.actors

    # -- static information ---------------------------------------------------------
    @property
    def speed(self) -> float:
        """Peak speed of one core, in flop/s."""
        return self.cpu.speed

    @property
    def cores(self) -> int:
        return self.cpu.cores

    @property
    def is_on(self) -> bool:
        """Whether the host is currently up."""
        return self.cpu.is_on

    @property
    def available_speed(self) -> float:
        """Current speed of one core, after the availability trace."""
        return self.cpu.core_speed

    # -- dynamic information ----------------------------------------------------------
    @property
    def load(self) -> int:
        """Number of computations currently running on this host."""
        return sum(1 for action in self._engine.surf.cpu_model.running
                   if action.cpu is self.cpu and action.is_running())

    def actor_count(self) -> int:
        """Number of simulated actors currently hosted here."""
        return len(self.actors)

    def process_count(self) -> int:
        """MSG-era alias of :meth:`actor_count`."""
        return len(self.actors)

    # -- control ----------------------------------------------------------------------
    def turn_off(self) -> None:
        """Fail the host: running activities fail, its actors are killed."""
        self._engine.fail_host(self)

    def turn_on(self) -> None:
        """Bring a failed host back up (reboots its auto-restart actors)."""
        self._engine.restore_host(self)

    def set_speed(self, speed: float) -> "Host":
        """Change the per-core speed at runtime; running execs are re-shared.

        The change reaches the solver exclusively through the CPU model's
        capacity write path (constraint capacity + multi-core per-core
        bounds), so only the LMM component containing this host is
        re-solved; the engine's ``on_resource_speed_change`` observers
        fire afterwards.  Availability traces keep scaling the new peak.
        """
        self._engine.set_host_speed(self, speed)
        return self

    def compute_duration(self, flops: float) -> float:
        """Time to compute ``flops`` alone on this host at full availability."""
        return flops / self.speed if self.speed > 0 else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host(name={self.name!r}, speed={self.speed:g})"
