"""S4U mailboxes: named rendezvous points between actors.

A mailbox matches senders and receivers.  The queue mechanics (the kernel
side, used by the engine) live here together with the user-facing blocking
API: :meth:`put` / :meth:`get` block until the transfer completed,
:meth:`put_async` / :meth:`get_async` return a
:class:`~repro.s4u.activity.Comm` future immediately, and
:meth:`put_init` / :meth:`get_init` create an unstarted ``Comm`` to be
``start()``-ed later.

The MSG port helpers derive the canonical name ``"<host>:<port>"`` so the
paper's port-based examples translate directly, but any string names a
mailbox (which is what GRAS and SMPI do internally).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, TYPE_CHECKING

from repro.kernel.simcall import IrecvCall, IsendCall, RecvCall, SendCall

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.s4u.activity import Comm

__all__ = ["Mailbox"]


def _payload_name(payload: Any) -> str:
    name = getattr(payload, "name", None)
    return name if isinstance(name, str) else "comm"


class Mailbox:
    """A named rendezvous point between senders and receivers."""

    def __init__(self, name: str, engine=None) -> None:
        self.name = name
        self._engine = engine
        #: Communications posted by senders, waiting for a receiver.
        self.pending_sends: Deque["Comm"] = deque()
        #: Communications posted by receivers, waiting for a sender.
        self.pending_recvs: Deque["Comm"] = deque()

    # ------------------------------------------------------------------------------
    # user-facing blocking API
    # ------------------------------------------------------------------------------
    def put(self, payload: Any, size: float = 0.0,
            rate: Optional[float] = None, timeout: Optional[float] = None,
            priority: float = 1.0, name: Optional[str] = None):
        """Send ``payload`` (``size`` simulated bytes); blocks until the
        receiver has fully received it (rendezvous semantics)."""
        return self._submit(SendCall(
            mailbox=self, payload=payload, size=float(size), rate=rate,
            timeout=timeout, priority=priority,
            name=name or _payload_name(payload)))

    def get(self, timeout: Optional[float] = None,
            rate: Optional[float] = None):
        """Receive the next payload; blocks until a sender shows up and the
        transfer completed.  The result is the payload."""
        return self._submit(RecvCall(mailbox=self, timeout=timeout,
                                     rate=rate))

    def put_async(self, payload: Any, size: float = 0.0,
                  rate: Optional[float] = None, detached: bool = False,
                  priority: float = 1.0, name: Optional[str] = None):
        """Start an asynchronous send; the result is a ``Comm`` future."""
        return self._submit(IsendCall(
            mailbox=self, payload=payload, size=float(size), rate=rate,
            detached=detached, priority=priority,
            name=name or _payload_name(payload)))

    def get_async(self, rate: Optional[float] = None):
        """Start an asynchronous receive; the result is a ``Comm`` future."""
        return self._submit(IrecvCall(mailbox=self, rate=rate))

    def put_init(self, payload: Any, size: float = 0.0,
                 rate: Optional[float] = None, detached: bool = False,
                 priority: float = 1.0, name: Optional[str] = None):
        """Create an *unstarted* send-side ``Comm`` (S4U ``put_init``).

        The communication is only posted when ``start()`` (or ``wait()``)
        is called on it.
        """
        from repro.s4u.activity import ActivityState, Comm
        from repro.s4u.actor import current_actor
        comm = Comm(mailbox=self, payload=payload, size=float(size),
                    src_actor=current_actor(), rate=rate, detached=detached,
                    priority=priority, name=name or _payload_name(payload))
        comm.state = ActivityState.INITED
        comm._direction = "send"
        comm._engine = self._engine
        return comm

    def get_init(self, rate: Optional[float] = None):
        """Create an *unstarted* receive-side ``Comm`` (S4U ``get_init``)."""
        from repro.s4u.activity import ActivityState, Comm
        from repro.s4u.actor import current_actor
        comm = Comm(mailbox=self, dst_actor=current_actor(), rate=rate)
        comm.state = ActivityState.INITED
        comm._direction = "recv"
        comm._engine = self._engine
        return comm

    def _submit(self, simcall):
        from repro.s4u.actor import current_actor
        return current_actor()._submit(simcall)

    # ------------------------------------------------------------------------------
    # kernel-side matching (used by the engine)
    # ------------------------------------------------------------------------------
    def pop_matching_send(self) -> Optional["Comm"]:
        """Oldest sender-side communication still waiting, if any."""
        while self.pending_sends:
            comm = self.pending_sends[0]
            if comm.is_pending():
                return self.pending_sends.popleft()
            self.pending_sends.popleft()
        return None

    def pop_matching_recv(self) -> Optional["Comm"]:
        """Oldest receiver-side communication still waiting, if any."""
        while self.pending_recvs:
            comm = self.pending_recvs[0]
            if comm.is_pending():
                return self.pending_recvs.popleft()
            self.pending_recvs.popleft()
        return None

    def post_send(self, comm: "Comm") -> None:
        """Queue a sender-side communication until a receiver shows up."""
        self.pending_sends.append(comm)

    def post_recv(self, comm: "Comm") -> None:
        """Queue a receiver-side communication until a sender shows up."""
        self.pending_recvs.append(comm)

    def discard(self, comm: "Comm") -> None:
        """Remove a communication from the queues (timeout, kill, cancel)."""
        try:
            self.pending_sends.remove(comm)
        except ValueError:
            pass
        try:
            self.pending_recvs.remove(comm)
        except ValueError:
            pass

    @property
    def empty(self) -> bool:
        """True when no communication is waiting on this mailbox."""
        return not self.pending_sends and not self.pending_recvs

    def waiting_send_count(self) -> int:
        """Number of sender-side communications currently queued (probe)."""
        return sum(1 for c in self.pending_sends if c.is_pending())

    def ready(self) -> bool:
        """True when a ``get`` would match an already-posted send."""
        return self.waiting_send_count() > 0

    def listen(self) -> bool:
        """S4U name of :meth:`ready`: a sender is waiting on this mailbox."""
        return self.waiting_send_count() > 0

    def peek_payload(self) -> Any:
        """Payload of the oldest pending send, without consuming it.

        The probe half of a selective receive (GRAS ``msg_wait``): a
        receiver can inspect what the next ``get`` would match before
        committing to the rendezvous.  Returns ``None`` when no send is
        pending — check :meth:`listen` first to tell "empty" from "None
        payload".  To search beyond the queue head use
        :meth:`pending_payloads`.
        """
        for comm in self.pending_sends:
            if comm.is_pending():
                return comm.payload
        return None

    def pending_payloads(self) -> list:
        """Payloads of every pending send, oldest first, non-consuming.

        Selective probes (``MPI_Iprobe``-style matching on source/tag, GRAS
        message-type filters) must scan the whole queue: a matching message
        may sit behind a non-matching one.
        """
        return [comm.payload for comm in self.pending_sends
                if comm.is_pending()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Mailbox(name={self.name!r}, sends={len(self.pending_sends)},"
                f" recvs={len(self.pending_recvs)})")
