"""S4U activities: first-class futures for everything that takes time.

An :class:`Activity` binds a kernel request to the SURF action (or timer)
that realises it and exposes the asynchronous lifecycle of SimGrid's S4U
API: create (``*_init``), :meth:`start`, :meth:`test`, :meth:`wait`,
:meth:`cancel`.  Three concrete activities exist:

* :class:`Exec` — a computation on one host;
* :class:`Comm` — a payload transfer through a :class:`~repro.s4u.mailbox.Mailbox`;
* :class:`Sleep` — a pure simulated-time delay.

:class:`ActivitySet` groups heterogeneous activities so an actor can reap
them as they complete (``wait_any``) or in bulk (``wait_all``), built on
the kernel's :class:`~repro.kernel.simcall.WaitAnyCall` /
:class:`~repro.kernel.simcall.WaitAllCall`.

Every blocking method returns the simcall to ``yield`` under the generator
context factory and blocks directly under the thread context factory,
exactly like the MSG helpers (which are now thin adapters over these
classes).
"""

from __future__ import annotations

import enum
from typing import Any, Iterable, List, Optional, TYPE_CHECKING

from repro.kernel.simcall import (
    StartCall, TestCall, WaitAllCall, WaitAnyCall, WaitCall,
)
from repro.surf.action import Action

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.s4u.actor import Actor
    from repro.s4u.host import Host
    from repro.s4u.mailbox import Mailbox

__all__ = ["Activity", "ActivityState", "ActivitySet", "Comm", "Exec",
           "Sleep"]


class ActivityState(enum.Enum):
    """Lifecycle of an activity."""

    INITED = "inited"        # created (``*_init``), not yet started
    PENDING = "pending"      # posted, not started (comm waiting for a peer)
    STARTED = "started"      # the SURF action (or timer) is running
    DONE = "done"
    FAILED = "failed"        # a resource died
    CANCELLED = "cancelled"  # explicitly cancelled
    TIMEOUT = "timeout"      # the waiter's timeout fired first


_OVER_STATES = frozenset((ActivityState.DONE, ActivityState.FAILED,
                          ActivityState.CANCELLED, ActivityState.TIMEOUT))


def _submit(simcall):
    """Route a simcall through the calling actor's context."""
    from repro.s4u.actor import current_actor
    return current_actor()._submit(simcall)


class Activity:
    """Base class of every asynchronous operation a simulation performs."""

    kind = "activity"

    __slots__ = ("name", "state", "surf_action", "waiters", "post_time",
                 "start_time", "finish_time", "_engine", "_master")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.state = ActivityState.PENDING
        self.surf_action: Optional[Action] = None
        self.waiters: List["Actor"] = []
        self.post_time: float = 0.0
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        #: Engine backref, set when the engine posts/starts the activity.
        self._engine = None
        #: When a pre-built comm is matched against an already-pending peer,
        #: the peer becomes the canonical object and this handle forwards to
        #: it (see Engine._post_send).
        self._master: Optional["Activity"] = None

    # -- state helpers -----------------------------------------------------------------
    def _resolved(self) -> "Activity":
        """Follow the master chain to the canonical activity object."""
        activity = self
        while activity._master is not None:
            activity = activity._master
        return activity

    def is_inited(self) -> bool:
        return self._resolved().state is ActivityState.INITED

    def is_pending(self) -> bool:
        return self._resolved().state is ActivityState.PENDING

    def is_started(self) -> bool:
        return self._resolved().state is ActivityState.STARTED

    def is_over(self) -> bool:
        """Finished, successfully or not."""
        activity = self
        while activity._master is not None:
            activity = activity._master
        return activity.state in _OVER_STATES

    def succeeded(self) -> bool:
        return self._resolved().state is ActivityState.DONE

    def add_waiter(self, actor: "Actor") -> None:
        if actor not in self.waiters:
            self.waiters.append(actor)

    def remove_waiter(self, actor: "Actor") -> None:
        try:
            self.waiters.remove(actor)
        except ValueError:
            pass

    # -- user-facing async API ---------------------------------------------------------
    def start(self):
        """Start an ``*_init`` activity; returns the activity itself.

        ``yield activity.start()`` under generator contexts.  Starting an
        already-started activity is a harmless no-op.
        """
        return _submit(StartCall(activity=self))

    def test(self):
        """Non-blocking completion probe; the result is a bool."""
        return _submit(TestCall(activity=self))

    def wait(self, timeout: Optional[float] = None):
        """Block until completion; raises ``SimTimeoutError`` on timeout.

        The result is the received payload for receive-side comms, ``None``
        for every other activity.  A timeout only abandons the *wait*, not
        the activity (S4U semantics): a pending comm stays posted on its
        mailbox and can be waited on again — :meth:`cancel` it explicitly
        to withdraw it.
        """
        return _submit(WaitCall(activity=self, timeout=timeout))

    def cancel(self) -> None:
        """Cancel the activity and wake its waiters with ``CancelledError``."""
        target = self._resolved()
        if target.is_over():
            return
        if target._engine is not None:
            target._engine.cancel_activity(target)
            return
        # Not yet posted to an engine: flip the state locally.
        if target.surf_action is not None and target.surf_action.is_running():
            target.surf_action.cancel(target.surf_action.start_time)
        target.state = ActivityState.CANCELLED

    @property
    def remaining(self) -> float:
        """Remaining work of the underlying action (0 when not started)."""
        action = self._resolved().surf_action
        if action is None:
            return 0.0
        return action.remaining

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, state={self.state.value})"


class Exec(Activity):
    """A computation of ``flops`` on ``host`` by ``actor``."""

    kind = "exec"

    __slots__ = ("actor", "host", "flops", "priority", "bound")

    def __init__(self, actor: "Actor", host: "Host", flops: float,
                 name: str = "compute", priority: float = 1.0,
                 bound: Optional[float] = None) -> None:
        super().__init__(name)
        self.actor = actor
        self.host = host
        self.flops = flops
        self.priority = priority
        self.bound = bound


class Comm(Activity):
    """A payload transfer through a mailbox.

    The activity is created by whichever side posts first (PENDING); when
    the other side arrives the engine *starts* it: the route between the
    sender's and the receiver's hosts is resolved and the SURF network
    action created.
    """

    kind = "comm"

    __slots__ = ("mailbox", "payload", "size", "src_actor", "dst_actor",
                 "rate", "detached", "priority", "_direction")

    def __init__(self, mailbox: "Mailbox", payload: Any = None,
                 size: float = 0.0,
                 src_actor: Optional["Actor"] = None,
                 dst_actor: Optional["Actor"] = None,
                 rate: Optional[float] = None,
                 detached: bool = False,
                 priority: float = 1.0,
                 name: str = "") -> None:
        super().__init__(name or "comm")
        self.mailbox = mailbox
        self.payload = payload
        self.size = float(size)
        self.src_actor = src_actor
        self.dst_actor = dst_actor
        self.rate = rate
        self.detached = detached
        self.priority = priority
        #: Which side built this comm ("send"/"recv"), for deferred start.
        self._direction: Optional[str] = None

    def get_payload(self) -> Any:
        """The transported payload (valid once the comm succeeded)."""
        return self._resolved().payload

    def detach(self) -> "Comm":
        """Turn this comm into a fire-and-forget transfer (S4U ``detach``).

        A detached comm needs no waiter: the sender can terminate (or be
        killed) while the transfer is still in flight and the payload is
        still delivered.  SMPI's eager-protocol sends are detached comms.
        Returns the comm itself so ``put_async(...).detach()`` chains.
        """
        self._resolved().detached = True
        return self

    @property
    def src_host(self) -> Optional["Host"]:
        src = self._resolved().src_actor
        return src.host if src is not None else None

    @property
    def dst_host(self) -> Optional["Host"]:
        dst = self._resolved().dst_actor
        return dst.host if dst is not None else None


class Sleep(Activity):
    """A pure delay, as a waitable activity (async ``sleep``)."""

    kind = "sleep"

    __slots__ = ("actor", "duration", "_timer")

    def __init__(self, actor: "Actor", duration: float) -> None:
        super().__init__("sleep")
        self.actor = actor
        self.duration = duration
        self._timer = None


class ActivitySet:
    """A bag of activities an actor reaps as they complete.

    Mirrors S4U's ``ActivitySet``: :meth:`wait_any` blocks until one member
    completes, removes it from the set and returns it; :meth:`wait_all`
    blocks until every member completed.
    """

    def __init__(self, activities: Iterable[Activity] = ()) -> None:
        self._activities: List[Activity] = list(activities)

    # -- container protocol ------------------------------------------------------------
    def push(self, activity: Activity) -> None:
        """Add an activity to the set."""
        if activity not in self._activities:
            self._activities.append(activity)

    def erase(self, activity: Activity) -> None:
        """Remove an activity from the set (no-op when absent)."""
        try:
            self._activities.remove(activity)
        except ValueError:
            pass

    def empty(self) -> bool:
        return not self._activities

    def size(self) -> int:
        return len(self._activities)

    def __len__(self) -> int:
        return len(self._activities)

    def __iter__(self):
        return iter(self._activities)

    def __contains__(self, activity: Activity) -> bool:
        return activity in self._activities

    @property
    def activities(self) -> List[Activity]:
        """A snapshot of the current members."""
        return list(self._activities)

    # -- blocking API ------------------------------------------------------------------
    def wait_any(self, timeout: Optional[float] = None):
        """Block until one member completes; it is removed and returned.

        Raises ``SimTimeoutError`` when ``timeout`` fires first, and the
        completing activity's error (``TransferFailureError``...) when it
        did not succeed.
        """
        if not self._activities:
            raise ValueError("wait_any on an empty ActivitySet")
        return _submit(WaitAnyCall(activities=list(self._activities),
                                   timeout=timeout, owner=self))

    def wait_all(self, timeout: Optional[float] = None):
        """Block until every member completed; the set is emptied."""
        if not self._activities:
            raise ValueError("wait_all on an empty ActivitySet")
        return _submit(WaitAllCall(activities=list(self._activities),
                                   timeout=timeout, owner=self))

    def test_any(self):
        """Non-blocking reap: a completed member (removed) or ``None``."""
        for activity in self._activities:
            if activity.is_over():
                self.erase(activity)
                return activity
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ActivitySet({self._activities!r})"
