"""``this_actor`` — blocking helpers acting on the currently-running actor.

Mirrors SimGrid's ``simgrid::s4u::this_actor`` namespace.  Every helper
resolves :func:`repro.s4u.actor.current_actor` and delegates, so actor code
can stay free of explicit actor plumbing::

    from repro.s4u import this_actor

    def worker(actor):
        yield this_actor.execute(5e8)
        comp = yield this_actor.exec_async(1e9)     # overlap with...
        yield this_actor.sleep_for(0.5)             # ...something else
        yield comp.wait()

Under the generator context factory the helpers return the simcall to
``yield``; under the thread context factory they block directly.
"""

from __future__ import annotations

from typing import Optional

from repro.s4u.actor import Actor, current_actor

__all__ = [
    "exec_async", "exec_init", "execute", "exit", "get_engine", "get_host",
    "get_name", "get_pid", "is_suspended", "mailbox", "self_", "sleep_async",
    "sleep_for", "sleep_until", "suspend", "yield_",
]


def self_() -> Actor:
    """The currently-running actor."""
    return current_actor()


def get_engine():
    """Engine the current actor runs in."""
    return current_actor().engine


def mailbox(name: str):
    """Mailbox ``name`` of the current engine (S4U ``Mailbox::by_name``)."""
    return current_actor().engine.mailbox(name)


def get_name() -> str:
    """Name of the current actor."""
    return current_actor().name


def get_pid() -> int:
    """Pid of the current actor."""
    return current_actor().pid


def get_host():
    """Host the current actor runs on."""
    return current_actor().host


def is_suspended() -> bool:
    return current_actor().is_suspended


def execute(flops: float, priority: float = 1.0,
            bound: Optional[float] = None, name: str = "compute"):
    """Execute ``flops`` on the current host (blocking)."""
    return current_actor().execute(flops, priority=priority, bound=bound,
                                   name=name)


def exec_init(flops: float, priority: float = 1.0,
              bound: Optional[float] = None, name: str = "compute"):
    """Create an unstarted ``Exec`` future on the current host."""
    return current_actor().exec_init(flops, priority=priority, bound=bound,
                                     name=name)


def exec_async(flops: float, priority: float = 1.0,
               bound: Optional[float] = None, name: str = "compute"):
    """Start an asynchronous execution; the result is an ``Exec`` future."""
    return current_actor().exec_async(flops, priority=priority, bound=bound,
                                      name=name)


def sleep_for(duration: float):
    """Block for ``duration`` simulated seconds."""
    return current_actor().sleep_for(duration)


def sleep_until(date: float):
    """Block until the absolute simulated ``date``."""
    return current_actor().sleep_until(date)


def sleep_async(duration: float):
    """Start an asynchronous sleep; the result is a ``Sleep`` activity."""
    return current_actor().sleep_async(duration)


def yield_():
    """Let other runnable actors run (no simulated time passes)."""
    return current_actor().yield_()


def suspend():
    """Suspend the current actor until someone resumes it."""
    return current_actor().suspend()


def exit():  # noqa: A001 - mirrors S4U's this_actor::exit()
    """Terminate the current actor."""
    return current_actor().kill()
