"""Network model: TCP flows sharing links, with multi-hop routing.

The paper's SURF panel lists the capabilities reproduced here:

* *Simulation of complex communications (multi-hop routing)* — a transfer
  uses every link along its route, so its LMM variable crosses one
  constraint per link;
* *Simulation of resource sharing* — multiple TCP flows sharing links get
  MaxMin-fair shares;
* *Simulation of LAN and WAN links* — links carry both a bandwidth and a
  latency; the latency of a route is the sum of its links' latencies;
* trace-driven bandwidth variation and link failures.

The model follows SimGrid's CM02 fluid model of that era:

* a transfer of ``size`` bytes over a route first pays the route latency,
  then transfers its payload at the MaxMin-fair rate;
* optionally, the rate of a flow is bounded by ``gamma / (2 * latency)``
  — the classic TCP congestion-window bound (window / RTT) that makes the
  fluid model much closer to packet-level simulators for long fat pipes;
* empirical correction factors on bandwidth and latency are configurable
  (the original CM02 paper uses 0.92 and 10.4; we default to neutral 1.0
  values so results are easy to reason about, and the validation benchmark
  explores their effect).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.surf.action import Action, ActionState
from repro.surf.lmm import MaxMinSystem
from repro.surf.resource import Resource
from repro.surf.trace import Trace

__all__ = ["NetworkModel", "NetworkModelConfig", "LinkResource", "NetworkAction"]

_COMPLETION_EPSILON = 1e-6
_LATENCY_EPSILON = 1e-12


@dataclass
class NetworkModelConfig:
    """Tunable knobs of the fluid network model.

    Attributes
    ----------
    bandwidth_factor:
        Multiplier applied to nominal link bandwidths (models protocol
        overhead; CM02 uses 0.92).
    latency_factor:
        Multiplier applied to route latencies (CM02 uses 10.4 to account
        for TCP slow-start on short transfers).
    tcp_gamma:
        Maximum TCP congestion window in bytes.  A flow's rate is bounded
        by ``tcp_gamma / (2 * route_latency)``; set to 0 to disable the
        bound.  The default (4 MiB) only matters on high-latency routes.
    """

    bandwidth_factor: float = 1.0
    latency_factor: float = 1.0
    tcp_gamma: float = 4194304.0

    def __post_init__(self) -> None:
        if self.bandwidth_factor <= 0:
            raise ValueError("bandwidth_factor must be > 0")
        if self.latency_factor <= 0:
            raise ValueError("latency_factor must be > 0")
        if self.tcp_gamma < 0:
            raise ValueError("tcp_gamma must be >= 0")


class LinkResource(Resource):
    """A network link with bandwidth (byte/s) and latency (s).

    ``shared=False`` models a fat-pipe backbone where concurrent flows do
    not interfere (each can use the full bandwidth).
    """

    def __init__(self, name: str, bandwidth: float, latency: float,
                 system: MaxMinSystem, shared: bool = True,
                 bandwidth_trace: Optional[Trace] = None,
                 state_trace: Optional[Trace] = None) -> None:
        if latency < 0:
            raise ValueError(f"link {name!r}: latency must be >= 0")
        super().__init__(name, bandwidth, system, shared=shared,
                         availability_trace=bandwidth_trace,
                         state_trace=state_trace)
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)

    @property
    def current_bandwidth(self) -> float:
        """Bandwidth after availability scaling (0 when failed)."""
        return self.current_capacity


class NetworkAction(Action):
    """One data transfer over a fixed sequence of links."""

    def __init__(self, model: "NetworkModel", links: Sequence[LinkResource],
                 size: float, latency: float, priority: float = 1.0) -> None:
        super().__init__(model, size, priority)
        self.links: List[LinkResource] = list(links)
        self.total_latency = float(latency)
        self.latency_remaining = float(latency)

    @property
    def in_latency_phase(self) -> bool:
        """True while the transfer is still paying the route latency."""
        return self.latency_remaining > _LATENCY_EPSILON

    def effective_weight(self) -> float:
        """No bandwidth is consumed while the latency is being paid."""
        if self.in_latency_phase:
            return 0.0
        return super().effective_weight()


class NetworkModel:
    """Fluid model of data transfers sharing network links."""

    def __init__(self, config: Optional[NetworkModelConfig] = None) -> None:
        self.config = config or NetworkModelConfig()
        self.system = MaxMinSystem()
        self.links: Dict[str, LinkResource] = {}
        self.running: Set[NetworkAction] = set()

    # -- platform construction -----------------------------------------------------
    def add_link(self, name: str, bandwidth: float, latency: float = 0.0,
                 shared: bool = True,
                 bandwidth_trace: Optional[Trace] = None,
                 state_trace: Optional[Trace] = None) -> LinkResource:
        """Register a new link resource."""
        if name in self.links:
            raise ValueError(f"duplicate link name {name!r}")
        link = LinkResource(name, bandwidth * self.config.bandwidth_factor,
                            latency, self.system, shared,
                            bandwidth_trace, state_trace)
        self.links[name] = link
        return link

    @property
    def resources(self) -> List[LinkResource]:
        return list(self.links.values())

    # -- action creation -----------------------------------------------------------
    def communicate(self, links: Sequence[LinkResource], size: float,
                    extra_latency: float = 0.0,
                    rate: Optional[float] = None,
                    priority: float = 1.0) -> NetworkAction:
        """Start the transfer of ``size`` bytes over ``links``.

        Parameters
        ----------
        links:
            The route, in order.  May be empty for a loopback communication
            (only ``extra_latency`` applies then).
        size:
            Payload size in bytes.
        extra_latency:
            Additional latency (e.g. from the route description) added to
            the sum of the link latencies.
        rate:
            Optional application-level cap on the transfer rate
            (``MSG_task_put_bounded``).
        priority:
            Sharing weight of the flow.
        """
        route_latency = (sum(l.latency for l in links) + extra_latency)
        route_latency *= self.config.latency_factor
        action = NetworkAction(self, links, size, route_latency, priority)

        bound = rate
        if self.config.tcp_gamma > 0 and route_latency > 0:
            tcp_bound = self.config.tcp_gamma / (2.0 * route_latency)
            bound = tcp_bound if bound is None else min(bound, tcp_bound)
        action.bound = bound

        var = self.system.new_variable(weight=action.effective_weight(),
                                       bound=bound, data=action)
        action.variable = var
        for link in links:
            self.system.expand(link.constraint, var, 1.0)
        self.running.add(action)

        if any(not link.is_on for link in links):
            action.fail(action.start_time)
        return action

    # -- model callbacks ------------------------------------------------------------
    def on_action_finished(self, action: Action) -> None:
        """Model hook: drop the LMM variable of a terminated transfer."""
        if action.variable is not None:
            self.system.remove_variable(action.variable)
            action.variable = None
        self.running.discard(action)  # type: ignore[arg-type]

    def on_action_priority_changed(self, action: Action) -> None:
        """Model hook: push new weight/bound to the LMM system."""
        if action.variable is None:
            return
        self.system.update_variable_weight(action.variable,
                                           action.effective_weight())
        self.system.update_variable_bound(action.variable, action.bound)

    # -- simulation steps -------------------------------------------------------------
    def share_resources(self, now: float) -> float:
        """Solve the LMM system; return the delay until the next event.

        The next event of a transfer is either the end of its latency phase
        or its completion at the freshly computed rate.
        """
        for action in self.running:
            if action.variable is not None:
                self.system.update_variable_weight(action.variable,
                                                   action.effective_weight())
                self.system.update_variable_bound(action.variable,
                                                  action.bound)
        self.system.solve()
        min_delta = math.inf
        for action in self.running:
            if not action.is_running():
                continue
            if action.in_latency_phase:
                delta = action.latency_remaining
                # A zero-byte message completes right at the end of latency.
            else:
                if action.remaining <= _COMPLETION_EPSILON:
                    delta = 0.0
                else:
                    delta = action.time_to_completion()
            if delta < min_delta:
                min_delta = delta
        return min_delta

    def update_actions_state(self, now: float,
                             delta: float) -> List[NetworkAction]:
        """Advance every running transfer by ``delta``; return completions."""
        finished: List[NetworkAction] = []
        for action in list(self.running):
            if not action.is_running():
                continue
            remaining_delta = delta
            if action.in_latency_phase:
                consumed = min(action.latency_remaining, remaining_delta)
                action.latency_remaining -= consumed
                remaining_delta -= consumed
                if action.in_latency_phase:
                    continue  # still paying latency
                # Latency finished: start consuming bandwidth next round.
                self.on_action_priority_changed(action)
            if remaining_delta > 0:
                action.update_remaining(remaining_delta)
            # A transfer whose rate is unconstrained (empty route and no
            # rate cap: a loopback communication) completes as soon as its
            # latency is paid; without this, its infinite rate would make
            # share_resources report a zero delay forever and the engine
            # would spin without advancing time.
            if (not action.in_latency_phase
                    and (action.remaining <= _COMPLETION_EPSILON
                         or math.isinf(action.rate))):
                action.remaining = 0.0
                action.finish(now, ActionState.DONE)
                finished.append(action)
        return finished

    # -- failures -------------------------------------------------------------------
    def fail_actions_on(self, link: LinkResource,
                        now: float) -> List[NetworkAction]:
        """Fail every running transfer crossing ``link``."""
        failed: List[NetworkAction] = []
        for action in list(self.running):
            if link in action.links and action.is_running():
                action.fail(now)
                failed.append(action)
        return failed

    def resource_of(self, name: str) -> LinkResource:
        """Lookup a link by name (raises ``KeyError`` if unknown)."""
        return self.links[name]
