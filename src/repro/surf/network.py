"""Network model: TCP flows sharing links, with multi-hop routing.

The paper's SURF panel lists the capabilities reproduced here:

* *Simulation of complex communications (multi-hop routing)* — a transfer
  uses every link along its route, so its LMM variable crosses one
  constraint per link;
* *Simulation of resource sharing* — multiple TCP flows sharing links get
  MaxMin-fair shares;
* *Simulation of LAN and WAN links* — links carry both a bandwidth and a
  latency; the latency of a route is the sum of its links' latencies;
* trace-driven bandwidth variation and link failures.

The model follows SimGrid's CM02 fluid model of that era:

* a transfer of ``size`` bytes over a route first pays the route latency,
  then transfers its payload at the MaxMin-fair rate;
* optionally, the rate of a flow is bounded by ``gamma / (2 * latency)``
  — the classic TCP congestion-window bound (window / RTT) that makes the
  fluid model much closer to packet-level simulators for long fat pipes;
* empirical correction factors on bandwidth and latency are configurable
  (the original CM02 paper uses 0.92 and 10.4; we default to neutral 1.0
  values so results are easy to reason about, and the validation benchmark
  explores their effect).

A transfer has at most one live event in the model's heap at a time: the
end of its latency phase while it is being paid, then its predicted
completion date once the solver has assigned it a bandwidth share (see
:class:`~repro.surf.model.FluidModel`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.surf.action import Action
from repro.surf.lmm import MaxMinSystem
from repro.surf.model import COMPLETION_EPSILON, FluidModel
from repro.surf.resource import Resource
from repro.surf.trace import Trace

__all__ = ["NetworkModel", "NetworkModelConfig", "LinkResource", "NetworkAction"]

_LATENCY_EPSILON = 1e-12


@dataclass
class NetworkModelConfig:
    """Tunable knobs of the fluid network model.

    Attributes
    ----------
    bandwidth_factor:
        Multiplier applied to nominal link bandwidths (models protocol
        overhead; CM02 uses 0.92).
    latency_factor:
        Multiplier applied to route latencies (CM02 uses 10.4 to account
        for TCP slow-start on short transfers).
    tcp_gamma:
        Maximum TCP congestion window in bytes.  A flow's rate is bounded
        by ``tcp_gamma / (2 * route_latency)``; set to 0 to disable the
        bound.  The default (4 MiB) only matters on high-latency routes.
    """

    bandwidth_factor: float = 1.0
    latency_factor: float = 1.0
    tcp_gamma: float = 4194304.0

    def __post_init__(self) -> None:
        if self.bandwidth_factor <= 0:
            raise ValueError("bandwidth_factor must be > 0")
        if self.latency_factor <= 0:
            raise ValueError("latency_factor must be > 0")
        if self.tcp_gamma < 0:
            raise ValueError("tcp_gamma must be >= 0")


class LinkResource(Resource):
    """A network link with bandwidth (byte/s) and latency (s).

    ``shared=False`` models a fat-pipe backbone where concurrent flows do
    not interfere (each can use the full bandwidth).
    """

    def __init__(self, name: str, bandwidth: float, latency: float,
                 system: MaxMinSystem, shared: bool = True,
                 bandwidth_trace: Optional[Trace] = None,
                 state_trace: Optional[Trace] = None,
                 index: Optional[int] = None) -> None:
        if latency < 0:
            raise ValueError(f"link {name!r}: latency must be >= 0")
        super().__init__(name, bandwidth, system, shared=shared,
                         availability_trace=bandwidth_trace,
                         state_trace=state_trace,
                         index=index)
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)

    @property
    def current_bandwidth(self) -> float:
        """Bandwidth after availability scaling (0 when failed)."""
        return self.current_capacity


class NetworkAction(Action):
    """One data transfer over a fixed sequence of links."""

    __slots__ = ("links", "total_latency", "latency_remaining")

    def __init__(self, model: "NetworkModel", links: Sequence[LinkResource],
                 size: float, latency: float, priority: float = 1.0) -> None:
        super().__init__(model, size, priority)
        self.links: List[LinkResource] = list(links)
        self.total_latency = float(latency)
        self.latency_remaining = float(latency)

    @property
    def in_latency_phase(self) -> bool:
        """True while the transfer is still paying the route latency."""
        return self.latency_remaining > _LATENCY_EPSILON

    def effective_weight(self) -> float:
        """No bandwidth is consumed while the latency is being paid."""
        if self.in_latency_phase:
            return 0.0
        return super().effective_weight()


class NetworkModel(FluidModel):
    """Fluid model of data transfers sharing network links."""

    def __init__(self, config: Optional[NetworkModelConfig] = None) -> None:
        super().__init__()
        self.config = config or NetworkModelConfig()
        self.links: Dict[str, LinkResource] = {}

    # -- platform construction -----------------------------------------------------
    def add_link(self, name: str, bandwidth: float, latency: float = 0.0,
                 shared: bool = True,
                 bandwidth_trace: Optional[Trace] = None,
                 state_trace: Optional[Trace] = None,
                 index: Optional[int] = None) -> LinkResource:
        """Register a new link resource.

        ``index`` (when given) pins the constraint id to the link's
        declaration index so numbering is materialization-order
        independent.
        """
        if name in self.links:
            raise ValueError(f"duplicate link name {name!r}")
        link = LinkResource(name, bandwidth * self.config.bandwidth_factor,
                            latency, self.system, shared,
                            bandwidth_trace, state_trace, index=index)
        self.links[name] = link
        return link

    @property
    def resources(self) -> List[LinkResource]:
        return list(self.links.values())

    # -- dynamic reconfiguration ---------------------------------------------------
    def set_link_bandwidth(self, link: LinkResource, bandwidth: float) -> None:
        """Change a link's nominal bandwidth at runtime.

        ``bandwidth`` is the raw (unfactored) value, like :meth:`add_link`
        takes; the model's ``bandwidth_factor`` is applied here.  The change
        flows to running transfers through the constraint-capacity write
        path, so the selective solve re-shares only the flows crossing this
        link.
        """
        if bandwidth <= 0:
            raise ValueError(f"link {link.name!r}: bandwidth must be > 0")
        link.bandwidth = bandwidth * self.config.bandwidth_factor
        link.set_peak_capacity(link.bandwidth)

    def set_link_latency(self, link: LinkResource, latency: float) -> None:
        """Change a link's latency at runtime.

        Only transfers *started after* the change see the new value: a
        transfer's route latency (and its TCP window bound) is computed once
        when the communication starts, exactly like SimGrid.
        """
        if latency < 0:
            raise ValueError(f"link {link.name!r}: latency must be >= 0")
        link.latency = float(latency)

    # -- action creation -----------------------------------------------------------
    def communicate(self, links: Sequence[LinkResource], size: float,
                    extra_latency: float = 0.0,
                    rate: Optional[float] = None,
                    priority: float = 1.0) -> NetworkAction:
        """Start the transfer of ``size`` bytes over ``links``.

        Parameters
        ----------
        links:
            The route, in order.  May be empty for a loopback communication
            (only ``extra_latency`` applies then).
        size:
            Payload size in bytes.
        extra_latency:
            Additional latency (e.g. from the route description) added to
            the sum of the link latencies.
        rate:
            Optional application-level cap on the transfer rate
            (``MSG_task_put_bounded``).
        priority:
            Sharing weight of the flow.
        """
        route_latency = (sum(l.latency for l in links) + extra_latency)
        route_latency *= self.config.latency_factor
        action = NetworkAction(self, links, size, route_latency, priority)

        bound = rate
        if self.config.tcp_gamma > 0 and route_latency > 0:
            tcp_bound = self.config.tcp_gamma / (2.0 * route_latency)
            bound = tcp_bound if bound is None else min(bound, tcp_bound)
        action.bound = bound

        var = self.system.new_variable(weight=action.effective_weight(),
                                       bound=bound, data=action)
        action.variable = var
        for link in links:
            self.system.expand(link.constraint, var, 1.0)
        self.running.add(action)

        if action.in_latency_phase:
            # The latency phase ends at a known absolute date; schedule it
            # now so the heap drives the phase switch.
            self._schedule_event(action, self.clock + action.latency_remaining)

        if any(not link.is_on for link in links):
            action.fail(action.start_time)
        return action

    # -- event handling ------------------------------------------------------------
    def _reschedule_action(self, action: Action, now: float) -> None:
        if isinstance(action, NetworkAction) and action.in_latency_phase:
            # The latency-end event is already in the heap; a solve that
            # touched the flow's links must not displace it.
            return
        super()._reschedule_action(action, now)

    def _fire_event(self, action: Action, now: float,
                    finished: List[Action]) -> None:
        if isinstance(action, NetworkAction) and action.in_latency_phase:
            # End of the latency phase.
            action.latency_remaining = 0.0
            action.last_sync = now
            if (action._remaining <= COMPLETION_EPSILON
                    or math.isinf(action.last_rate)):
                # A zero-byte message completes right at the end of latency.
                self._complete(action, now, finished)
                return
            # Start consuming bandwidth: the weight flip dirties the LMM
            # system, and the next solve assigns a rate and schedules the
            # completion.
            self.on_action_priority_changed(action)
            return
        self._complete(action, now, finished)

    def resource_of(self, name: str) -> LinkResource:
        """Lookup a link by name (raises ``KeyError`` if unknown)."""
        return self.links[name]
