"""Linear MaxMin (LMM) solver — the resource-sharing core of SURF.

The paper states the unifying model:

    *Consider a set of resources R and a set of "tasks" T; each task is
    defined as the subset of R it uses.  SURF uses the unifying MaxMin
    Fairness model: allocate as much capacity to all tasks in a way that
    maximizes the minimum capacity allocation over all tasks.*

This module implements that model as a *linear max-min* system, following
the structure of SimGrid's ``lmm`` solver:

* a :class:`Constraint` represents one resource (a CPU, a network link) with
  a finite capacity;
* a :class:`Variable` represents one activity (a computation, a TCP flow)
  with a *sharing weight* (priority) and an optional *rate bound*;
* an *element* links a variable to a constraint with a usage coefficient
  (how much of the resource one unit of the variable's rate consumes).

Solving the system assigns to every variable ``i`` a rate ``x_i`` such that

* for every shared constraint ``c``:  ``sum_i usage(i, c) * x_i <= C_c``;
* for every non-shared ("fat-pipe") constraint ``c``:
  ``max_i usage(i, c) * x_i <= C_c``;
* for every bounded variable:  ``x_i <= bound_i``;
* the allocation is weighted-max-min fair: the rate vector
  ``(x_i / w_i)`` sorted increasingly is lexicographically maximal.

The solver uses the classic *progressive filling* (a.k.a. water-filling)
algorithm: repeatedly find the bottleneck — the constraint or bound that
limits the common normalised rate the most — freeze the variables it
saturates at that level, subtract their consumption from every other
constraint, and continue with the rest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["MaxMinSystem", "Variable", "Constraint", "Element"]

#: Numerical tolerance used throughout the solver.
EPSILON = 1e-9


@dataclass
class Element:
    """One (variable, constraint) incidence with its usage coefficient."""

    variable: "Variable"
    constraint: "Constraint"
    usage: float


class Variable:
    """An activity competing for resources.

    Parameters
    ----------
    weight:
        Sharing weight (SimGrid calls it the *priority*).  A weight of zero
        means the activity is suspended and receives no capacity at all.
        Larger weights receive proportionally larger shares.
    bound:
        Optional upper bound on the rate (e.g. the TCP window bound
        ``W / RTT`` applied by the network model).  ``None`` means unbounded.
    data:
        Opaque back-pointer for the caller (usually the owning Action).
    """

    __slots__ = ("id", "weight", "bound", "value", "elements", "data")

    def __init__(self, vid: int, weight: float = 1.0,
                 bound: Optional[float] = None, data=None) -> None:
        if weight < 0:
            raise ValueError("variable weight must be >= 0")
        if bound is not None and bound < 0:
            raise ValueError("variable bound must be >= 0 or None")
        self.id = vid
        self.weight = float(weight)
        self.bound = None if bound is None else float(bound)
        self.value = 0.0
        self.elements: List[Element] = []
        self.data = data

    # -- introspection helpers -------------------------------------------------
    @property
    def constraints(self) -> List["Constraint"]:
        """Constraints this variable crosses."""
        return [e.constraint for e in self.elements]

    def usage_of(self, constraint: "Constraint") -> float:
        """Total usage coefficient of this variable on ``constraint``."""
        return sum(e.usage for e in self.elements if e.constraint is constraint)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Variable(id={self.id}, weight={self.weight}, "
                f"bound={self.bound}, value={self.value:.6g})")


class Constraint:
    """A resource with finite capacity shared by several variables.

    Parameters
    ----------
    capacity:
        The resource capacity (flop/s for a CPU, byte/s for a link).
    shared:
        If ``True`` (default) the capacity is *shared*: the sum of the
        usages may not exceed the capacity (a regular link or CPU).  If
        ``False`` the resource is a *fat pipe*: each crossing variable may
        individually use up to the capacity (used to model backbone links
        or switches that are never the bottleneck).
    data:
        Opaque back-pointer (usually the owning Resource).
    """

    __slots__ = ("id", "capacity", "shared", "elements", "data")

    def __init__(self, cid: int, capacity: float, shared: bool = True,
                 data=None) -> None:
        if capacity < 0:
            raise ValueError("constraint capacity must be >= 0")
        self.id = cid
        self.capacity = float(capacity)
        self.shared = bool(shared)
        self.elements: List[Element] = []
        self.data = data

    @property
    def variables(self) -> List[Variable]:
        """Variables crossing this constraint."""
        return [e.variable for e in self.elements]

    def usage_total(self) -> float:
        """Current total consumption given the solved variable values."""
        if self.shared:
            return sum(e.usage * e.variable.value for e in self.elements)
        if not self.elements:
            return 0.0
        return max(e.usage * e.variable.value for e in self.elements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Constraint(id={self.id}, capacity={self.capacity}, "
                f"shared={self.shared}, nvars={len(self.elements)})")


class MaxMinSystem:
    """A complete linear max-min system.

    Typical usage::

        system = MaxMinSystem()
        link = system.new_constraint(capacity=1e9)           # 1 Gb/s link
        flow1 = system.new_variable(weight=1.0)
        flow2 = system.new_variable(weight=1.0)
        system.expand(link, flow1, 1.0)
        system.expand(link, flow2, 1.0)
        system.solve()
        assert flow1.value == flow2.value == 0.5e9
    """

    def __init__(self) -> None:
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self._next_var_id = 0
        self._next_cns_id = 0
        self._dirty = True

    # -- construction -----------------------------------------------------------
    def new_variable(self, weight: float = 1.0,
                     bound: Optional[float] = None, data=None) -> Variable:
        """Create and register a new variable."""
        var = Variable(self._next_var_id, weight, bound, data)
        self._next_var_id += 1
        self.variables.append(var)
        self._dirty = True
        return var

    def new_constraint(self, capacity: float, shared: bool = True,
                       data=None) -> Constraint:
        """Create and register a new constraint."""
        cns = Constraint(self._next_cns_id, capacity, shared, data)
        self._next_cns_id += 1
        self.constraints.append(cns)
        self._dirty = True
        return cns

    def expand(self, constraint: Constraint, variable: Variable,
               usage: float = 1.0) -> None:
        """Declare that ``variable`` consumes ``usage`` of ``constraint``.

        Calling :meth:`expand` twice for the same pair accumulates the usage
        (matching SimGrid's ``lmm_expand_add``), which is what a route that
        crosses the same physical link twice needs.
        """
        if usage < 0:
            raise ValueError("usage must be >= 0")
        if usage == 0:
            return
        for elem in variable.elements:
            if elem.constraint is constraint:
                elem.usage += usage
                self._dirty = True
                return
        elem = Element(variable, constraint, usage)
        variable.elements.append(elem)
        constraint.elements.append(elem)
        self._dirty = True

    # -- mutation ----------------------------------------------------------------
    def remove_variable(self, variable: Variable) -> None:
        """Remove a variable (the activity completed or was cancelled)."""
        for elem in variable.elements:
            try:
                elem.constraint.elements.remove(elem)
            except ValueError:  # pragma: no cover - defensive
                pass
        variable.elements.clear()
        try:
            self.variables.remove(variable)
        except ValueError:  # pragma: no cover - defensive
            pass
        self._dirty = True

    def update_variable_weight(self, variable: Variable, weight: float) -> None:
        """Change the sharing weight (0 suspends the activity)."""
        if weight < 0:
            raise ValueError("variable weight must be >= 0")
        variable.weight = float(weight)
        self._dirty = True

    def update_variable_bound(self, variable: Variable,
                              bound: Optional[float]) -> None:
        """Change the rate bound of a variable."""
        if bound is not None and bound < 0:
            raise ValueError("variable bound must be >= 0 or None")
        variable.bound = None if bound is None else float(bound)
        self._dirty = True

    def update_constraint_capacity(self, constraint: Constraint,
                                   capacity: float) -> None:
        """Change a resource capacity (availability trace event, failure)."""
        if capacity < 0:
            raise ValueError("constraint capacity must be >= 0")
        constraint.capacity = float(capacity)
        self._dirty = True

    # -- solving -----------------------------------------------------------------
    def solve(self) -> None:
        """Assign a max-min fair value to every variable.

        The algorithm is progressive filling on the *normalised* rates
        ``x_i / w_i``.  At every round we compute, for every unsaturated
        constraint, the level at which it would saturate if all its
        still-active variables grew proportionally to their weights, take
        the minimum over constraints and over individual variable bounds,
        freeze the limiting variables at that level and loop.
        """
        active: List[Variable] = []
        for var in self.variables:
            if var.weight <= EPSILON or not var.elements:
                # Suspended variables get no capacity.  Variables crossing
                # no constraint are only limited by their bound.
                if var.weight <= EPSILON:
                    var.value = 0.0
                else:
                    var.value = var.bound if var.bound is not None else math.inf
            else:
                var.value = 0.0
                active.append(var)

        remaining: Dict[int, float] = {
            c.id: c.capacity for c in self.constraints
        }
        unassigned = set(id(v) for v in active)

        # Guard: at most one round per variable (each round freezes >= 1 var).
        for _round in range(len(active) + 1):
            if not unassigned:
                break

            # 1. candidate level from each constraint
            best_level = math.inf
            best_constraint: Optional[Constraint] = None
            for cns in self.constraints:
                level = self._constraint_level(cns, remaining[cns.id],
                                               unassigned)
                if level is not None and level < best_level - EPSILON:
                    best_level = level
                    best_constraint = cns

            # 2. candidate level from each still-unassigned bounded variable
            best_bound_var: Optional[Variable] = None
            for var in active:
                if id(var) not in unassigned or var.bound is None:
                    continue
                level = var.bound / var.weight
                if level < best_level - EPSILON:
                    best_level = level
                    best_constraint = None
                    best_bound_var = var

            if best_level is math.inf:
                # No constraint limits the remaining variables: they are only
                # limited by their bounds (handled above) or unbounded.
                for var in active:
                    if id(var) in unassigned:
                        var.value = (var.bound if var.bound is not None
                                     else math.inf)
                        unassigned.discard(id(var))
                break

            if best_bound_var is not None:
                frozen = [best_bound_var]
            else:
                assert best_constraint is not None
                frozen = [v for v in best_constraint.variables
                          if id(v) in unassigned]

            for var in frozen:
                value = best_level * var.weight
                if var.bound is not None:
                    value = min(value, var.bound)
                var.value = value
                unassigned.discard(id(var))
                # subtract consumption from every shared constraint crossed
                for elem in var.elements:
                    if elem.constraint.shared:
                        remaining[elem.constraint.id] = max(
                            0.0,
                            remaining[elem.constraint.id] - elem.usage * value,
                        )

        self._dirty = False

    def _constraint_level(self, cns: Constraint, remaining: float,
                          unassigned) -> Optional[float]:
        """Saturation level of ``cns`` for its still-unassigned variables.

        Returns ``None`` when no unassigned variable crosses the constraint.
        """
        if cns.shared:
            denom = 0.0
            found = False
            for elem in cns.elements:
                if id(elem.variable) in unassigned:
                    denom += elem.usage * elem.variable.weight
                    found = True
            if not found or denom <= EPSILON:
                return None
            return max(0.0, remaining) / denom
        # Fat-pipe: each variable is individually limited to capacity/usage,
        # i.e. level = capacity / (usage * weight); the constraint behaves as
        # a per-variable bound, so the level is the smallest of those.
        best = None
        for elem in cns.elements:
            if id(elem.variable) in unassigned and elem.usage > EPSILON:
                level = cns.capacity / (elem.usage * elem.variable.weight)
                if best is None or level < best:
                    best = level
        return best

    # -- validation helpers -------------------------------------------------------
    def check_feasible(self, tol: float = 1e-6) -> bool:
        """Return True when the solved values violate no constraint.

        Intended for tests and debugging; ``solve()`` must have been called.
        """
        for cns in self.constraints:
            usage = cns.usage_total()
            if usage > cns.capacity * (1.0 + tol) + tol:
                return False
        for var in self.variables:
            if var.bound is not None and var.value > var.bound * (1 + tol) + tol:
                return False
            if var.value < -tol:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MaxMinSystem(nvars={len(self.variables)}, "
                f"ncons={len(self.constraints)})")
