"""Linear MaxMin (LMM) solver — the resource-sharing core of SURF.

The paper states the unifying model:

    *Consider a set of resources R and a set of "tasks" T; each task is
    defined as the subset of R it uses.  SURF uses the unifying MaxMin
    Fairness model: allocate as much capacity to all tasks in a way that
    maximizes the minimum capacity allocation over all tasks.*

This module implements that model as a *linear max-min* system, following
the structure of SimGrid's ``lmm`` solver:

* a :class:`Constraint` represents one resource (a CPU, a network link) with
  a finite capacity;
* a :class:`Variable` represents one activity (a computation, a TCP flow)
  with a *sharing weight* (priority) and an optional *rate bound*;
* an *element* links a variable to a constraint with a usage coefficient
  (how much of the resource one unit of the variable's rate consumes).

Solving the system assigns to every variable ``i`` a rate ``x_i`` such that

* for every shared constraint ``c``:  ``sum_i usage(i, c) * x_i <= C_c``;
* for every non-shared ("fat-pipe") constraint ``c``:
  ``max_i usage(i, c) * x_i <= C_c``;
* for every bounded variable:  ``x_i <= bound_i``;
* the allocation is weighted-max-min fair: the rate vector
  ``(x_i / w_i)`` sorted increasingly is lexicographically maximal.

The solver uses the classic *progressive filling* (a.k.a. water-filling)
algorithm: repeatedly find the bottleneck — the constraint or bound that
limits the common normalised rate the most — freeze the variables it
saturates at that level, subtract their consumption from every other
constraint, and continue with the rest.

Selective ("lazy") updates
--------------------------

The engine re-solves the system after every simulated event, but a single
event (an action completing, a capacity trace firing, a priority change)
only perturbs the resources it touches.  The system therefore tracks the
set of *modified constraints*; :meth:`MaxMinSystem.solve`

* returns immediately when nothing was modified since the last solve;
* otherwise re-runs progressive filling only on the connected component(s)
  of the constraint/variable graph reachable from the modified constraints
  (zero-weight variables do not propagate contention, so they do not merge
  components);
* returns the list of variables whose value actually changed, so the
  models can recompute completion dates for those actions alone.

Variables of untouched components keep their previous values, which is
exactly what a full solve would assign them: in max-min progressive
filling, disjoint components never interact.

Incremental progressive filling
-------------------------------

Inside one (dirty) component, the naive filling rescans every element of
every constraint at every round — O(rounds × constraints × elements),
quadratic-plus on dense components (many flows sharing one bottleneck
link, the master/worker saturation shape).  :meth:`_solve_subsystem`
instead keeps running per-constraint aggregates and a candidate heap, for
a total of O(E log C) work per sub-solve:

* every shared constraint carries a running ``remaining`` capacity and a
  running ``sum(usage × weight)`` over its still-unassigned variables,
  both updated in O(crossed constraints) when a variable freezes;
* every fat-pipe constraint carries a lazy-deletion min-heap of its
  (static) per-element saturation levels;
* candidate saturation levels live in one version-stamped lazy-deletion
  heap (the same invalidation trick :class:`~repro.surf.model.FluidModel`
  uses for its completion-event heap): mutating a constraint bumps its
  version and pushes a fresh entry, stale entries are dropped when they
  surface;
* bounded variables sit in the same heap through static ``bound/weight``
  entries;
* membership of the shrinking "still unassigned" set is a per-variable
  round-stamp integer compare, not an ``id()``-hash set.

Tie-breaking is preserved exactly: heap entries order equal levels by
*scan rank* (constraints in creation order first, then bounds in variable
creation order) — the order the reference rescanning loop visits them —
and before a winner is crowned, every candidate within the reference
EPSILON slack of it is re-ranked with the reference acceptance rule on
exactly recomputed levels.  A shared constraint's running sum is used only
to *order* the heap; the level that actually freezes variables is always
recomputed with the reference summation (fresh pass over the unassigned
elements, in element order), so the assigned values are bit-identical to
the reference algorithm whenever the same bottleneck is selected — which
is always, except for adversarial systems holding *distinct* saturation
levels less than ``2 × EPSILON`` apart (continuous inputs never do).

The pre-existing rescanning algorithm is preserved verbatim as
:meth:`solve_reference` — the executable specification the equivalence
test-suite compares the incremental solver against.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["MaxMinSystem", "Variable", "Constraint", "Element"]

#: Numerical tolerance used throughout the solver.
EPSILON = 1e-9

#: Candidate-heap entry kinds (index 4 of an entry tuple).
_SHARED, _FATPIPE, _BOUND = 0, 1, 2


class Element:
    """One (variable, constraint) incidence with its usage coefficient."""

    __slots__ = ("variable", "constraint", "usage", "_cpos")

    def __init__(self, variable: "Variable", constraint: "Constraint",
                 usage: float) -> None:
        self.variable = variable
        self.constraint = constraint
        self.usage = usage
        # Index of this element inside ``constraint.elements`` so removal is
        # a swap-pop instead of a linear scan.
        self._cpos = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Element(var={self.variable.id}, cns={self.constraint.id}, "
                f"usage={self.usage})")


class Variable:
    """An activity competing for resources.

    Parameters
    ----------
    weight:
        Sharing weight (SimGrid calls it the *priority*).  A weight of zero
        means the activity is suspended and receives no capacity at all.
        Larger weights receive proportionally larger shares.
    bound:
        Optional upper bound on the rate (e.g. the TCP window bound
        ``W / RTT`` applied by the network model).  ``None`` means unbounded.
    data:
        Opaque back-pointer for the caller (usually the owning Action).
    """

    __slots__ = ("id", "weight", "bound", "value", "elements", "data",
                 "_stamp")

    def __init__(self, vid: int, weight: float = 1.0,
                 bound: Optional[float] = None, data=None) -> None:
        if weight < 0:
            raise ValueError("variable weight must be >= 0")
        if bound is not None and bound < 0:
            raise ValueError("variable bound must be >= 0 or None")
        self.id = vid
        self.weight = float(weight)
        self.bound = None if bound is None else float(bound)
        self.value = 0.0
        self.elements: List[Element] = []
        self.data = data
        # Round stamp: equals the owning system's solve token while the
        # variable is still unassigned inside a sub-solve (cheaper than an
        # ``id()``-hash membership set on the hot path).
        self._stamp = 0

    # -- introspection helpers -------------------------------------------------
    @property
    def constraints(self) -> List["Constraint"]:
        """Constraints this variable crosses."""
        return [e.constraint for e in self.elements]

    def usage_of(self, constraint: "Constraint") -> float:
        """Total usage coefficient of this variable on ``constraint``."""
        return sum(e.usage for e in self.elements if e.constraint is constraint)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Variable(id={self.id}, weight={self.weight}, "
                f"bound={self.bound}, value={self.value:.6g})")


class Constraint:
    """A resource with finite capacity shared by several variables.

    Parameters
    ----------
    capacity:
        The resource capacity (flop/s for a CPU, byte/s for a link).
    shared:
        If ``True`` (default) the capacity is *shared*: the sum of the
        usages may not exceed the capacity (a regular link or CPU).  If
        ``False`` the resource is a *fat pipe*: each crossing variable may
        individually use up to the capacity (used to model backbone links
        or switches that are never the bottleneck).
    data:
        Opaque back-pointer (usually the owning Resource).
    """

    __slots__ = ("id", "capacity", "shared", "elements", "data",
                 "_rem", "_denom", "_live", "_ver", "_rank", "_fat")

    def __init__(self, cid: int, capacity: float, shared: bool = True,
                 data=None) -> None:
        if capacity < 0:
            raise ValueError("constraint capacity must be >= 0")
        self.id = cid
        self.capacity = float(capacity)
        self.shared = bool(shared)
        self.elements: List[Element] = []
        self.data = data
        # Working state of the incremental progressive filling, valid only
        # inside one sub-solve (see _solve_subsystem):
        self._rem = 0.0      # running remaining capacity (shared only)
        self._denom = 0.0    # running sum(usage * weight) over unassigned
        self._live = 0       # count of still-unassigned crossing variables
        self._ver = 0        # version stamp invalidating heap entries
        self._rank = 0       # scan rank (position in the component's order)
        self._fat: List[Tuple[float, int, "Variable"]] = []  # fat-pipe levels

    @property
    def variables(self) -> List[Variable]:
        """Variables crossing this constraint."""
        return [e.variable for e in self.elements]

    def usage_total(self) -> float:
        """Current total consumption given the solved variable values."""
        if self.shared:
            return sum(e.usage * e.variable.value for e in self.elements)
        if not self.elements:
            return 0.0
        return max(e.usage * e.variable.value for e in self.elements)

    # -- element bookkeeping (O(1) attach/detach) ------------------------------
    def _attach(self, elem: Element) -> None:
        elem._cpos = len(self.elements)
        self.elements.append(elem)

    def _detach(self, elem: Element) -> None:
        pos = elem._cpos
        last = self.elements[-1]
        self.elements[pos] = last
        last._cpos = pos
        self.elements.pop()
        elem._cpos = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Constraint(id={self.id}, capacity={self.capacity}, "
                f"shared={self.shared}, nvars={len(self.elements)})")


class MaxMinSystem:
    """A complete linear max-min system.

    Typical usage::

        system = MaxMinSystem()
        link = system.new_constraint(capacity=1e9)           # 1 Gb/s link
        flow1 = system.new_variable(weight=1.0)
        flow2 = system.new_variable(weight=1.0)
        system.expand(link, flow1, 1.0)
        system.expand(link, flow2, 1.0)
        system.solve()
        assert flow1.value == flow2.value == 0.5e9
    """

    def __init__(self, var_ids=None) -> None:
        self._vars: Dict[int, Variable] = {}
        self.constraints: List[Constraint] = []
        self._next_var_id = 0
        self._next_cns_id = 0
        # Optional shared variable-id allocator (an ``itertools.count``):
        # the sharded kernel hands the same allocator to every shard's
        # system so variable creation order — and therefore every
        # id-based tie-break — is global, exactly like a single flat
        # system would number them.
        self._var_ids = var_ids
        # Optional ParallelSolveExecutor (see repro.surf.shard); when set,
        # solve() hands batches of independent components to it instead of
        # sub-solving them inline.
        self.executor = None
        # Constraints whose incidence, capacity or crossing-variable
        # weights/bounds changed since the last solve.
        self._modified: Set[Constraint] = set()
        # Variables with no element whose value needs a (re)computation.
        self._detached_dirty: Set[Variable] = set()
        # Round stamp handed to the variables of the running sub-solve and
        # tie-break sequence for candidate-heap entries.
        self._token = 0
        self._seq = 0
        # Observability counters (read by benchmarks and tests).
        self.solve_calls = 0          # solve() invocations, incl. skipped
        self.solve_skipped = 0        # clean early-returns
        self.constraints_solved = 0   # constraints visited by sub-solves
        self.variables_solved = 0     # variables re-assigned by sub-solves
        self.elements_visited = 0     # (var, cns) incidences touched solving
        self.heap_pops = 0            # candidate-heap pops (incl. stale)

    @property
    def variables(self) -> List[Variable]:
        """Live variables, in creation order."""
        return list(self._vars.values())

    @property
    def _dirty(self) -> bool:
        """True when the next solve() has work to do (kept for introspection)."""
        return bool(self._modified or self._detached_dirty)

    # -- construction -----------------------------------------------------------
    def new_variable(self, weight: float = 1.0,
                     bound: Optional[float] = None, data=None) -> Variable:
        """Create and register a new variable."""
        if self._var_ids is not None:
            vid = next(self._var_ids)
        else:
            vid = self._next_var_id
        self._next_var_id = vid + 1
        var = Variable(vid, weight, bound, data)
        self._vars[vid] = var
        self._detached_dirty.add(var)
        return var

    def new_constraint(self, capacity: float, shared: bool = True,
                       data=None, cid: Optional[int] = None) -> Constraint:
        """Create and register a new constraint.

        ``cid`` optionally pins the constraint id.  Ids drive every
        tie-break in the solver, so callers that materialize resources in
        a non-deterministic or on-demand order (the lazy platform
        realization, the sharded kernel) pass the resource's declaration
        index here to keep solved values independent of creation order.
        """
        if cid is None:
            cid = self._next_cns_id
        if cid + 1 > self._next_cns_id:
            self._next_cns_id = cid + 1
        cns = Constraint(cid, capacity, shared, data)
        self.constraints.append(cns)
        return cns

    def expand(self, constraint: Constraint, variable: Variable,
               usage: float = 1.0) -> None:
        """Declare that ``variable`` consumes ``usage`` of ``constraint``.

        Calling :meth:`expand` twice for the same pair accumulates the usage
        (matching SimGrid's ``lmm_expand_add``), which is what a route that
        crosses the same physical link twice needs.
        """
        if usage < 0:
            raise ValueError("usage must be >= 0")
        if usage == 0:
            return
        self._detached_dirty.discard(variable)
        for elem in variable.elements:
            if elem.constraint is constraint:
                elem.usage += usage
                self._modified.add(constraint)
                return
        elem = Element(variable, constraint, usage)
        variable.elements.append(elem)
        constraint._attach(elem)
        self._modified.add(constraint)

    # -- mutation ----------------------------------------------------------------
    def remove_variable(self, variable: Variable) -> None:
        """Remove a variable (the activity completed or was cancelled)."""
        for elem in variable.elements:
            if elem._cpos >= 0:
                elem.constraint._detach(elem)
            self._modified.add(elem.constraint)
        variable.elements.clear()
        self._vars.pop(variable.id, None)
        self._detached_dirty.discard(variable)

    def update_variable_weight(self, variable: Variable, weight: float) -> None:
        """Change the sharing weight (0 suspends the activity)."""
        if weight < 0:
            raise ValueError("variable weight must be >= 0")
        weight = float(weight)
        if weight == variable.weight:
            return
        variable.weight = weight
        self._mark_variable(variable)

    def update_variable_bound(self, variable: Variable,
                              bound: Optional[float]) -> None:
        """Change the rate bound of a variable."""
        if bound is not None and bound < 0:
            raise ValueError("variable bound must be >= 0 or None")
        bound = None if bound is None else float(bound)
        if bound == variable.bound:
            return
        variable.bound = bound
        self._mark_variable(variable)

    def update_constraint_capacity(self, constraint: Constraint,
                                   capacity: float) -> None:
        """Change a resource capacity (availability trace event, failure)."""
        if capacity < 0:
            raise ValueError("constraint capacity must be >= 0")
        capacity = float(capacity)
        if capacity == constraint.capacity:
            return
        constraint.capacity = capacity
        self._modified.add(constraint)

    def _mark_variable(self, variable: Variable) -> None:
        if variable.elements:
            self._modified.update(e.constraint for e in variable.elements)
        elif variable.id in self._vars:
            self._detached_dirty.add(variable)

    # -- solving -----------------------------------------------------------------
    def solve(self, _subsolver=None) -> List[Variable]:
        """Assign a max-min fair value to every variable touched by changes.

        The algorithm is progressive filling on the *normalised* rates
        ``x_i / w_i``.  At every round the bottleneck — the unsaturated
        constraint or variable bound with the smallest saturation level —
        is taken from the candidate heap, the variables it saturates are
        frozen at that level and their consumption is subtracted from the
        running aggregates of every other constraint they cross.

        Only the connected components reachable from modified constraints
        are re-solved; a clean system returns immediately.  Returns the
        variables whose value changed (the callers use it to recompute
        action completion dates selectively).
        """
        changed: List[Variable] = []
        self._solve_into(changed, None, _subsolver)
        return changed

    def solve_grouped(self, _subsolver=None):
        """Like :meth:`solve`, but keeps the component structure visible.

        Returns ``(changed, groups)`` where ``groups`` is a list of
        ``(trigger_cid, start, end)`` triples: the changed variables of
        the component first triggered by modified constraint
        ``trigger_cid`` occupy ``changed[start:end]``.  Entries before
        ``groups[0][1]`` (or all of ``changed`` when ``groups`` is empty)
        are detached variables, ordered by id.

        The sharded kernel uses this to re-merge the per-shard solve
        results into the exact global order a single flat system would
        report: detached variables by id first, then components by
        trigger id — both orderings are global because ids are.
        """
        changed: List[Variable] = []
        groups: List[Tuple[int, int, int]] = []
        self._solve_into(changed, groups, _subsolver)
        return changed, groups

    def _solve_into(self, changed: List[Variable],
                    groups: Optional[List[Tuple[int, int, int]]],
                    _subsolver=None) -> None:
        subsolve = _subsolver if _subsolver is not None else \
            self._solve_subsystem
        self.solve_calls += 1
        if not self._modified and not self._detached_dirty:
            self.solve_skipped += 1
            return

        # Variables crossing no constraint are limited only by their bound.
        # Creation order keeps the changed-variables report — and therefore
        # the completion-event tie-breaking downstream — deterministic.
        if self._detached_dirty:
            for var in sorted(self._detached_dirty, key=lambda v: v.id):
                if var.elements:
                    continue  # got expanded meanwhile; handled below
                if var.weight <= EPSILON:
                    value = 0.0
                else:
                    value = var.bound if var.bound is not None else math.inf
                if value != var.value:
                    var.value = value
                    changed.append(var)
            self._detached_dirty.clear()

        if self._modified:
            # Several events can land between two solves (a burst of new
            # actions, a batch of completions).  Their constraints often
            # belong to *independent* components; solving each component
            # separately keeps progressive filling linear in the component
            # size instead of quadratic in the batch size.
            modified = self._modified
            if len(modified) == 1:
                seeds = list(modified)
            else:
                seeds = sorted(modified, key=lambda c: c.id)
            modified.clear()
            cns_seen: Set[Constraint] = set()
            var_seen: Set[Variable] = set()
            components: List[Tuple[List[Constraint], List[Variable]]] = []
            triggers: List[int] = []
            for seed in seeds:
                if seed in cns_seen:
                    continue
                cnss, variables = self._component(seed, cns_seen, var_seen)
                # Creation order keeps the selective solve's tie-breaking
                # identical to a from-scratch solve of the same component.
                cnss.sort(key=lambda c: c.id)
                variables.sort(key=lambda v: v.id)
                components.append((cnss, variables))
                triggers.append(seed.id)
            boundaries: Optional[List[Tuple[int, int]]] = \
                None if groups is None else []
            executor = self.executor
            if (executor is not None and _subsolver is None
                    and executor.accepts(components)):
                # Independent components solve in parallel workers; the
                # executor reports per-component results in submission
                # order, so ``changed`` is populated exactly like the
                # serial loop below would.
                executor.solve_batch(self, components, changed, boundaries)
            else:
                for cnss, variables in components:
                    start = len(changed)
                    subsolve(cnss, variables, changed)
                    if boundaries is not None:
                        boundaries.append((start, len(changed)))
            if groups is not None:
                for trigger, (start, end) in zip(triggers, boundaries):
                    groups.append((trigger, start, end))

    def _component(self, seed: Constraint, cns_seen: Set[Constraint],
                   var_seen: Set[Variable]):
        """Constraints/variables of the component containing ``seed``.

        ``cns_seen``/``var_seen`` are shared across the components of one
        solve so overlapping traversals are not repeated.  Zero-weight
        variables belong to the component (their value must be reset to 0)
        but do not propagate it: they consume nothing, so the constraints
        on their far side are unaffected.
        """
        cns_seen.add(seed)
        cnss: List[Constraint] = [seed]
        stack: List[Constraint] = [seed]
        variables: List[Variable] = []
        while stack:
            cns = stack.pop()
            for elem in cns.elements:
                var = elem.variable
                if var in var_seen:
                    continue
                var_seen.add(var)
                variables.append(var)
                if var.weight > EPSILON:
                    for other in var.elements:
                        if other.constraint not in cns_seen:
                            cns_seen.add(other.constraint)
                            cnss.append(other.constraint)
                            stack.append(other.constraint)
        return cnss, variables

    # -- incremental progressive filling -----------------------------------------
    def _solve_subsystem(self, cnss: List[Constraint],
                         variables: List[Variable],
                         changed: List[Variable]) -> None:
        """Incremental progressive filling restricted to one component.

        See the module docstring ("Incremental progressive filling") for
        the data structures; :meth:`_solve_subsystem_reference` is the
        rescanning specification this must stay observationally (and, for
        well-separated saturation levels, bit-) identical to.
        """
        self.constraints_solved += len(cnss)
        self.variables_solved += len(variables)
        old_values = [var.value for var in variables]

        self._token += 1
        token = self._token
        active: List[Variable] = []
        for var in variables:
            if var.weight <= EPSILON or not var.elements:
                # Suspended variables get no capacity.  Variables crossing
                # no constraint are only limited by their bound.
                if var.weight <= EPSILON:
                    var.value = 0.0
                else:
                    var.value = var.bound if var.bound is not None else math.inf
            else:
                var.value = 0.0
                var._stamp = token
                active.append(var)

        if active:
            if len(cnss) == 1:
                # The overwhelmingly common shape on large platforms (one
                # CPU, one access link): a dedicated path without the
                # candidate heap, bit-identical to the general algorithm.
                self._solve_single(cnss[0], active, token)
            else:
                self._progressive_filling(cnss, active, token)

        for var, old in zip(variables, old_values):
            if var.value != old:
                changed.append(var)

    def _solve_single(self, cns: Constraint, active: List[Variable],
                      token: int) -> None:
        """Water-filling specialised to a component with one constraint.

        Replicates :meth:`_progressive_filling` — surfacing order by
        ``(level, scan rank)``, lazy exactification of the running shared
        denominator, the near-tie adjudication band, the reference freeze
        rule — without the candidate heap: with a single constraint the
        only candidates are the constraint itself (rank 0) and the bound
        levels of the active variables (ranks 1..n, static), so a sorted
        list with a skip-frozen pointer replaces the heap.  Values are
        bit-identical to the general path: every level that freezes a
        variable is the same reference summation over the same elements
        in the same order.
        """
        elements = cns.elements
        self.elements_visited += len(elements)
        shared = cns.shared
        fat: List[Tuple[float, int, Variable]] = []
        denom = 0.0
        live = 0
        if shared:
            for elem in elements:
                var = elem.variable
                if var._stamp == token:
                    denom += elem.usage * var.weight
                    live += 1
            rem = cns.capacity
        else:
            capacity = cns.capacity
            for elem in elements:
                var = elem.variable
                if var._stamp == token:
                    live += 1
                    if elem.usage > EPSILON:
                        fat.append((capacity / (elem.usage * var.weight),
                                    len(fat), var))
            fat.sort()
            rem = 0.0
        exact = True
        fi = 0
        nfat = len(fat)

        # Bound candidates carry the same scan ranks the heap would use.
        bnds: List[Tuple[float, int, Variable]] = []
        for aidx, var in enumerate(active):
            if var.bound is not None:
                bnds.append((var.bound / var.weight, 1 + aidx, var))
        bnds.sort()
        nb = len(bnds)
        bi = 0

        unassigned = len(active)
        while unassigned:
            while bi < nb and bnds[bi][2]._stamp != token:
                bi += 1
            # The constraint's current candidate level (None: not a
            # candidate).  A shared level computed from the running
            # aggregates is approximate until exactified; fat-pipe levels
            # are static and always exact.
            if shared:
                if live <= 0:
                    clevel = None
                elif not exact and denom <= 0.5 * EPSILON:
                    # Resync after catastrophic cancellation, like the
                    # touched-constraint loop of the general path.
                    self.elements_visited += len(elements)
                    denom = 0.0
                    for elem in elements:
                        var = elem.variable
                        if var._stamp == token:
                            denom += elem.usage * var.weight
                    exact = True
                    clevel = (max(0.0, rem) / denom
                              if denom > EPSILON else None)
                elif exact and denom <= EPSILON:
                    clevel = None
                else:
                    clevel = max(0.0, rem) / denom
            else:
                while fi < nfat and fat[fi][2]._stamp != token:
                    fi += 1
                clevel = fat[fi][0] if fi < nfat else None

            if clevel is None and bi >= nb:
                # Nothing limits the remaining variables.
                for var in active:
                    if var._stamp == token:
                        var.value = (var.bound if var.bound is not None
                                     else math.inf)
                        var._stamp = 0
                break

            if bi < nb:
                b_lvl, b_rank, b_var = bnds[bi]
            else:
                b_lvl = None
            # Surfacing order: (level, rank) — the constraint (rank 0)
            # wins exact ties against any bound entry.
            winner_is_bound = True
            if clevel is not None and (b_lvl is None or clevel <= b_lvl):
                if shared and not exact:
                    # Exactify at surfacing time, like _peek_candidate.
                    self.heap_pops += 1
                    self.elements_visited += len(elements)
                    denom = 0.0
                    for elem in elements:
                        var = elem.variable
                        if var._stamp == token:
                            denom += elem.usage * var.weight
                    exact = True
                    if denom <= EPSILON:
                        continue
                    clevel = max(0.0, rem) / denom
                    winner_is_bound = (b_lvl is not None and clevel > b_lvl)
                else:
                    winner_is_bound = False

            if winner_is_bound:
                w_lvl, w_rank = b_lvl, b_rank
            else:
                w_lvl, w_rank = clevel, 0
            # Near-tie adjudication band (see _progressive_filling).
            limit = w_lvl + 2.0 * EPSILON + 1e-9 * w_lvl
            extras: List[Tuple[float, int, Variable]] = []
            j = bi + 1 if winner_is_bound else bi
            while j < nb and bnds[j][0] < limit:
                if bnds[j][2]._stamp == token:
                    extras.append(bnds[j])
                j += 1
            cns_in_band = False
            if winner_is_bound and clevel is not None:
                if shared and not exact:
                    if clevel < limit:
                        self.heap_pops += 1
                        self.elements_visited += len(elements)
                        denom = 0.0
                        for elem in elements:
                            var = elem.variable
                            if var._stamp == token:
                                denom += elem.usage * var.weight
                        exact = True
                        if denom > EPSILON:
                            clevel = max(0.0, rem) / denom
                            cns_in_band = clevel < limit
                elif clevel < limit:
                    cns_in_band = True
            sel_var: Optional[Variable] = None
            if winner_is_bound:
                sel_var = b_var
            if extras or (winner_is_bound and cns_in_band):
                cands: List[Tuple[float, int, Optional[Variable]]] = []
                if cns_in_band or not winner_is_bound:
                    cands.append((clevel, 0, None))
                if winner_is_bound:
                    cands.append((b_lvl, b_rank, b_var))
                cands.extend(extras)
                cands.sort(key=lambda e: e[1])
                best = math.inf
                sel = cands[0]
                for cand in cands:
                    if cand[0] < best - EPSILON:
                        best = cand[0]
                        sel = cand
                w_lvl = sel[0]
                sel_var = sel[2]

            self.heap_pops += 1
            if sel_var is not None:
                # A bound freezes one variable; maintain the running
                # aggregates like the general path's freeze loop.
                value = w_lvl * sel_var.weight
                if sel_var.bound is not None:
                    value = min(value, sel_var.bound)
                sel_var.value = value
                sel_var._stamp = 0
                unassigned -= 1
                velems = sel_var.elements
                self.elements_visited += len(velems)
                if shared:
                    for elem in velems:
                        rem = max(0.0, rem - elem.usage * value)
                        denom -= elem.usage * sel_var.weight
                    exact = False
                live -= 1
            else:
                # The constraint freezes every remaining variable, in
                # element order, at its (exact) level.
                self.elements_visited += 2 * len(elements)
                for elem in elements:
                    var = elem.variable
                    if var._stamp == token:
                        value = w_lvl * var.weight
                        if var.bound is not None:
                            value = min(value, var.bound)
                        var.value = value
                        var._stamp = 0
                        unassigned -= 1
                break

    def _progressive_filling(self, cnss: List[Constraint],
                             active: List[Variable], token: int) -> None:
        """Heap-driven water-filling over the ``active`` variables."""
        heap: list = []
        push = heapq.heappush

        # Seed the working aggregates and the candidate heap.  The initial
        # levels are exact: the shared denominators are fresh sums over the
        # unassigned elements in element order, like the reference scan.
        for rank, cns in enumerate(cnss):
            cns._ver += 1
            cns._rank = rank
            elements = cns.elements
            self.elements_visited += len(elements)
            if cns.shared:
                denom = 0.0
                live = 0
                for elem in elements:
                    var = elem.variable
                    if var._stamp == token:
                        denom += elem.usage * var.weight
                        live += 1
                cns._rem = cns.capacity
                cns._denom = denom
                cns._live = live
                if live and denom > EPSILON:
                    self._seq += 1
                    push(heap, (max(0.0, cns.capacity) / denom, rank,
                                self._seq, cns._ver, _SHARED, True, cns))
            else:
                # Fat pipe: each element's saturation level is static
                # (capacity, not remaining, caps each variable), so the
                # constraint's candidate is the min of a lazy-deletion heap.
                fat: List[Tuple[float, int, Variable]] = []
                live = 0
                capacity = cns.capacity
                for elem in elements:
                    var = elem.variable
                    if var._stamp == token:
                        live += 1
                        if elem.usage > EPSILON:
                            fat.append((capacity / (elem.usage * var.weight),
                                        len(fat), var))
                heapq.heapify(fat)
                cns._fat = fat
                cns._live = live
                if fat:
                    self._seq += 1
                    push(heap, (fat[0][0], rank, self._seq, cns._ver,
                                _FATPIPE, True, cns))

        num_cns = len(cnss)
        for aidx, var in enumerate(active):
            if var.bound is not None:
                self._seq += 1
                push(heap, (var.bound / var.weight, num_cns + aidx,
                            self._seq, 0, _BOUND, True, var))

        unassigned = len(active)
        while unassigned:
            entry = self._peek_candidate(heap, token)
            if entry is None:
                # No constraint limits the remaining variables: they are
                # only limited by their bounds (handled above) or unbounded.
                for var in active:
                    if var._stamp == token:
                        var.value = (var.bound if var.bound is not None
                                     else math.inf)
                        var._stamp = 0
                break
            heapq.heappop(heap)
            self.heap_pops += 1
            winner = entry

            # Near-tie adjudication: the heap orders equal levels by scan
            # rank already, but candidates whose levels differ by less than
            # the reference EPSILON slack (or by the ulp drift of a running
            # sum) must be re-ranked with the reference acceptance rule —
            # scan order, accept when more than EPSILON better — on their
            # exact levels.  The band is almost always empty.
            limit = winner[0] + 2.0 * EPSILON + 1e-9 * winner[0]
            band = None
            while True:
                nxt = self._peek_candidate(heap, token)
                if nxt is None or nxt[0] >= limit:
                    break
                if band is None:
                    band = [winner]
                band.append(heapq.heappop(heap))
                self.heap_pops += 1
            if band is not None:
                band.sort(key=lambda e: e[1])
                best = math.inf
                for cand in band:
                    if cand[0] < best - EPSILON:
                        best = cand[0]
                        winner = cand
                for cand in band:
                    if cand is not winner:
                        push(heap, cand)

            level = winner[0]
            if winner[4] == _BOUND:
                frozen = (winner[6],)
            else:
                bottleneck = winner[6]
                self.elements_visited += len(bottleneck.elements)
                frozen = [e.variable for e in bottleneck.elements
                          if e.variable._stamp == token]

            # Freeze the saturated variables and maintain the running
            # aggregates of every constraint they cross — O(crossed).
            touched: Dict[int, Constraint] = {}
            for var in frozen:
                value = level * var.weight
                if var.bound is not None:
                    value = min(value, var.bound)
                var.value = value
                var._stamp = 0
                unassigned -= 1
                elements = var.elements
                self.elements_visited += len(elements)
                for elem in elements:
                    cns = elem.constraint
                    if cns.shared:
                        cns._rem = max(0.0, cns._rem - elem.usage * value)
                        cns._denom -= elem.usage * var.weight
                    cns._live -= 1
                    touched[cns.id] = cns

            # One version bump + one refreshed candidate per touched
            # constraint (not per frozen variable crossing it).
            for cns in touched.values():
                cns._ver += 1
                if cns._live <= 0:
                    continue
                if cns.shared:
                    denom = cns._denom
                    exact = False
                    if denom <= 0.5 * EPSILON:
                        # The running sum may cancel catastrophically when
                        # a dominant term is subtracted (fl(big + tiny) -
                        # big == 0) while the exact sum over the remaining
                        # elements would still pass the reference
                        # threshold.  Resync before deciding to drop the
                        # constraint from candidacy.
                        self.elements_visited += len(cns.elements)
                        denom = 0.0
                        for elem in cns.elements:
                            var = elem.variable
                            if var._stamp == token:
                                denom += elem.usage * var.weight
                        cns._denom = denom
                        exact = True
                    # Approximate entries are exactified at pop time, which
                    # applies the reference `denom <= EPSILON` threshold.
                    if denom > EPSILON or (not exact
                                           and denom > 0.5 * EPSILON):
                        self._seq += 1
                        push(heap, (max(0.0, cns._rem) / denom,
                                    cns._rank, self._seq, cns._ver,
                                    _SHARED, exact, cns))
                else:
                    fat = cns._fat
                    while fat and fat[0][2]._stamp != token:
                        heapq.heappop(fat)
                    if fat:
                        self._seq += 1
                        push(heap, (fat[0][0], cns._rank, self._seq,
                                    cns._ver, _FATPIPE, True, cns))

        # The fat-pipe level heaps are per-solve working state; drop them
        # so their Variable references (and, through ``var.data``, the
        # owning actions and payloads) do not outlive the sub-solve.
        for cns in cnss:
            if not cns.shared:
                cns._fat = []

    def _peek_candidate(self, heap: list, token: int):
        """Surface the heap's live minimum, with an *exact* level.

        Drops stale entries (version mismatch, no unassigned variable
        left).  A surfacing shared-constraint entry whose level came from
        the running sum is replaced by one recomputed the way the
        reference scan computes it — a fresh ``sum(usage × weight)`` over
        the still-unassigned elements, in element order — so the level a
        winner freezes variables at is bit-identical to the reference.
        Returns the live entry without popping it, or ``None``.
        """
        pops = 0
        result = None
        while heap:
            entry = heap[0]
            kind = entry[4]
            obj = entry[6]
            if kind == _BOUND:
                if obj._stamp == token:
                    result = entry
                    break
                heapq.heappop(heap)
                pops += 1
                continue
            if entry[3] != obj._ver or obj._live <= 0:
                heapq.heappop(heap)
                pops += 1
                continue
            if entry[5]:          # already exact
                result = entry
                break
            # Stale-approximate shared entry: recompute exactly.
            heapq.heappop(heap)
            pops += 1
            elements = obj.elements
            self.elements_visited += len(elements)
            denom = 0.0
            found = False
            for elem in elements:
                var = elem.variable
                if var._stamp == token:
                    denom += elem.usage * var.weight
                    found = True
            obj._ver += 1
            if not found or denom <= EPSILON:
                continue
            obj._denom = denom
            self._seq += 1
            heapq.heappush(heap, (max(0.0, obj._rem) / denom, entry[1],
                                  self._seq, obj._ver, _SHARED, True, obj))
        self.heap_pops += pops
        return result

    # -- reference algorithm (kept for the equivalence test-suite) ---------------
    def solve_reference(self) -> List[Variable]:
        """Force a from-scratch solve with the reference rescanning filling.

        The pre-incremental progressive filling (a full rescan of every
        constraint's elements at every round) is preserved verbatim as the
        executable specification of the solver; only tests should call it.
        """
        self._modified.update(c for c in self.constraints if c.elements)
        self._detached_dirty.update(v for v in self._vars.values()
                                    if not v.elements)
        return self.solve(_subsolver=self._solve_subsystem_reference)

    def _solve_subsystem_reference(self, cnss: List[Constraint],
                                   variables: List[Variable],
                                   changed: List[Variable]) -> None:
        """Reference progressive filling: per-round full rescans."""
        self.constraints_solved += len(cnss)
        self.variables_solved += len(variables)
        old_values = [var.value for var in variables]

        active: List[Variable] = []
        for var in variables:
            if var.weight <= EPSILON or not var.elements:
                if var.weight <= EPSILON:
                    var.value = 0.0
                else:
                    var.value = var.bound if var.bound is not None else math.inf
            else:
                var.value = 0.0
                active.append(var)

        remaining: Dict[int, float] = {c.id: c.capacity for c in cnss}
        unassigned = set(id(v) for v in active)

        # Guard: at most one round per variable (each round freezes >= 1 var).
        for _round in range(len(active) + 1):
            if not unassigned:
                break

            # 1. candidate level from each constraint
            best_level = math.inf
            best_constraint: Optional[Constraint] = None
            for cns in cnss:
                level = self._constraint_level(cns, remaining[cns.id],
                                               unassigned)
                if level is not None and level < best_level - EPSILON:
                    best_level = level
                    best_constraint = cns

            # 2. candidate level from each still-unassigned bounded variable
            best_bound_var: Optional[Variable] = None
            for var in active:
                if id(var) not in unassigned or var.bound is None:
                    continue
                level = var.bound / var.weight
                if level < best_level - EPSILON:
                    best_level = level
                    best_constraint = None
                    best_bound_var = var

            if best_level is math.inf:
                # No constraint limits the remaining variables: they are only
                # limited by their bounds (handled above) or unbounded.
                for var in active:
                    if id(var) in unassigned:
                        var.value = (var.bound if var.bound is not None
                                     else math.inf)
                        unassigned.discard(id(var))
                break

            if best_bound_var is not None:
                frozen = [best_bound_var]
            else:
                assert best_constraint is not None
                frozen = [v for v in best_constraint.variables
                          if id(v) in unassigned]

            for var in frozen:
                value = best_level * var.weight
                if var.bound is not None:
                    value = min(value, var.bound)
                var.value = value
                unassigned.discard(id(var))
                self.elements_visited += len(var.elements)
                # subtract consumption from every shared constraint crossed
                for elem in var.elements:
                    if elem.constraint.shared:
                        remaining[elem.constraint.id] = max(
                            0.0,
                            remaining[elem.constraint.id] - elem.usage * value,
                        )

        for var, old in zip(variables, old_values):
            if var.value != old:
                changed.append(var)

    def _constraint_level(self, cns: Constraint, remaining: float,
                          unassigned) -> Optional[float]:
        """Saturation level of ``cns`` for its still-unassigned variables.

        Returns ``None`` when no unassigned variable crosses the constraint.
        """
        self.elements_visited += len(cns.elements)
        if cns.shared:
            denom = 0.0
            found = False
            for elem in cns.elements:
                if id(elem.variable) in unassigned:
                    denom += elem.usage * elem.variable.weight
                    found = True
            if not found or denom <= EPSILON:
                return None
            return max(0.0, remaining) / denom
        # Fat-pipe: each variable is individually limited to capacity/usage,
        # i.e. level = capacity / (usage * weight); the constraint behaves as
        # a per-variable bound, so the level is the smallest of those.
        best = None
        for elem in cns.elements:
            if id(elem.variable) in unassigned and elem.usage > EPSILON:
                level = cns.capacity / (elem.usage * elem.variable.weight)
                if best is None or level < best:
                    best = level
        return best

    # -- validation helpers -------------------------------------------------------
    def solve_all(self) -> None:
        """Force a from-scratch re-solve of the whole system.

        Used by tests to compare the selective path against the reference
        progressive-filling result.
        """
        self._modified.update(c for c in self.constraints if c.elements)
        self._detached_dirty.update(v for v in self._vars.values()
                                    if not v.elements)
        self.solve()

    def check_feasible(self, tol: float = 1e-6) -> bool:
        """Return True when the solved values violate no constraint.

        Intended for tests and debugging; ``solve()`` must have been called.
        """
        for cns in self.constraints:
            usage = cns.usage_total()
            if usage > cns.capacity * (1.0 + tol) + tol:
                return False
        for var in self._vars.values():
            if var.bound is not None and var.value > var.bound * (1 + tol) + tol:
                return False
            if var.value < -tol:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MaxMinSystem(nvars={len(self._vars)}, "
                f"ncons={len(self.constraints)})")
