"""Linear MaxMin (LMM) solver — the resource-sharing core of SURF.

The paper states the unifying model:

    *Consider a set of resources R and a set of "tasks" T; each task is
    defined as the subset of R it uses.  SURF uses the unifying MaxMin
    Fairness model: allocate as much capacity to all tasks in a way that
    maximizes the minimum capacity allocation over all tasks.*

This module implements that model as a *linear max-min* system, following
the structure of SimGrid's ``lmm`` solver:

* a :class:`Constraint` represents one resource (a CPU, a network link) with
  a finite capacity;
* a :class:`Variable` represents one activity (a computation, a TCP flow)
  with a *sharing weight* (priority) and an optional *rate bound*;
* an *element* links a variable to a constraint with a usage coefficient
  (how much of the resource one unit of the variable's rate consumes).

Solving the system assigns to every variable ``i`` a rate ``x_i`` such that

* for every shared constraint ``c``:  ``sum_i usage(i, c) * x_i <= C_c``;
* for every non-shared ("fat-pipe") constraint ``c``:
  ``max_i usage(i, c) * x_i <= C_c``;
* for every bounded variable:  ``x_i <= bound_i``;
* the allocation is weighted-max-min fair: the rate vector
  ``(x_i / w_i)`` sorted increasingly is lexicographically maximal.

The solver uses the classic *progressive filling* (a.k.a. water-filling)
algorithm: repeatedly find the bottleneck — the constraint or bound that
limits the common normalised rate the most — freeze the variables it
saturates at that level, subtract their consumption from every other
constraint, and continue with the rest.

Selective ("lazy") updates
--------------------------

The engine re-solves the system after every simulated event, but a single
event (an action completing, a capacity trace firing, a priority change)
only perturbs the resources it touches.  The system therefore tracks the
set of *modified constraints*; :meth:`MaxMinSystem.solve`

* returns immediately when nothing was modified since the last solve;
* otherwise re-runs progressive filling only on the connected component(s)
  of the constraint/variable graph reachable from the modified constraints
  (zero-weight variables do not propagate contention, so they do not merge
  components);
* returns the list of variables whose value actually changed, so the
  models can recompute completion dates for those actions alone.

Variables of untouched components keep their previous values, which is
exactly what a full solve would assign them: in max-min progressive
filling, disjoint components never interact.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set

__all__ = ["MaxMinSystem", "Variable", "Constraint", "Element"]

#: Numerical tolerance used throughout the solver.
EPSILON = 1e-9


class Element:
    """One (variable, constraint) incidence with its usage coefficient."""

    __slots__ = ("variable", "constraint", "usage", "_cpos")

    def __init__(self, variable: "Variable", constraint: "Constraint",
                 usage: float) -> None:
        self.variable = variable
        self.constraint = constraint
        self.usage = usage
        # Index of this element inside ``constraint.elements`` so removal is
        # a swap-pop instead of a linear scan.
        self._cpos = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Element(var={self.variable.id}, cns={self.constraint.id}, "
                f"usage={self.usage})")


class Variable:
    """An activity competing for resources.

    Parameters
    ----------
    weight:
        Sharing weight (SimGrid calls it the *priority*).  A weight of zero
        means the activity is suspended and receives no capacity at all.
        Larger weights receive proportionally larger shares.
    bound:
        Optional upper bound on the rate (e.g. the TCP window bound
        ``W / RTT`` applied by the network model).  ``None`` means unbounded.
    data:
        Opaque back-pointer for the caller (usually the owning Action).
    """

    __slots__ = ("id", "weight", "bound", "value", "elements", "data")

    def __init__(self, vid: int, weight: float = 1.0,
                 bound: Optional[float] = None, data=None) -> None:
        if weight < 0:
            raise ValueError("variable weight must be >= 0")
        if bound is not None and bound < 0:
            raise ValueError("variable bound must be >= 0 or None")
        self.id = vid
        self.weight = float(weight)
        self.bound = None if bound is None else float(bound)
        self.value = 0.0
        self.elements: List[Element] = []
        self.data = data

    # -- introspection helpers -------------------------------------------------
    @property
    def constraints(self) -> List["Constraint"]:
        """Constraints this variable crosses."""
        return [e.constraint for e in self.elements]

    def usage_of(self, constraint: "Constraint") -> float:
        """Total usage coefficient of this variable on ``constraint``."""
        return sum(e.usage for e in self.elements if e.constraint is constraint)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Variable(id={self.id}, weight={self.weight}, "
                f"bound={self.bound}, value={self.value:.6g})")


class Constraint:
    """A resource with finite capacity shared by several variables.

    Parameters
    ----------
    capacity:
        The resource capacity (flop/s for a CPU, byte/s for a link).
    shared:
        If ``True`` (default) the capacity is *shared*: the sum of the
        usages may not exceed the capacity (a regular link or CPU).  If
        ``False`` the resource is a *fat pipe*: each crossing variable may
        individually use up to the capacity (used to model backbone links
        or switches that are never the bottleneck).
    data:
        Opaque back-pointer (usually the owning Resource).
    """

    __slots__ = ("id", "capacity", "shared", "elements", "data")

    def __init__(self, cid: int, capacity: float, shared: bool = True,
                 data=None) -> None:
        if capacity < 0:
            raise ValueError("constraint capacity must be >= 0")
        self.id = cid
        self.capacity = float(capacity)
        self.shared = bool(shared)
        self.elements: List[Element] = []
        self.data = data

    @property
    def variables(self) -> List[Variable]:
        """Variables crossing this constraint."""
        return [e.variable for e in self.elements]

    def usage_total(self) -> float:
        """Current total consumption given the solved variable values."""
        if self.shared:
            return sum(e.usage * e.variable.value for e in self.elements)
        if not self.elements:
            return 0.0
        return max(e.usage * e.variable.value for e in self.elements)

    # -- element bookkeeping (O(1) attach/detach) ------------------------------
    def _attach(self, elem: Element) -> None:
        elem._cpos = len(self.elements)
        self.elements.append(elem)

    def _detach(self, elem: Element) -> None:
        pos = elem._cpos
        last = self.elements[-1]
        self.elements[pos] = last
        last._cpos = pos
        self.elements.pop()
        elem._cpos = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Constraint(id={self.id}, capacity={self.capacity}, "
                f"shared={self.shared}, nvars={len(self.elements)})")


class MaxMinSystem:
    """A complete linear max-min system.

    Typical usage::

        system = MaxMinSystem()
        link = system.new_constraint(capacity=1e9)           # 1 Gb/s link
        flow1 = system.new_variable(weight=1.0)
        flow2 = system.new_variable(weight=1.0)
        system.expand(link, flow1, 1.0)
        system.expand(link, flow2, 1.0)
        system.solve()
        assert flow1.value == flow2.value == 0.5e9
    """

    def __init__(self) -> None:
        self._vars: Dict[int, Variable] = {}
        self.constraints: List[Constraint] = []
        self._next_var_id = 0
        self._next_cns_id = 0
        # Constraints whose incidence, capacity or crossing-variable
        # weights/bounds changed since the last solve.
        self._modified: Set[Constraint] = set()
        # Variables with no element whose value needs a (re)computation.
        self._detached_dirty: Set[Variable] = set()
        # Observability counters (read by benchmarks and tests).
        self.solve_calls = 0          # solve() invocations, incl. skipped
        self.solve_skipped = 0        # clean early-returns
        self.constraints_solved = 0   # constraints visited by sub-solves
        self.variables_solved = 0     # variables re-assigned by sub-solves

    @property
    def variables(self) -> List[Variable]:
        """Live variables, in creation order."""
        return list(self._vars.values())

    @property
    def _dirty(self) -> bool:
        """True when the next solve() has work to do (kept for introspection)."""
        return bool(self._modified or self._detached_dirty)

    # -- construction -----------------------------------------------------------
    def new_variable(self, weight: float = 1.0,
                     bound: Optional[float] = None, data=None) -> Variable:
        """Create and register a new variable."""
        var = Variable(self._next_var_id, weight, bound, data)
        self._next_var_id += 1
        self._vars[var.id] = var
        self._detached_dirty.add(var)
        return var

    def new_constraint(self, capacity: float, shared: bool = True,
                       data=None) -> Constraint:
        """Create and register a new constraint."""
        cns = Constraint(self._next_cns_id, capacity, shared, data)
        self._next_cns_id += 1
        self.constraints.append(cns)
        return cns

    def expand(self, constraint: Constraint, variable: Variable,
               usage: float = 1.0) -> None:
        """Declare that ``variable`` consumes ``usage`` of ``constraint``.

        Calling :meth:`expand` twice for the same pair accumulates the usage
        (matching SimGrid's ``lmm_expand_add``), which is what a route that
        crosses the same physical link twice needs.
        """
        if usage < 0:
            raise ValueError("usage must be >= 0")
        if usage == 0:
            return
        self._detached_dirty.discard(variable)
        for elem in variable.elements:
            if elem.constraint is constraint:
                elem.usage += usage
                self._modified.add(constraint)
                return
        elem = Element(variable, constraint, usage)
        variable.elements.append(elem)
        constraint._attach(elem)
        self._modified.add(constraint)

    # -- mutation ----------------------------------------------------------------
    def remove_variable(self, variable: Variable) -> None:
        """Remove a variable (the activity completed or was cancelled)."""
        for elem in variable.elements:
            if elem._cpos >= 0:
                elem.constraint._detach(elem)
            self._modified.add(elem.constraint)
        variable.elements.clear()
        self._vars.pop(variable.id, None)
        self._detached_dirty.discard(variable)

    def update_variable_weight(self, variable: Variable, weight: float) -> None:
        """Change the sharing weight (0 suspends the activity)."""
        if weight < 0:
            raise ValueError("variable weight must be >= 0")
        weight = float(weight)
        if weight == variable.weight:
            return
        variable.weight = weight
        self._mark_variable(variable)

    def update_variable_bound(self, variable: Variable,
                              bound: Optional[float]) -> None:
        """Change the rate bound of a variable."""
        if bound is not None and bound < 0:
            raise ValueError("variable bound must be >= 0 or None")
        bound = None if bound is None else float(bound)
        if bound == variable.bound:
            return
        variable.bound = bound
        self._mark_variable(variable)

    def update_constraint_capacity(self, constraint: Constraint,
                                   capacity: float) -> None:
        """Change a resource capacity (availability trace event, failure)."""
        if capacity < 0:
            raise ValueError("constraint capacity must be >= 0")
        capacity = float(capacity)
        if capacity == constraint.capacity:
            return
        constraint.capacity = capacity
        self._modified.add(constraint)

    def _mark_variable(self, variable: Variable) -> None:
        if variable.elements:
            self._modified.update(e.constraint for e in variable.elements)
        elif variable.id in self._vars:
            self._detached_dirty.add(variable)

    # -- solving -----------------------------------------------------------------
    def solve(self) -> List[Variable]:
        """Assign a max-min fair value to every variable touched by changes.

        The algorithm is progressive filling on the *normalised* rates
        ``x_i / w_i``.  At every round we compute, for every unsaturated
        constraint, the level at which it would saturate if all its
        still-active variables grew proportionally to their weights, take
        the minimum over constraints and over individual variable bounds,
        freeze the limiting variables at that level and loop.

        Only the connected components reachable from modified constraints
        are re-solved; a clean system returns immediately.  Returns the
        variables whose value changed (the callers use it to recompute
        action completion dates selectively).
        """
        self.solve_calls += 1
        if not self._modified and not self._detached_dirty:
            self.solve_skipped += 1
            return []

        changed: List[Variable] = []

        # Variables crossing no constraint are limited only by their bound.
        # Creation order keeps the changed-variables report — and therefore
        # the completion-event tie-breaking downstream — deterministic.
        if self._detached_dirty:
            for var in sorted(self._detached_dirty, key=lambda v: v.id):
                if var.elements:
                    continue  # got expanded meanwhile; handled below
                if var.weight <= EPSILON:
                    value = 0.0
                else:
                    value = var.bound if var.bound is not None else math.inf
                if value != var.value:
                    var.value = value
                    changed.append(var)
            self._detached_dirty.clear()

        if self._modified:
            # Several events can land between two solves (a burst of new
            # actions, a batch of completions).  Their constraints often
            # belong to *independent* components; solving each component
            # separately keeps progressive filling linear in the component
            # size instead of quadratic in the batch size.
            seeds = sorted(self._modified, key=lambda c: c.id)
            self._modified.clear()
            cns_seen: Set[Constraint] = set()
            var_seen: Set[Variable] = set()
            for seed in seeds:
                if seed in cns_seen:
                    continue
                cnss, variables = self._component(seed, cns_seen, var_seen)
                # Creation order keeps the selective solve's tie-breaking
                # identical to a from-scratch solve of the same component.
                cnss.sort(key=lambda c: c.id)
                variables.sort(key=lambda v: v.id)
                self._solve_subsystem(cnss, variables, changed)
        return changed

    def _component(self, seed: Constraint, cns_seen: Set[Constraint],
                   var_seen: Set[Variable]):
        """Constraints/variables of the component containing ``seed``.

        ``cns_seen``/``var_seen`` are shared across the components of one
        solve so overlapping traversals are not repeated.  Zero-weight
        variables belong to the component (their value must be reset to 0)
        but do not propagate it: they consume nothing, so the constraints
        on their far side are unaffected.
        """
        cns_seen.add(seed)
        cnss: List[Constraint] = [seed]
        stack: List[Constraint] = [seed]
        variables: List[Variable] = []
        while stack:
            cns = stack.pop()
            for elem in cns.elements:
                var = elem.variable
                if var in var_seen:
                    continue
                var_seen.add(var)
                variables.append(var)
                if var.weight > EPSILON:
                    for other in var.elements:
                        if other.constraint not in cns_seen:
                            cns_seen.add(other.constraint)
                            cnss.append(other.constraint)
                            stack.append(other.constraint)
        return cnss, variables

    def _solve_subsystem(self, cnss: List[Constraint],
                         variables: List[Variable],
                         changed: List[Variable]) -> None:
        """Progressive filling restricted to one (or more) components."""
        self.constraints_solved += len(cnss)
        self.variables_solved += len(variables)
        old_values = [var.value for var in variables]

        active: List[Variable] = []
        for var in variables:
            if var.weight <= EPSILON or not var.elements:
                # Suspended variables get no capacity.  Variables crossing
                # no constraint are only limited by their bound.
                if var.weight <= EPSILON:
                    var.value = 0.0
                else:
                    var.value = var.bound if var.bound is not None else math.inf
            else:
                var.value = 0.0
                active.append(var)

        remaining: Dict[int, float] = {c.id: c.capacity for c in cnss}
        unassigned = set(id(v) for v in active)

        # Guard: at most one round per variable (each round freezes >= 1 var).
        for _round in range(len(active) + 1):
            if not unassigned:
                break

            # 1. candidate level from each constraint
            best_level = math.inf
            best_constraint: Optional[Constraint] = None
            for cns in cnss:
                level = self._constraint_level(cns, remaining[cns.id],
                                               unassigned)
                if level is not None and level < best_level - EPSILON:
                    best_level = level
                    best_constraint = cns

            # 2. candidate level from each still-unassigned bounded variable
            best_bound_var: Optional[Variable] = None
            for var in active:
                if id(var) not in unassigned or var.bound is None:
                    continue
                level = var.bound / var.weight
                if level < best_level - EPSILON:
                    best_level = level
                    best_constraint = None
                    best_bound_var = var

            if best_level is math.inf:
                # No constraint limits the remaining variables: they are only
                # limited by their bounds (handled above) or unbounded.
                for var in active:
                    if id(var) in unassigned:
                        var.value = (var.bound if var.bound is not None
                                     else math.inf)
                        unassigned.discard(id(var))
                break

            if best_bound_var is not None:
                frozen = [best_bound_var]
            else:
                assert best_constraint is not None
                frozen = [v for v in best_constraint.variables
                          if id(v) in unassigned]

            for var in frozen:
                value = best_level * var.weight
                if var.bound is not None:
                    value = min(value, var.bound)
                var.value = value
                unassigned.discard(id(var))
                # subtract consumption from every shared constraint crossed
                for elem in var.elements:
                    if elem.constraint.shared:
                        remaining[elem.constraint.id] = max(
                            0.0,
                            remaining[elem.constraint.id] - elem.usage * value,
                        )

        for var, old in zip(variables, old_values):
            if var.value != old:
                changed.append(var)

    def _constraint_level(self, cns: Constraint, remaining: float,
                          unassigned) -> Optional[float]:
        """Saturation level of ``cns`` for its still-unassigned variables.

        Returns ``None`` when no unassigned variable crosses the constraint.
        """
        if cns.shared:
            denom = 0.0
            found = False
            for elem in cns.elements:
                if id(elem.variable) in unassigned:
                    denom += elem.usage * elem.variable.weight
                    found = True
            if not found or denom <= EPSILON:
                return None
            return max(0.0, remaining) / denom
        # Fat-pipe: each variable is individually limited to capacity/usage,
        # i.e. level = capacity / (usage * weight); the constraint behaves as
        # a per-variable bound, so the level is the smallest of those.
        best = None
        for elem in cns.elements:
            if id(elem.variable) in unassigned and elem.usage > EPSILON:
                level = cns.capacity / (elem.usage * elem.variable.weight)
                if best is None or level < best:
                    best = level
        return best

    # -- validation helpers -------------------------------------------------------
    def solve_all(self) -> None:
        """Force a from-scratch re-solve of the whole system.

        Used by tests to compare the selective path against the reference
        progressive-filling result.
        """
        self._modified.update(c for c in self.constraints if c.elements)
        self._detached_dirty.update(v for v in self._vars.values()
                                    if not v.elements)
        self.solve()

    def check_feasible(self, tol: float = 1e-6) -> bool:
        """Return True when the solved values violate no constraint.

        Intended for tests and debugging; ``solve()`` must have been called.
        """
        for cns in self.constraints:
            usage = cns.usage_total()
            if usage > cns.capacity * (1.0 + tol) + tol:
                return False
        for var in self._vars.values():
            if var.bound is not None and var.value > var.bound * (1 + tol) + tol:
                return False
            if var.value < -tol:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MaxMinSystem(nvars={len(self._vars)}, "
                f"ncons={len(self.constraints)})")
