"""Trace-driven variation of resource availability and state.

The paper lists among SURF's features:

* *Trace-based simulation of performance variations due to external load*
  (CPU availability, network bandwidth), and
* *Trace-based simulation of dynamic resource failures* (transient failures).

A :class:`Trace` is an ordered list of ``(time, value)`` events, optionally
periodic.  Two kinds of traces exist:

* **availability traces** — the value is a scaling factor in ``[0, 1]``
  applied to the peak capacity of the resource (CPU speed, link bandwidth);
* **state traces** — the value is interpreted as a boolean: 0 turns the
  resource off (failure), anything else turns it back on.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = ["Trace", "TraceEvent", "TraceKind", "TraceIterator"]


class TraceKind(enum.Enum):
    """What aspect of a resource a trace drives."""

    AVAILABILITY = "availability"
    STATE = "state"


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled change: at ``time`` the resource takes ``value``."""

    time: float
    value: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("trace event time must be >= 0")


class Trace:
    """An ordered sequence of :class:`TraceEvent`, optionally periodic.

    Parameters
    ----------
    events:
        Iterable of ``(time, value)`` pairs.  Times must be non-decreasing.
    period:
        If given, the trace repeats with this period: after the last event,
        the sequence restarts shifted by ``period``.  Must be strictly
        greater than the last event time.
    name:
        Optional label used in error messages and exports.
    """

    def __init__(self, events: Sequence[Tuple[float, float]],
                 period: Optional[float] = None,
                 name: str = "") -> None:
        evts = [TraceEvent(float(t), float(v)) for t, v in events]
        for prev, nxt in zip(evts, evts[1:]):
            if nxt.time < prev.time:
                raise ValueError(
                    f"trace {name!r}: event times must be non-decreasing "
                    f"({nxt.time} < {prev.time})")
        if period is not None:
            if not evts:
                raise ValueError("a periodic trace needs at least one event")
            if period <= evts[-1].time:
                raise ValueError(
                    f"trace {name!r}: period ({period}) must exceed the last "
                    f"event time ({evts[-1].time})")
        self.events: List[TraceEvent] = evts
        self.period = period
        self.name = name

    # -- parsing ----------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, name: str = "") -> "Trace":
        """Parse the classic SimGrid trace file format.

        Lines are ``<time> <value>``; a line ``PERIODICITY <p>`` (or
        ``LOOPAFTER <p>``) declares the period; ``#`` starts a comment.

        >>> Trace.parse("PERIODICITY 10\\n0.0 1.0\\n5.0 0.5\\n").period
        10.0
        """
        events: List[Tuple[float, float]] = []
        period: Optional[float] = None
        for raw in text.splitlines():
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if parts[0].upper() in ("PERIODICITY", "LOOPAFTER"):
                period = float(parts[1])
                continue
            if len(parts) != 2:
                raise ValueError(f"trace {name!r}: cannot parse line {raw!r}")
            events.append((float(parts[0]), float(parts[1])))
        return cls(events, period=period, name=name)

    @classmethod
    def constant(cls, value: float, name: str = "") -> "Trace":
        """A trace holding ``value`` forever."""
        return cls([(0.0, value)], name=name)

    # -- validation --------------------------------------------------------------
    def validate_availability(self) -> "Trace":
        """Check every value is a valid availability factor in ``[0, 1]``.

        A :class:`Trace` is kind-agnostic at construction (state traces
        allow any value), so availability use is validated at the point a
        trace is attached to a resource as an availability/bandwidth
        trace.  Raises :class:`~repro.exceptions.TraceError` naming the
        trace and the offending event, so a bad trace file fails at load
        instead of mid-step deep inside the engine.  Returns the trace so
        call sites can chain it.
        """
        from repro.exceptions import TraceError
        for position, evt in enumerate(self.events):
            if not (0.0 <= evt.value <= 1.0):
                raise TraceError(
                    f"availability trace {self.name!r}: value {evt.value} at "
                    f"event #{position} (t={evt.time}) is outside [0, 1]")
        return self

    # -- querying ---------------------------------------------------------------
    def value_at(self, time: float) -> Optional[float]:
        """Value in force at ``time`` (last event at or before ``time``).

        Returns ``None`` if no event occurred yet at that date.
        """
        if time < 0:
            raise ValueError("time must be >= 0")
        if not self.events:
            return None
        base = time
        if self.period is not None and time >= self.period:
            base = math.fmod(time, self.period)
        current: Optional[float] = None
        for evt in self.events:
            if evt.time <= base + 1e-12:
                current = evt.value
            else:
                break
        if current is None and self.period is not None and time >= self.period:
            # wrapped before the first event of the cycle: the last event of
            # the previous cycle is still in force
            current = self.events[-1].value
        return current

    def iter_from(self, start: float = 0.0) -> "TraceIterator":
        """Iterator over absolute-dated events starting at ``start``."""
        return TraceIterator(self, start)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Trace(name={self.name!r}, nevents={len(self.events)}, "
                f"period={self.period})")


class TraceIterator:
    """Stateful iterator yielding ``(absolute_time, value)`` pairs.

    For a periodic trace the iterator is infinite; for a finite trace it
    stops after the last event.
    """

    def __init__(self, trace: Trace, start: float = 0.0) -> None:
        self.trace = trace
        self._index = 0
        self._cycle_offset = 0.0
        if (trace.period is not None and trace.events
                and start > trace.period):
            # Jump whole cycles arithmetically instead of replaying them
            # event by event — `iter_from(1e6)` on a 10 s period must not
            # spin 1e5 iterations per resource.  One full cycle of slack
            # keeps the jump conservative against floating-point rounding
            # of `start / period`; the loop below finishes the job and is
            # now bounded by O(len(events)).
            cycles = math.floor(start / trace.period) - 1.0
            if cycles > 0:
                self._cycle_offset = cycles * trace.period
        # Fast-forward past events strictly before `start`.
        while True:
            nxt = self._peek()
            if nxt is None or nxt[0] >= start:
                break
            self._advance()

    def _peek(self) -> Optional[Tuple[float, float]]:
        trace = self.trace
        if self._index < len(trace.events):
            evt = trace.events[self._index]
            return (evt.time + self._cycle_offset, evt.value)
        if trace.period is None:
            return None
        evt = trace.events[0]
        return (evt.time + self._cycle_offset + trace.period, evt.value)

    def _advance(self) -> None:
        trace = self.trace
        self._index += 1
        if self._index >= len(trace.events) and trace.period is not None:
            self._index = 0
            self._cycle_offset += trace.period

    def peek(self) -> Optional[Tuple[float, float]]:
        """Next event without consuming it (``None`` when exhausted)."""
        return self._peek()

    def next_event(self) -> Optional[Tuple[float, float]]:
        """Consume and return the next event (``None`` when exhausted)."""
        nxt = self._peek()
        if nxt is not None:
            self._advance()
        return nxt

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return self

    def __next__(self) -> Tuple[float, float]:
        nxt = self.next_event()
        if nxt is None:
            raise StopIteration
        return nxt
