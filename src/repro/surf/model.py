"""Shared event-driven machinery of the SURF fluid models.

Historically every engine step asked each model to re-push every running
action's weight/bound into the LMM system, re-solve it from scratch and
linearly scan all actions twice (once for the next completion date, once to
advance progress).  That made each step O(actions) even when nothing
changed — O(n²) for a whole simulation, and worse once the solver cost is
counted.

:class:`FluidModel` replaces those scans with an event heap:

* every running action has at most one *live* entry in the heap — its
  predicted completion date (or, for transfers, the end of its latency
  phase).  Entries are invalidated lazily by bumping the action's event
  version; stale entries are dropped when they surface;
* :meth:`share_resources` runs the (selective) LMM solve and recomputes the
  completion date *only* for the actions whose solved rate actually
  changed;
* :meth:`update_actions_state` pops the events due at the new date instead
  of scanning every running action.

The only write path from actions into the LMM system is
:meth:`on_action_priority_changed`; models and upper layers must never poke
the system directly, otherwise the dirtiness tracking (and therefore the
completion heap) would miss the change.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import List, Set, Tuple

from repro.surf.action import Action, ActionState
from repro.surf.lmm import MaxMinSystem

__all__ = ["FluidModel"]

#: Amount slack under which an action is considered finished.
COMPLETION_EPSILON = 1e-6
#: Date slack when popping due events (mirrors the engine's epsilon).
TIME_EPSILON = 1e-9


class FluidModel:
    """Base class for the CPU and network fluid models."""

    def __init__(self) -> None:
        self.system = MaxMinSystem()
        self.running: Set[Action] = set()
        #: Current simulated date, pushed down by the SURF engine at every
        #: share/update call; actions created in between are stamped with it.
        self.clock = 0.0
        # heap of (date, sequence, version, action) — version mismatches
        # mark entries that were superseded by a reschedule.
        self._heap: List[Tuple[float, int, int, Action]] = []
        self._seq = itertools.count()

    # -- observability -----------------------------------------------------------
    def solver_stats(self) -> dict:
        """Counters of this model's LMM system (benchmark observability).

        ``elements_visited`` and ``heap_pops`` expose the incremental
        progressive filling's actual work so benchmarks can prove the
        O(E log C) complexity instead of inferring it from wall-clock.
        """
        system = self.system
        return {
            "solve_calls": system.solve_calls,
            "solve_skipped": system.solve_skipped,
            "constraints_solved": system.constraints_solved,
            "variables_solved": system.variables_solved,
            "elements_visited": system.elements_visited,
            "heap_pops": system.heap_pops,
        }

    # -- event heap -------------------------------------------------------------
    def _schedule_event(self, action: Action, date: float) -> None:
        """(Re)schedule the single live event of ``action`` at ``date``."""
        action._event_version += 1
        heapq.heappush(self._heap,
                       (date, next(self._seq), action._event_version, action))

    def _unschedule_event(self, action: Action) -> None:
        """Invalidate the live event of ``action`` (lazy heap removal)."""
        action._event_version += 1

    def next_event_date(self) -> float:
        """Date of the earliest live event (inf when none is scheduled)."""
        heap = self._heap
        running = ActionState.RUNNING
        while heap:
            date, _, version, action = heap[0]
            if version != action._event_version or action.state is not running:
                heapq.heappop(heap)
                continue
            return date
        return math.inf

    # -- LMM write paths ---------------------------------------------------------
    def on_action_priority_changed(self, action: Action) -> None:
        """Model hook: push new weight/bound to the LMM system.

        This is the *only* path by which an action's weight or bound reaches
        the solver; the solver's dirtiness tracking hinges on it.
        """
        if action.variable is None:
            return
        self.system.update_variable_weight(action.variable,
                                           action.effective_weight())
        self.system.update_variable_bound(action.variable, action.bound)

    def on_resource_capacity_changed(self, resource) -> None:
        """Model hook: a resource's effective capacity changed at runtime.

        Called after an availability event (or an explicit speed change)
        already pushed the new constraint capacity through
        ``update_constraint_capacity``.  The base models need nothing
        more; the CPU model overrides this to resync the per-core bounds
        of multi-core executions.
        """

    def on_action_finished(self, action: Action) -> None:
        """Model hook: drop the LMM variable of a terminated action."""
        if action.variable is not None:
            self.system.remove_variable(action.variable)
            action.variable = None
        self._unschedule_event(action)
        self.running.discard(action)

    # -- simulation steps --------------------------------------------------------
    def share_resources(self, now: float) -> float:
        """Re-solve what changed; return the delay until the next event."""
        self.clock = now
        system = self.system
        if system._modified or system._detached_dirty:
            for var in system.solve():
                action = var.data
                if action is None or action.state is not ActionState.RUNNING:
                    continue
                # The interval since the last sync ran at the previous
                # rate; account it before adopting the new one.
                action.sync_remaining(now)
                action.last_rate = 0.0 if action._suspended else var.value
                self._reschedule_action(action, now)
        next_date = self.next_event_date()
        if math.isinf(next_date):
            return math.inf
        return max(0.0, next_date - now)

    def _reschedule_action(self, action: Action, now: float) -> None:
        """Recompute and (re)schedule the next event of ``action``.

        The base implementation handles plain completions; the network
        model overrides it to keep latency-phase events in place.
        """
        rate = action.last_rate
        if rate <= 0.0:
            self._unschedule_event(action)
            return
        if math.isinf(rate) or action._remaining <= COMPLETION_EPSILON:
            self._schedule_event(action, now)
            return
        self._schedule_event(action, now + action._remaining / rate)

    def update_actions_state(self, now: float, delta: float) -> List[Action]:
        """Fire the events due at ``now``; return the completed actions."""
        self.clock = now
        finished: List[Action] = []
        heap = self._heap
        running = ActionState.RUNNING
        while heap:
            date, _, version, action = heap[0]
            if version != action._event_version or action.state is not running:
                heapq.heappop(heap)
                continue
            if date > now + TIME_EPSILON:
                break
            heapq.heappop(heap)
            action._event_version += 1
            self._fire_event(action, now, finished)
        return finished

    def _fire_event(self, action: Action, now: float,
                    finished: List[Action]) -> None:
        """Handle one due event: by default, the action's completion."""
        self._complete(action, now, finished)

    def _complete(self, action: Action, now: float,
                  finished: List[Action]) -> None:
        action.sync_remaining(now)
        action._remaining = 0.0
        action.finish(now, ActionState.DONE)
        finished.append(action)

    # -- failures ----------------------------------------------------------------
    def _actions_using(self, resource) -> List[Action]:
        """Running actions registered on ``resource``'s constraint."""
        constraint = resource.constraint
        if constraint is None:
            return []
        return [elem.variable.data for elem in constraint.elements
                if isinstance(elem.variable.data, Action)]

    def fail_actions_on(self, resource, now: float) -> List[Action]:
        """Fail every running action using ``resource`` (resource failure)."""
        failed: List[Action] = []
        for action in self._actions_using(resource):
            if action.is_running():
                action.fail(now)
                failed.append(action)
        return failed
