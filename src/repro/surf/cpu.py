"""CPU model: computations sharing processor capacity.

The paper's SURF panel lists *"Multiple CPU-bound processes sharing a CPU"*
as one instance of the MaxMin sharing model.  This module provides:

* :class:`CpuResource` — one host CPU with a peak speed in flop/s, an
  availability trace and a state (failure) trace;
* :class:`CpuAction` — one computation of a given amount of flops;
* :class:`CpuModel` — the model object that owns the LMM system, creates
  executions and advances their state.

The model is event-driven (see :class:`~repro.surf.model.FluidModel`):
completion dates live in a heap and are recomputed only for the actions
whose LMM share changed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.surf.action import Action
from repro.surf.lmm import MaxMinSystem
from repro.surf.model import FluidModel
from repro.surf.resource import Resource
from repro.surf.trace import Trace

__all__ = ["CpuModel", "CpuResource", "CpuAction"]


class CpuResource(Resource):
    """A processor with a given peak speed (flop/s).

    ``cores`` models a multi-core host as a single constraint whose capacity
    is ``speed * cores`` while each individual execution is bounded by the
    speed of one core — the standard SimGrid multi-core approximation.
    """

    def __init__(self, name: str, speed: float, system: MaxMinSystem,
                 cores: int = 1,
                 availability_trace: Optional[Trace] = None,
                 state_trace: Optional[Trace] = None,
                 index: Optional[int] = None) -> None:
        if cores < 1:
            raise ValueError("a CPU needs at least one core")
        super().__init__(name, speed * cores, system,
                         shared=True,
                         availability_trace=availability_trace,
                         state_trace=state_trace,
                         index=index)
        self.speed = float(speed)
        self.cores = int(cores)

    @property
    def core_speed(self) -> float:
        """Current speed of a single core (peak scaled by availability)."""
        if not self.is_on:
            return 0.0
        return self.speed * self.availability


class CpuAction(Action):
    """One computation: ``cost`` flops executed on one CPU.

    ``user_bound`` keeps the caller-requested rate cap separate from the
    per-core cap the model merges into :attr:`bound`, so the merged bound
    can be recomputed when the core speed changes at runtime
    (availability event, ``set_cpu_speed``).
    """

    __slots__ = ("cpu", "user_bound")

    def __init__(self, model: "CpuModel", cpu: CpuResource, cost: float,
                 priority: float = 1.0,
                 user_bound: Optional[float] = None) -> None:
        super().__init__(model, cost, priority)
        self.cpu = cpu
        self.user_bound = user_bound


class CpuModel(FluidModel):
    """Fluid model of computations sharing CPUs via MaxMin fairness."""

    def __init__(self) -> None:
        super().__init__()
        self.cpus: Dict[str, CpuResource] = {}

    # -- platform construction -----------------------------------------------------
    def add_cpu(self, name: str, speed: float, cores: int = 1,
                availability_trace: Optional[Trace] = None,
                state_trace: Optional[Trace] = None,
                index: Optional[int] = None) -> CpuResource:
        """Register a new CPU resource.

        ``index`` (when given) pins the constraint id to the host's
        declaration index so numbering is materialization-order
        independent.
        """
        if name in self.cpus:
            raise ValueError(f"duplicate CPU name {name!r}")
        cpu = CpuResource(name, speed, self.system, cores,
                          availability_trace, state_trace, index=index)
        self.cpus[name] = cpu
        return cpu

    @property
    def resources(self) -> List[CpuResource]:
        return list(self.cpus.values())

    # -- action creation -----------------------------------------------------------
    def execute(self, cpu: CpuResource, flops: float,
                priority: float = 1.0,
                bound: Optional[float] = None) -> CpuAction:
        """Start a computation of ``flops`` on ``cpu``.

        The returned action progresses at the CPU share allocated by the
        MaxMin solver, at most one core's worth of speed.
        """
        action = CpuAction(self, cpu, flops, priority, user_bound=bound)
        effective_bound = self._merged_bound(cpu, bound)
        action.bound = effective_bound
        var = self.system.new_variable(weight=action.effective_weight(),
                                       bound=effective_bound, data=action)
        action.variable = var
        self.system.expand(cpu.constraint, var, 1.0)
        self.running.add(action)
        if not cpu.is_on:
            # Executing on a dead host fails immediately at the next step.
            action.fail(action.start_time)
        return action

    @staticmethod
    def _merged_bound(cpu: CpuResource,
                      user_bound: Optional[float]) -> Optional[float]:
        """Caller cap merged with the current per-core cap.

        On a single-core CPU the constraint capacity already enforces the
        core speed, so only the caller's cap applies; a multi-core CPU
        additionally caps each execution at one core's *current* speed
        (peak scaled by availability).
        """
        if cpu.cores <= 1:
            return user_bound
        core_cap = cpu.core_speed
        return core_cap if user_bound is None else min(user_bound, core_cap)

    # -- dynamic reconfiguration ---------------------------------------------------
    def set_cpu_speed(self, cpu: CpuResource, speed: float) -> None:
        """Change a CPU's nominal per-core speed at runtime.

        Mirrors :meth:`NetworkModel.set_link_bandwidth`: the new capacity
        reaches the solver through ``set_peak_capacity`` →
        ``update_constraint_capacity`` — the one write path the selective
        solve tracks — so only the component containing this CPU is
        re-solved, and the per-core bounds of its running multi-core
        executions are resynced through ``on_action_priority_changed``.
        """
        if speed <= 0:
            raise ValueError(f"cpu {cpu.name!r}: speed must be > 0")
        cpu.speed = float(speed)
        cpu.set_peak_capacity(cpu.speed * cpu.cores)
        self.on_resource_capacity_changed(cpu)

    def on_resource_capacity_changed(self, cpu: CpuResource) -> None:
        """Resync per-core bounds after a capacity change (see FluidModel).

        The constraint capacity itself was already updated by the caller
        (`set_availability` / `set_cpu_speed`); what remains is the
        per-action mirror of the core speed on multi-core CPUs.  Each
        bound flows through ``action.model.on_action_priority_changed``
        — the only action→LMM write path — so dirtiness tracking stays
        intact even when the action lives in another shard's system.
        """
        if cpu.cores <= 1:
            return
        for action in self._actions_using(cpu):
            if not isinstance(action, CpuAction) or not action.is_running():
                continue
            action.bound = self._merged_bound(cpu, action.user_bound)
            action.model.on_action_priority_changed(action)

    def resource_of(self, name: str) -> CpuResource:
        """Lookup a CPU by name (raises ``KeyError`` if unknown)."""
        return self.cpus[name]
