"""CPU model: computations sharing processor capacity.

The paper's SURF panel lists *"Multiple CPU-bound processes sharing a CPU"*
as one instance of the MaxMin sharing model.  This module provides:

* :class:`CpuResource` — one host CPU with a peak speed in flop/s, an
  availability trace and a state (failure) trace;
* :class:`CpuAction` — one computation of a given amount of flops;
* :class:`CpuModel` — the model object that owns the LMM system, creates
  executions and advances their state.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set

from repro.surf.action import Action, ActionState
from repro.surf.lmm import MaxMinSystem
from repro.surf.resource import Resource
from repro.surf.trace import Trace

__all__ = ["CpuModel", "CpuResource", "CpuAction"]

_COMPLETION_EPSILON = 1e-6


class CpuResource(Resource):
    """A processor with a given peak speed (flop/s).

    ``cores`` models a multi-core host as a single constraint whose capacity
    is ``speed * cores`` while each individual execution is bounded by the
    speed of one core — the standard SimGrid multi-core approximation.
    """

    def __init__(self, name: str, speed: float, system: MaxMinSystem,
                 cores: int = 1,
                 availability_trace: Optional[Trace] = None,
                 state_trace: Optional[Trace] = None) -> None:
        if cores < 1:
            raise ValueError("a CPU needs at least one core")
        super().__init__(name, speed * cores, system,
                         shared=True,
                         availability_trace=availability_trace,
                         state_trace=state_trace)
        self.speed = float(speed)
        self.cores = int(cores)

    @property
    def core_speed(self) -> float:
        """Current speed of a single core (peak scaled by availability)."""
        if not self.is_on:
            return 0.0
        return self.speed * self.availability


class CpuAction(Action):
    """One computation: ``cost`` flops executed on one CPU."""

    def __init__(self, model: "CpuModel", cpu: CpuResource, cost: float,
                 priority: float = 1.0) -> None:
        super().__init__(model, cost, priority)
        self.cpu = cpu


class CpuModel:
    """Fluid model of computations sharing CPUs via MaxMin fairness."""

    def __init__(self) -> None:
        self.system = MaxMinSystem()
        self.cpus: Dict[str, CpuResource] = {}
        self.running: Set[CpuAction] = set()

    # -- platform construction -----------------------------------------------------
    def add_cpu(self, name: str, speed: float, cores: int = 1,
                availability_trace: Optional[Trace] = None,
                state_trace: Optional[Trace] = None) -> CpuResource:
        """Register a new CPU resource."""
        if name in self.cpus:
            raise ValueError(f"duplicate CPU name {name!r}")
        cpu = CpuResource(name, speed, self.system, cores,
                          availability_trace, state_trace)
        self.cpus[name] = cpu
        return cpu

    @property
    def resources(self) -> List[CpuResource]:
        return list(self.cpus.values())

    # -- action creation -----------------------------------------------------------
    def execute(self, cpu: CpuResource, flops: float,
                priority: float = 1.0,
                bound: Optional[float] = None) -> CpuAction:
        """Start a computation of ``flops`` on ``cpu``.

        The returned action progresses at the CPU share allocated by the
        MaxMin solver, at most one core's worth of speed.
        """
        action = CpuAction(self, cpu, flops, priority)
        core_cap = cpu.speed if cpu.cores > 1 else None
        effective_bound = bound
        if core_cap is not None:
            effective_bound = (core_cap if bound is None
                               else min(bound, core_cap))
        action.bound = effective_bound
        var = self.system.new_variable(weight=action.effective_weight(),
                                       bound=effective_bound, data=action)
        action.variable = var
        self.system.expand(cpu.constraint, var, 1.0)
        self.running.add(action)
        if not cpu.is_on:
            # Executing on a dead host fails immediately at the next step.
            action.fail(action.start_time)
        return action

    def sleep(self, cpu: CpuResource, duration: float) -> CpuAction:
        """A zero-flop action used by the engine for process sleeps.

        It is modelled as an execution of 0 flops with a dedicated duration
        handled by the engine's timer queue, so this simply returns a
        completed action; provided for API symmetry and tests.
        """
        action = CpuAction(self, cpu, 0.0, priority=0.0)
        action.finish(0.0, ActionState.DONE)
        return action

    # -- model callbacks ------------------------------------------------------------
    def on_action_finished(self, action: Action) -> None:
        """Model hook: drop the LMM variable of a terminated action."""
        if action.variable is not None:
            self.system.remove_variable(action.variable)
            action.variable = None
        self.running.discard(action)  # type: ignore[arg-type]

    def on_action_priority_changed(self, action: Action) -> None:
        """Model hook: push new weight/bound to the LMM system."""
        if action.variable is None:
            return
        self.system.update_variable_weight(action.variable,
                                           action.effective_weight())
        self.system.update_variable_bound(action.variable, action.bound)

    # -- simulation steps -------------------------------------------------------------
    def share_resources(self, now: float) -> float:
        """Solve the LMM system; return the delay until the next completion."""
        for action in self.running:
            if action.variable is not None:
                self.system.update_variable_weight(action.variable,
                                                   action.effective_weight())
                self.system.update_variable_bound(action.variable,
                                                  action.bound)
        self.system.solve()
        min_delta = math.inf
        for action in self.running:
            if not action.is_running():
                continue
            delta = action.time_to_completion()
            if delta < min_delta:
                min_delta = delta
        return min_delta

    def update_actions_state(self, now: float, delta: float) -> List[CpuAction]:
        """Advance every running action by ``delta``; return completions."""
        finished: List[CpuAction] = []
        for action in list(self.running):
            if not action.is_running():
                continue
            action.update_remaining(delta)
            if action.remaining <= _COMPLETION_EPSILON:
                action.remaining = 0.0
                action.finish(now, ActionState.DONE)
                finished.append(action)
        return finished

    # -- failures -------------------------------------------------------------------
    def fail_actions_on(self, cpu: CpuResource, now: float) -> List[CpuAction]:
        """Fail every running action executing on ``cpu`` (host failure)."""
        failed: List[CpuAction] = []
        for action in list(self.running):
            if action.cpu is cpu and action.is_running():
                action.fail(now)
                failed.append(action)
        return failed

    def resource_of(self, name: str) -> CpuResource:
        """Lookup a CPU by name (raises ``KeyError`` if unknown)."""
        return self.cpus[name]
