"""CPU model: computations sharing processor capacity.

The paper's SURF panel lists *"Multiple CPU-bound processes sharing a CPU"*
as one instance of the MaxMin sharing model.  This module provides:

* :class:`CpuResource` — one host CPU with a peak speed in flop/s, an
  availability trace and a state (failure) trace;
* :class:`CpuAction` — one computation of a given amount of flops;
* :class:`CpuModel` — the model object that owns the LMM system, creates
  executions and advances their state.

The model is event-driven (see :class:`~repro.surf.model.FluidModel`):
completion dates live in a heap and are recomputed only for the actions
whose LMM share changed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.surf.action import Action
from repro.surf.lmm import MaxMinSystem
from repro.surf.model import FluidModel
from repro.surf.resource import Resource
from repro.surf.trace import Trace

__all__ = ["CpuModel", "CpuResource", "CpuAction"]


class CpuResource(Resource):
    """A processor with a given peak speed (flop/s).

    ``cores`` models a multi-core host as a single constraint whose capacity
    is ``speed * cores`` while each individual execution is bounded by the
    speed of one core — the standard SimGrid multi-core approximation.
    """

    def __init__(self, name: str, speed: float, system: MaxMinSystem,
                 cores: int = 1,
                 availability_trace: Optional[Trace] = None,
                 state_trace: Optional[Trace] = None,
                 index: Optional[int] = None) -> None:
        if cores < 1:
            raise ValueError("a CPU needs at least one core")
        super().__init__(name, speed * cores, system,
                         shared=True,
                         availability_trace=availability_trace,
                         state_trace=state_trace,
                         index=index)
        self.speed = float(speed)
        self.cores = int(cores)

    @property
    def core_speed(self) -> float:
        """Current speed of a single core (peak scaled by availability)."""
        if not self.is_on:
            return 0.0
        return self.speed * self.availability


class CpuAction(Action):
    """One computation: ``cost`` flops executed on one CPU."""

    __slots__ = ("cpu",)

    def __init__(self, model: "CpuModel", cpu: CpuResource, cost: float,
                 priority: float = 1.0) -> None:
        super().__init__(model, cost, priority)
        self.cpu = cpu


class CpuModel(FluidModel):
    """Fluid model of computations sharing CPUs via MaxMin fairness."""

    def __init__(self) -> None:
        super().__init__()
        self.cpus: Dict[str, CpuResource] = {}

    # -- platform construction -----------------------------------------------------
    def add_cpu(self, name: str, speed: float, cores: int = 1,
                availability_trace: Optional[Trace] = None,
                state_trace: Optional[Trace] = None,
                index: Optional[int] = None) -> CpuResource:
        """Register a new CPU resource.

        ``index`` (when given) pins the constraint id to the host's
        declaration index so numbering is materialization-order
        independent.
        """
        if name in self.cpus:
            raise ValueError(f"duplicate CPU name {name!r}")
        cpu = CpuResource(name, speed, self.system, cores,
                          availability_trace, state_trace, index=index)
        self.cpus[name] = cpu
        return cpu

    @property
    def resources(self) -> List[CpuResource]:
        return list(self.cpus.values())

    # -- action creation -----------------------------------------------------------
    def execute(self, cpu: CpuResource, flops: float,
                priority: float = 1.0,
                bound: Optional[float] = None) -> CpuAction:
        """Start a computation of ``flops`` on ``cpu``.

        The returned action progresses at the CPU share allocated by the
        MaxMin solver, at most one core's worth of speed.
        """
        action = CpuAction(self, cpu, flops, priority)
        core_cap = cpu.speed if cpu.cores > 1 else None
        effective_bound = bound
        if core_cap is not None:
            effective_bound = (core_cap if bound is None
                               else min(bound, core_cap))
        action.bound = effective_bound
        var = self.system.new_variable(weight=action.effective_weight(),
                                       bound=effective_bound, data=action)
        action.variable = var
        self.system.expand(cpu.constraint, var, 1.0)
        self.running.add(action)
        if not cpu.is_on:
            # Executing on a dead host fails immediately at the next step.
            action.fail(action.start_time)
        return action

    def resource_of(self, name: str) -> CpuResource:
        """Lookup a CPU by name (raises ``KeyError`` if unknown)."""
        return self.cpus[name]
