"""Sharded kernel: parallel component solves and the zone-partitioned engine.

Layer 1 — :class:`ParallelSolveExecutor`
----------------------------------------

:meth:`~repro.surf.lmm.MaxMinSystem.solve` already partitions the dirty
state into independent connected components; this module adds the executor
that batches those components across worker processes.  The design goals,
in order:

* **bit-identical results** — a worker reconstructs the component with the
  same constraint/variable/element orderings the parent holds and runs the
  very same ``_solve_subsystem`` code, so the solved values are the same
  IEEE doubles the serial path would produce;
* **zero overhead for tiny steps** — :meth:`ParallelSolveExecutor.accepts`
  gates on a component-count and component-size threshold; below it the
  system keeps the in-process loop and never touches the executor;
* **flat-array marshalling** — components serialize into one
  ``multiprocessing.shared_memory`` segment (an int area and a double
  area), workers write solved values back into the same segment, so the
  per-batch pickle traffic is a handful of offsets, not object graphs.

Shared-memory layout (per component, offsets into the batch segment):

====  ======================================================================
ints  ``[ncns, nvars, nelems]`` header, then ``ncns`` shared flags, then
      ``ncns`` element-slot counts (the *full* ``len(cns.elements)``,
      including slots owned by zero-weight variables of other
      components — the scan-length counters see them), then ``nvars``
      per-variable element counts, then ``nelems`` element pairs
      ``(cns_index, cpos)`` in variable-major order — ``cpos`` is the
      element's position inside ``constraint.elements``, so the worker
      reproduces both the per-variable and the per-constraint element
      orders exactly; unserialized slots are backfilled with dummy
      zero-weight elements, which every solver scan stamp-skips just
      like the parent would skip the foreign zero-weight variable.
dbls  ``ncns`` capacities, ``nvars`` weights, ``nvars`` bounds (``nan``
      encodes *unbounded*), ``nelems`` usages, and the ``nvars`` output
      values the worker writes back.
====  ======================================================================

Worker processes are forked lazily on the first accepted batch and reused;
:meth:`close` (also wired to ``weakref.finalize`` and ``atexit``) tears
down the pool and unlinks the segment so no ``/dev/shm`` entry outlives
the engine, even on exceptions.

Layer 2 — :class:`ShardedSurfEngine`
------------------------------------

The :class:`~repro.platform.routing.NetZone` tree doubles as the kernel
partition: every top-level zone becomes a *shard* with its own CPU and
network :class:`~repro.surf.model.FluidModel` (and therefore its own LMM
systems and completion heaps); resources of the root zone — and every
inter-zone link — live in the root shard.  Shards advance under a
conservative time window: the commit horizon of a step is the minimum
next-event date across all shards (the degenerate synchronous window; the
cross-zone lookahead that would let shards run ahead of each other is
reported by :meth:`ShardedSurfEngine.lookahead` and recorded in the
kernel stats).  Cross-zone communications are handed off at the gateway:
when a route spans several shards, the constraints it touches — and the
whole weakly-connected closure of variables and constraints entangled
with them — migrate into the root shard, ids intact, so every LMM
component always lives wholly inside one system.

Bit-identity with the flat kernel holds because every global ordering is
preserved: constraint ids are declaration indices (order-independent
numbering), variable ids come from one shared per-kind allocator, the
completion heaps share one per-kind sequence counter and due events pop
merged by ``(date, seq)`` — exactly the keys the flat single-heap pop
loop uses.
"""

from __future__ import annotations

import atexit
import heapq
import itertools
import math
import os
import weakref
from typing import Dict, List, Optional, Tuple

from repro.surf.cpu import CpuModel, CpuResource
from repro.surf.engine import SurfEngine
from repro.surf.lmm import Constraint, Element, MaxMinSystem, Variable
from repro.surf.model import TIME_EPSILON, FluidModel
from repro.surf.network import LinkResource, NetworkModel, NetworkModelConfig
from repro.surf.resource import Resource

__all__ = ["ParallelSolveExecutor", "ShardedSurfEngine", "default_workers"]

_SHM_PREFIX = "repro_lmm_"
_segment_ids = itertools.count(1)

# Counters a worker reports back after solving its components.
_COUNTER_NAMES = ("constraints_solved", "variables_solved",
                  "elements_visited", "heap_pops")


def default_workers() -> int:
    """Worker count from ``REPRO_PARALLEL`` (0 disables; unset = auto).

    Auto keeps one core for the main loop: ``cpu_count - 1``, which is 0
    — parallelism disabled — on a single-core machine.
    """
    raw = os.environ.get("REPRO_PARALLEL", "").strip().lower()
    if raw in ("", "auto"):
        return max(0, (os.cpu_count() or 1) - 1)
    try:
        value = int(raw)
    except ValueError:
        return 0
    return max(0, value)


def _build_component(ints, dbls, int_off: int, dbl_off: int):
    """Rebuild one component from the flat arrays.

    Returns ``(cnss, variables, value_offset)``; orderings replicate the
    parent's exactly (see the module docstring).
    """
    ncns = ints[int_off]
    nvars = ints[int_off + 1]
    nelems = ints[int_off + 2]
    flags_off = int_off + 3
    slots_off = flags_off + ncns
    counts_off = slots_off + ncns
    elems_off = counts_off + nvars

    caps_off = dbl_off
    weights_off = caps_off + ncns
    bounds_off = weights_off + nvars
    usages_off = bounds_off + nvars
    values_off = usages_off + nelems

    cnss: List[Constraint] = []
    for i in range(ncns):
        cns = Constraint(i, dbls[caps_off + i],
                         shared=bool(ints[flags_off + i]))
        cns.elements = [None] * ints[slots_off + i]  # type: ignore[list-item]
        cnss.append(cns)

    variables: List[Variable] = []
    eidx = 0
    for i in range(nvars):
        bound = dbls[bounds_off + i]
        if bound != bound:          # nan: unbounded
            bound = None
        var = Variable(i, dbls[weights_off + i], bound)
        variables.append(var)
        for _ in range(ints[counts_off + i]):
            base = elems_off + 2 * eidx
            cns = cnss[ints[base]]
            elem = Element(var, cns, dbls[usages_off + eidx])
            elem._cpos = ints[base + 1]
            var.elements.append(elem)
            cns.elements[elem._cpos] = elem
            eidx += 1
    # Slots owned by zero-weight variables of *other* components were not
    # serialized; backfill them with stamp-stale dummies that every scan
    # skips, keeping scan lengths identical to the parent's.
    dummy = Variable(-1, 0.0)
    for cns in cnss:
        for pos, elem in enumerate(cns.elements):
            if elem is None:
                filler = Element(dummy, cns, 0.0)
                filler._cpos = pos
                cns.elements[pos] = filler
    return cnss, variables, values_off


def _worker_main(conn) -> None:
    """Body of one solver worker: loop on (shm_name, specs) tasks."""
    from multiprocessing import shared_memory

    segments: Dict[str, object] = {}
    try:
        while True:
            try:
                task = conn.recv()
            except (EOFError, OSError):
                break
            if task is None:
                break
            shm_name, specs = task
            shm = segments.get(shm_name)
            if shm is None:
                # A previous segment of this batch pool was outgrown.
                for old in segments.values():
                    old.close()
                segments.clear()
                shm = shared_memory.SharedMemory(name=shm_name)
                try:
                    # The parent owns the segment; without this the
                    # worker's resource tracker double-accounts it and
                    # warns (or double-unlinks) at shutdown.
                    from multiprocessing import resource_tracker
                    resource_tracker.unregister(shm._name, "shared_memory")
                except Exception:  # pragma: no cover - best effort
                    pass
                segments[shm_name] = shm
            ints = memoryview(shm.buf).cast("q")
            dbls = memoryview(shm.buf).cast("d")
            system = MaxMinSystem()
            try:
                for int_off, dbl_off in specs:
                    cnss, variables, values_off = _build_component(
                        ints, dbls, int_off, dbl_off)
                    system._solve_subsystem(cnss, variables, [])
                    for i, var in enumerate(variables):
                        dbls[values_off + i] = var.value
                counters = [getattr(system, name)
                            for name in _COUNTER_NAMES]
                reply = ("ok", counters)
            except Exception as exc:  # pragma: no cover - defensive
                reply = ("error", repr(exc))
            finally:
                del ints, dbls
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        for shm in segments.values():
            shm.close()
        conn.close()


def _release(state: dict) -> None:
    """Idempotent teardown shared by close(), finalize and atexit."""
    procs = state.pop("procs", [])
    for conn, _proc in procs:
        try:
            conn.send(None)
        except (BrokenPipeError, OSError):
            pass
    for conn, proc in procs:
        proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - defensive
            proc.terminate()
            proc.join(timeout=2.0)
        try:
            conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
    shm = state.pop("shm", None)
    if shm is not None:
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


class ParallelSolveExecutor:
    """Batches independent LMM components across worker processes.

    Parameters
    ----------
    workers:
        Worker process count; ``None`` reads ``REPRO_PARALLEL`` (``0``
        disables, unset means ``cpu_count - 1``).  With 0 workers the
        executor never accepts a batch, so attaching it costs nothing.
    min_components:
        Minimum number of dirty components before a batch qualifies.
    min_work:
        Minimum summed component size (constraints + variables) before a
        batch qualifies — tiny steps stay on the in-process path.
    """

    def __init__(self, workers: Optional[int] = None,
                 min_components: int = 2, min_work: int = 256) -> None:
        self.workers = default_workers() if workers is None else max(0, workers)
        self.min_components = min_components
        self.min_work = min_work
        self._state: dict = {"procs": [], "shm": None}
        self._started = False
        self._closed = False
        self._finalizer = weakref.finalize(self, _release, self._state)
        atexit.register(self._finalizer)
        # Observability (aggregated into engine.kernel_stats()).
        self.batches = 0
        self.components_parallel = 0
        self.fallbacks = 0

    # -- lifecycle ---------------------------------------------------------------
    def _start(self) -> bool:
        import multiprocessing

        if self._closed:
            return False
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            self.workers = 0
            return False
        procs = []
        for _ in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(child_conn,),
                               daemon=True)
            proc.start()
            child_conn.close()
            procs.append((parent_conn, proc))
        self._state["procs"] = procs
        self._started = True
        return True

    def close(self) -> None:
        """Release worker processes and the shared-memory segment.

        Safe to call multiple times; also runs via ``weakref.finalize``
        and ``atexit`` so segments never leak across test runs, even when
        the owning engine dies on an exception.
        """
        self._closed = True
        if self._finalizer.alive:
            atexit.unregister(self._finalizer)
            self._finalizer()

    def __enter__(self) -> "ParallelSolveExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- snapshot support --------------------------------------------------------
    def __getstate__(self) -> dict:
        """Detach the OS-level state: only configuration + counters travel.

        The forked worker processes, their pipes, the shared-memory
        segment and the ``weakref.finalize`` guard are all bound to this
        process and cannot be pickled (nor deep-copied).  A restored (or
        deep-copied) executor starts cold and re-forks its pool lazily on
        the first accepted batch, exactly like a freshly built one.
        """
        return {
            "workers": self.workers,
            "min_components": self.min_components,
            "min_work": self.min_work,
            "_closed": self._closed,
            "batches": self.batches,
            "components_parallel": self.components_parallel,
            "fallbacks": self.fallbacks,
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._state = {"procs": [], "shm": None}
        self._started = False
        self._finalizer = weakref.finalize(self, _release, self._state)
        atexit.register(self._finalizer)

    # -- batch gate --------------------------------------------------------------
    def accepts(self, components) -> bool:
        """True when a batch is worth shipping to the workers."""
        if self.workers <= 0 or self._closed:
            return False
        if len(components) < self.min_components:
            return False
        work = 0
        for cnss, variables in components:
            work += len(cnss) + len(variables)
            if work >= self.min_work:
                return True
        return False

    # -- marshalling -------------------------------------------------------------
    def _segment(self, nbytes: int):
        from multiprocessing import shared_memory

        shm = self._state.get("shm")
        if shm is not None and shm.size >= nbytes:
            return shm
        if shm is not None:
            shm.close()
            shm.unlink()
        # Process-wide counter: several executors may coexist (one per
        # engine under test), each needing a unique segment name.
        name = f"{_SHM_PREFIX}{os.getpid()}_{next(_segment_ids)}"
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(nbytes, 1 << 16))
        self._state["shm"] = shm
        return shm

    def solve_batch(self, system: MaxMinSystem, components,
                    changed: List[Variable],
                    boundaries: Optional[List[Tuple[int, int]]] = None
                    ) -> None:
        """Solve ``components`` of ``system`` across the worker pool.

        Results (values, ``changed`` report, solver counters) are exactly
        those of the serial loop.  ``boundaries``, when given, receives
        one ``(start, end)`` slice of ``changed`` per component, like the
        serial loop records for :meth:`MaxMinSystem.solve_grouped`.  Any
        worker failure falls back to the in-process path for the whole
        batch — sub-solves are idempotent, so partially written values
        are simply overwritten.
        """
        if not self._started and not self._start():
            self.fallbacks += 1
            self._solve_inline(system, components, changed, boundaries)
            return

        # Size the flat areas (an upper bound on nelems is fine: the
        # actually-serialized count lands in the header).
        int_len = 0
        dbl_len = 0
        for cnss, variables in components:
            nelems = sum(len(v.elements) for v in variables)
            int_len += 3 + 2 * len(cnss) + len(variables) + 2 * nelems
            dbl_len += len(cnss) + 3 * len(variables) + nelems
        shm = self._segment(8 * (int_len + dbl_len))
        ints = memoryview(shm.buf).cast("q")
        dbls = memoryview(shm.buf).cast("d")

        specs: List[Tuple[int, int]] = []
        value_offs: List[int] = []
        io = 0
        do = int_len  # doubles area starts right after the int area
        try:
            for cnss, variables in components:
                specs.append((io, do))
                nelems = 0
                cns_index = {}
                for idx, cns in enumerate(cnss):
                    cns_index[id(cns)] = idx
                    ints[io + 3 + idx] = 1 if cns.shared else 0
                    ints[io + 3 + len(cnss) + idx] = len(cns.elements)
                    dbls[do + idx] = cns.capacity
                counts_off = io + 3 + 2 * len(cnss)
                elems_off = counts_off + len(variables)
                weights_off = do + len(cnss)
                bounds_off = weights_off + len(variables)
                usages_off = bounds_off + len(variables)
                for vidx, var in enumerate(variables):
                    count = 0
                    for elem in var.elements:
                        # A zero-weight variable can cross into constraints
                        # of other components; the solver never reads those
                        # incidences, so they stay home.
                        cidx = cns_index.get(id(elem.constraint))
                        if cidx is None:
                            continue
                        base = elems_off + 2 * nelems
                        ints[base] = cidx
                        ints[base + 1] = elem._cpos
                        dbls[usages_off + nelems] = elem.usage
                        nelems += 1
                        count += 1
                    ints[counts_off + vidx] = count
                    dbls[weights_off + vidx] = var.weight
                    dbls[bounds_off + vidx] = (math.nan if var.bound is None
                                               else var.bound)
                ints[io] = len(cnss)
                ints[io + 1] = len(variables)
                ints[io + 2] = nelems
                value_offs.append(usages_off + nelems)
                io = elems_off + 2 * nelems
                do = value_offs[-1] + len(variables)

            # Round-robin the components over the workers.
            procs = self._state["procs"]
            shares: List[List[Tuple[int, int]]] = [[] for _ in procs]
            for i, spec in enumerate(specs):
                shares[i % len(procs)].append(spec)
            busy = []
            ok = True
            for (conn, proc), share in zip(procs, shares):
                if not share:
                    continue
                try:
                    conn.send((shm.name, share))
                    busy.append(conn)
                except (BrokenPipeError, OSError):
                    ok = False
                    break
            deltas = [0] * len(_COUNTER_NAMES)
            if ok:
                for conn in busy:
                    try:
                        status, payload = conn.recv()
                    except (EOFError, OSError):
                        ok = False
                        break
                    if status != "ok":
                        ok = False
                        break
                    for i, delta in enumerate(payload):
                        deltas[i] += delta
            if not ok:
                # Worker trouble: disable ourselves and redo inline.
                self.fallbacks += 1
                self.workers = 0
                self._solve_inline(system, components, changed, boundaries)
                return

            self.batches += 1
            self.components_parallel += len(components)
            for name, delta in zip(_COUNTER_NAMES, deltas):
                setattr(system, name, getattr(system, name) + delta)
            # Apply values and build the changed report in submission
            # order — the order the serial loop reports in.
            for (cnss, variables), voff in zip(components, value_offs):
                start = len(changed)
                for i, var in enumerate(variables):
                    value = dbls[voff + i]
                    if value != var.value:
                        var.value = value
                        changed.append(var)
                if boundaries is not None:
                    boundaries.append((start, len(changed)))
        finally:
            # Memoryviews into shm.buf must die before the segment can be
            # closed/unlinked later.
            del ints, dbls

    @staticmethod
    def _solve_inline(system: MaxMinSystem, components,
                      changed: List[Variable],
                      boundaries: Optional[List[Tuple[int, int]]]) -> None:
        """Serial fallback, identical to the loop in ``solve()``."""
        for cnss, variables in components:
            start = len(changed)
            system._solve_subsystem(cnss, variables, changed)
            if boundaries is not None:
                boundaries.append((start, len(changed)))

    # -- observability -----------------------------------------------------------
    def stats(self) -> dict:
        return {
            "workers": self.workers,
            "batches": self.batches,
            "components_parallel": self.components_parallel,
            "fallbacks": self.fallbacks,
        }


class ShardedSurfEngine(SurfEngine):
    """Zone-partitioned SURF engine (Layer 2 of the sharded kernel).

    Each name in ``shard_names`` (the platform's top-level zones) gets its
    own :class:`CpuModel` and :class:`NetworkModel`; the inherited
    ``cpu_model``/``network_model`` pair is the *root shard*, holding the
    root zone's resources, every inter-zone link, and every cross-zone
    flow.  Bit-identity with the flat engine rests on four shared pieces
    of global state:

    * constraint ids — platform declaration indices (satellite 1);
    * variable ids — one shared allocator per model kind;
    * heap sequence numbers — one shared counter per model kind;
    * the engine clock and trace heap — inherited, engine-global.

    The share phase merges per-shard solve results back into flat order
    (detached variables by id, then components by trigger id) before
    rescheduling, and the update phase pops the per-shard heaps merged by
    ``(date, seq)`` — so every simulated date, completion order and
    tie-break matches the flat kernel to the bit.
    """

    def __init__(self, shard_names=(),
                 network_config: Optional[NetworkModelConfig] = None) -> None:
        super().__init__(CpuModel(), NetworkModel(network_config))
        # Shared per-kind allocators: variable ids and heap sequence
        # numbers must be global or id/seq-based tie-breaks would diverge
        # from the flat kernel.
        self._cpu_var_ids = itertools.count()
        self._net_var_ids = itertools.count()
        self._cpu_seq = itertools.count()
        self._net_seq = itertools.count()
        #: Shard key "" is the root shard.
        self.cpu_shards: Dict[str, CpuModel] = {"": self.cpu_model}
        self.net_shards: Dict[str, NetworkModel] = {"": self.network_model}
        for name in shard_names:
            self.cpu_shards[name] = CpuModel()
            self.net_shards[name] = NetworkModel(self.network_model.config)
        self._cpu_list = list(self.cpu_shards.values())
        self._net_list = list(self.net_shards.values())
        for model in self._cpu_list:
            model.system._var_ids = self._cpu_var_ids
            model._seq = self._cpu_seq
        for model in self._net_list:
            model.system._var_ids = self._net_var_ids
            model._seq = self._net_seq
        self.models = self._cpu_list + self._net_list
        self._system_model: Dict[int, FluidModel] = {
            id(model.system): model for model in self.models}
        #: Count of gateway handoffs (constraint closures migrated into
        #: the root shard by cross-zone communications).
        self.migrations = 0

    # -- snapshot support --------------------------------------------------------
    def __getstate__(self) -> dict:
        """Drop the ``id()``-keyed system→model map; it rebuilds on load.

        Object identities change across a pickle (or deepcopy) round-trip,
        so a map keyed by ``id(system)`` would silently miss every lookup
        in the restored engine — resources would fall back to the root
        models and shard routing would break.
        """
        state = self.__dict__.copy()
        state.pop("_system_model", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._system_model = {
            id(model.system): model for model in self.models}

    # -- shard resolution --------------------------------------------------------
    @staticmethod
    def shard_key(zone) -> str:
        """The shard key of a zone: its top-level ancestor's name.

        The root zone (and ``None``) map to ``""``, the root shard.
        """
        if zone is None or zone.parent is None:
            return ""
        while zone.parent is not None and zone.parent.parent is not None:
            zone = zone.parent
        return zone.name

    def model_of(self, resource: Resource) -> FluidModel:
        model = self._system_model.get(id(resource._system))
        if model is not None:
            return model
        return super().model_of(resource)

    def add_cpu(self, name, speed, cores=1, availability_trace=None,
                state_trace=None, index=None, zone=None) -> CpuResource:
        key = self.shard_key(zone)
        model = self.cpu_shards.get(key, self.cpu_model)
        return model.add_cpu(name, speed, cores,
                             availability_trace=availability_trace,
                             state_trace=state_trace, index=index)

    def add_link(self, name, bandwidth, latency=0.0, shared=True,
                 bandwidth_trace=None, state_trace=None, index=None,
                 zone=None) -> LinkResource:
        key = self.shard_key(zone)
        model = self.net_shards.get(key, self.network_model)
        return model.add_link(name, bandwidth, latency, shared,
                              bandwidth_trace=bandwidth_trace,
                              state_trace=state_trace, index=index)

    # -- gateway handoff ---------------------------------------------------------
    def communicate(self, links, size, extra_latency=0.0, rate=None,
                    priority=1.0):
        """Start a transfer, migrating cross-zone routes to the root shard.

        A route wholly inside one shard runs in that shard's network
        model.  A route spanning several shards is handed off at the
        gateway: every touched link constraint — with the whole
        weakly-connected closure of variables and constraints entangled
        with it — migrates into the root shard first, ids intact, so the
        flow's LMM component lives in exactly one system.
        """
        owners = {id(link._system) for link in links}
        if len(owners) == 1:
            model = self._system_model[owners.pop()]
        else:
            model = self.network_model
            if owners:
                self._migrate_links(links)
        return model.communicate(links, size, extra_latency, rate, priority)

    def _migrate_links(self, links) -> None:
        root_model = self.network_model
        root_system = root_model.system
        seeds_by_model: Dict[int, List[Constraint]] = {}
        for link in links:
            if link._system is root_system:
                continue
            seeds_by_model.setdefault(id(link._system), []).append(
                link.constraint)
        for sys_id, seeds in seeds_by_model.items():
            src_model = self._system_model[sys_id]
            self._migrate_closure(src_model, seeds)
            self.migrations += 1

    def _migrate_closure(self, src_model: NetworkModel,
                         seeds: List[Constraint]) -> None:
        """Move the weakly-connected closure of ``seeds`` to the root shard.

        Unlike the solver's component traversal, the closure follows
        zero-weight edges too: a variable's elements must all live in the
        system that owns the variable, or the incidence bookkeeping
        (``expand``/``remove_variable``/dirtiness) would straddle systems.
        """
        dst_model = self.network_model
        src_system, dst_system = src_model.system, dst_model.system
        cnss: set = set()
        moved_vars: set = set()
        stack = list(seeds)
        while stack:
            cns = stack.pop()
            if cns in cnss:
                continue
            cnss.add(cns)
            for elem in cns.elements:
                var = elem.variable
                if var in moved_vars:
                    continue
                moved_vars.add(var)
                for other in var.elements:
                    if other.constraint not in cnss:
                        stack.append(other.constraint)

        # Constraints: membership lists, dirtiness, resource back-pointers.
        src_system.constraints = [c for c in src_system.constraints
                                  if c not in cnss]
        dst_system.constraints.extend(sorted(cnss, key=lambda c: c.id))
        for cns in cnss:
            if cns in src_system._modified:
                src_system._modified.discard(cns)
                dst_system._modified.add(cns)
            resource = cns.data
            if isinstance(resource, Resource):
                resource._system = dst_system
                if isinstance(resource, LinkResource):
                    src_model.links.pop(resource.name, None)
                    dst_model.links[resource.name] = resource

        # Variables and their actions.
        moved_actions: set = set()
        for var in moved_vars:
            src_system._vars.pop(var.id, None)
            dst_system._vars[var.id] = var
            if var in src_system._detached_dirty:  # pragma: no cover
                src_system._detached_dirty.discard(var)
                dst_system._detached_dirty.add(var)
            action = var.data
            if action is not None and getattr(action, "model", None) is src_model:
                moved_actions.add(action)
                action.model = dst_model
                src_model.running.discard(action)
                if action.is_running():
                    dst_model.running.add(action)

        # Heap entries migrate verbatim: the shared sequence counter makes
        # the tuples globally ordered, so pushing them unchanged into the
        # root heap preserves every (date, seq) tie-break.
        if moved_actions:
            keep = []
            for entry in src_model._heap:
                if entry[3] in moved_actions:
                    heapq.heappush(dst_model._heap, entry)
                else:
                    keep.append(entry)
            heapq.heapify(keep)
            src_model._heap = keep

    # -- merged phases -----------------------------------------------------------
    def _share_phase(self, now: float) -> float:
        for model in self.models:
            model.clock = now
        for kind_list in (self._cpu_list, self._net_list):
            entries = []
            for model in kind_list:
                # Clean shards skip the solve entirely — same gate the flat
                # kernel applies in share_resources, so the per-step cost
                # scales with the number of *dirty* shards, not the shard
                # count.
                system = model.system
                if not system._modified and not system._detached_dirty:
                    continue
                changed, groups = system.solve_grouped()
                if not changed:
                    continue
                detached_end = groups[0][1] if groups else len(changed)
                for i in range(detached_end):
                    var = changed[i]
                    entries.append(((0, var.id, 0), var, model))
                for trigger, start, end in groups:
                    for j in range(start, end):
                        entries.append(((1, trigger, j - start),
                                        changed[j], model))
            # Flat order: detached variables by id, then components by
            # trigger id — globally valid because ids are global.
            entries.sort(key=lambda e: e[0])
            for _key, var, model in entries:
                action = var.data
                if action is None or not action.is_running():
                    continue
                action.sync_remaining(now)
                action.last_rate = action.rate
                model._reschedule_action(action, now)
        min_delta = math.inf
        for model in self.models:
            next_date = model.next_event_date()
            if math.isinf(next_date):
                continue
            delta = max(0.0, next_date - now)
            if delta < min_delta:
                min_delta = delta
        return min_delta

    def _update_phase(self, now: float, delta: float):
        for model in self.models:
            model.clock = now
        completed = []
        horizon = now + TIME_EPSILON
        for kind_list in (self._cpu_list, self._net_list):
            # Only shards with a due head participate in the merge scan.
            # Firing an event never pushes new heap entries (completions
            # pop, latency ends only dirty the system for the next solve),
            # so the due set cannot grow while the phase runs.
            due = []
            for model in kind_list:
                heap = model._heap
                while heap:
                    date, seq, version, action = heap[0]
                    if (version != action._event_version
                            or not action.is_running()):
                        heapq.heappop(heap)
                        continue
                    break
                if heap and heap[0][0] <= horizon:
                    due.append(model)
            if not due:
                continue
            while True:
                best_model = None
                best_key = None
                for model in due:
                    heap = model._heap
                    while heap:
                        date, seq, version, action = heap[0]
                        if (version != action._event_version
                                or not action.is_running()):
                            heapq.heappop(heap)
                            continue
                        break
                    if not heap:
                        continue
                    date, seq = heap[0][0], heap[0][1]
                    if date > horizon:
                        continue
                    if best_key is None or (date, seq) < best_key:
                        best_key = (date, seq)
                        best_model = model
                if best_model is None:
                    break
                _date, _seq, _version, action = heapq.heappop(best_model._heap)
                action._event_version += 1
                best_model._fire_event(action, now, completed)
        return completed

    # -- conservative window / observability -------------------------------------
    def lookahead(self) -> dict:
        """The conservative time-window bound between shards.

        The window within which a shard could safely advance without
        hearing from the others is ``earliest local completion +
        min cross-shard lookahead``, where the lookahead is the smallest
        latency of any inter-zone link (all of which live in the root
        shard): no remote event can influence a shard sooner than one
        gateway latency after it fires.  The engine currently *commits*
        only the degenerate synchronous window — the global minimum event
        date, bit-identical to the flat kernel by construction — and
        reports the derived bound here for observability.
        """
        min_gateway_latency = min(
            (link.latency for link in self.network_model.links.values()),
            default=math.inf)
        earliest = math.inf
        for model in self.models:
            earliest = min(earliest, model.next_event_date())
        window = earliest
        if not math.isinf(min_gateway_latency) and not math.isinf(earliest):
            window = earliest + min_gateway_latency
        return {
            "min_gateway_latency": min_gateway_latency,
            "earliest_completion": earliest,
            "window": window,
        }

    def kernel_stats(self) -> dict:
        stats = super().kernel_stats()
        stats["shards"] = {
            "count": len(self.cpu_shards),
            "names": [name or "<root>" for name in self.cpu_shards],
            "migrations": self.migrations,
        }
        stats["window"] = self.lookahead()
        return stats
