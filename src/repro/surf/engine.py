"""The SURF engine: advancing simulated time across all resource models.

The engine owns the simulated clock and repeatedly performs the fluid
simulation loop described in DESIGN.md §2.2:

1. ask every model to *share resources* (solve its MaxMin system) and report
   the date of its next action completion;
2. find the earliest of: action completions, trace events (availability
   changes, failures), and the caller-provided bound (used by the upper
   layers for timers and sleeps);
3. advance the clock to that date, update all running actions, apply the
   trace events that fire, and fail the actions that were using a resource
   that just died;
4. hand the completed and failed actions back to the caller (the MSG/GRAS/
   SMPI kernel) which resumes the simulated processes waiting on them.

The engine is deliberately independent from the process layer so it can be
unit-tested (and benchmarked) with raw actions.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import List, Optional, Tuple

from repro.surf.action import Action
from repro.surf.cpu import CpuModel, CpuResource
from repro.surf.network import LinkResource, NetworkModel
from repro.surf.resource import Resource
from repro.surf.trace import TraceIterator, TraceKind

__all__ = ["SurfEngine", "StepResult"]

_TIME_EPSILON = 1e-9


class StepResult:
    """Outcome of one engine step.

    Attributes
    ----------
    time:
        The new simulated date.
    completed:
        Actions that finished normally during the step.
    failed:
        Actions that failed because a resource they used was turned off.
    reached_bound:
        True when the step stopped at the caller-provided ``until`` bound
        rather than at an action completion or trace event.
    state_changes:
        List of ``(resource, is_on)`` pairs for resources whose on/off state
        changed during the step (used by the process layer to kill the
        processes of a failed host).
    speed_changes:
        List of ``(resource, availability)`` pairs for resources whose
        availability factor changed during the step (trace-driven external
        load; the process layer forwards them to its speed observers).
    """

    __slots__ = ("time", "completed", "failed", "reached_bound",
                 "state_changes", "speed_changes")

    def __init__(self, time: float, completed: List[Action],
                 failed: List[Action], reached_bound: bool,
                 state_changes: Optional[List[Tuple[Resource, bool]]] = None,
                 speed_changes: Optional[List[Tuple[Resource, float]]] = None
                 ) -> None:
        self.time = time
        self.completed = completed
        self.failed = failed
        self.reached_bound = reached_bound
        self.state_changes = state_changes or []
        self.speed_changes = speed_changes or []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StepResult(time={self.time}, completed={len(self.completed)},"
                f" failed={len(self.failed)}, bound={self.reached_bound})")


class SurfEngine:
    """Couples the CPU and network models with a shared simulated clock."""

    def __init__(self, cpu_model: Optional[CpuModel] = None,
                 network_model: Optional[NetworkModel] = None) -> None:
        self.clock = 0.0
        self.cpu_model = cpu_model or CpuModel()
        self.network_model = network_model or NetworkModel()
        self.models = [self.cpu_model, self.network_model]
        # heap of (date, sequence, resource, kind, value, iterator)
        self._trace_heap: List[Tuple[float, int, Resource, TraceKind,
                                     float, TraceIterator]] = []
        self._seq = itertools.count()
        # Resources whose traces are already scheduled, keyed by kind and
        # name (stable across pickling, unlike id()): registering twice
        # must not double-schedule every event.
        self._trace_registered: set = set()
        self._zero_progress_steps = 0
        #: Actions completed/failed during the last :meth:`run_until_idle`.
        self.last_completed: List[Action] = []
        self.last_failed: List[Action] = []
        #: Optional ParallelSolveExecutor shared by the models' systems
        #: (see :meth:`enable_parallel_solves`).
        self.executor = None

    # -- parallel solving / lifecycle --------------------------------------------------
    def enable_parallel_solves(self, workers: Optional[int] = None,
                               min_components: int = 2,
                               min_work: int = 256) -> None:
        """Attach one shared :class:`ParallelSolveExecutor` to every model.

        With ``workers=None`` the pool size comes from ``REPRO_PARALLEL``
        (0 disables); a 0-worker executor never accepts a batch, so this
        is always safe to call.  The pool forks lazily on the first batch
        that passes the threshold.
        """
        from repro.surf.shard import ParallelSolveExecutor
        if self.executor is not None:
            self.executor.close()
        self.executor = ParallelSolveExecutor(
            workers=workers, min_components=min_components,
            min_work=min_work)
        for model in self.models:
            model.system.executor = self.executor

    def close(self) -> None:
        """Release kernel-owned OS resources (worker pool, shared memory).

        Idempotent; the executor also guards itself with
        ``weakref.finalize``/``atexit``, so a missed ``close()`` cannot
        leak ``/dev/shm`` segments — this just releases them immediately.
        """
        if self.executor is not None:
            self.executor.close()
            self.executor = None
            for model in self.models:
                model.system.executor = None

    def __enter__(self) -> "SurfEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- model dispatch ----------------------------------------------------------------
    def model_of(self, resource: Resource):
        """The fluid model simulating ``resource``."""
        if isinstance(resource, CpuResource):
            return self.cpu_model
        if isinstance(resource, LinkResource):
            return self.network_model
        raise TypeError(f"unknown resource kind: {resource!r}")

    def add_cpu(self, name: str, speed: float, cores: int = 1,
                availability_trace=None, state_trace=None,
                index: Optional[int] = None, zone=None) -> CpuResource:
        """Create a CPU resource in the appropriate model.

        ``zone`` (the declaring :class:`~repro.platform.routing.NetZone`)
        selects the shard in a sharded engine; the flat engine ignores it.
        """
        return self.cpu_model.add_cpu(
            name, speed, cores, availability_trace=availability_trace,
            state_trace=state_trace, index=index)

    def add_link(self, name: str, bandwidth: float, latency: float = 0.0,
                 shared: bool = True, bandwidth_trace=None, state_trace=None,
                 index: Optional[int] = None, zone=None) -> LinkResource:
        """Create a link resource in the appropriate model (see add_cpu)."""
        return self.network_model.add_link(
            name, bandwidth, latency, shared,
            bandwidth_trace=bandwidth_trace, state_trace=state_trace,
            index=index)

    def execute(self, cpu: CpuResource, flops: float, priority: float = 1.0,
                bound: Optional[float] = None):
        """Start a computation on ``cpu`` in its owning model."""
        return self.model_of(cpu).execute(cpu, flops, priority, bound)

    def communicate(self, links, size: float, extra_latency: float = 0.0,
                    rate: Optional[float] = None, priority: float = 1.0):
        """Start a transfer over ``links`` in the owning network model.

        In a sharded engine this is where cross-zone communications are
        handed off: link constraints spread over several shards migrate
        into the root shard before the flow is created.
        """
        return self.network_model.communicate(links, size, extra_latency,
                                              rate, priority)

    def kernel_stats(self) -> dict:
        """Aggregated kernel observability counters.

        Sums :meth:`FluidModel.solver_stats` over every model (and, in a
        sharded engine, every shard) and annexes the parallel-executor
        stats when one is attached.  The platform layer merges its route
        cache stats into the same dict (see ``Platform.kernel_stats``).
        """
        solver: dict = {}
        for model in self.models:
            for key, value in model.solver_stats().items():
                solver[key] = solver.get(key, 0) + value
        stats = {"solver": solver, "models": len(self.models)}
        if self.executor is not None:
            stats["parallel"] = self.executor.stats()
        return stats

    # -- resource registration -------------------------------------------------------
    def register_resource_traces(self, resource: Resource) -> None:
        """Schedule the availability and state trace events of a resource.

        The platform loader calls this automatically when it materializes
        a trace-carrying resource; calling it again (loader + user code,
        or a re-realize) is a no-op — each trace is scheduled exactly
        once, otherwise every availability/state flip would fire twice.
        Availability traces are validated here (values in ``[0, 1]``), so
        a bad trace fails at registration with the trace name instead of
        mid-step.
        """
        key = (type(resource).__name__, resource.name)
        if key in self._trace_registered:
            return
        if resource.availability_trace is not None:
            # Validate before marking registered: a rejected trace must
            # not poison the idempotency set and block a corrected retry.
            resource.availability_trace.validate_availability()
        self._trace_registered.add(key)
        if resource.availability_trace is not None:
            self._schedule_next(resource, TraceKind.AVAILABILITY,
                                resource.availability_trace.iter_from(0.0))
        if resource.state_trace is not None:
            self._schedule_next(resource, TraceKind.STATE,
                                resource.state_trace.iter_from(0.0))

    def _schedule_next(self, resource: Resource, kind: TraceKind,
                       iterator: TraceIterator) -> None:
        nxt = iterator.next_event()
        if nxt is None:
            return
        date, value = nxt
        heapq.heappush(self._trace_heap,
                       (date, next(self._seq), resource, kind, value, iterator))

    def schedule_failure(self, resource: Resource, at: float,
                         restore_at: Optional[float] = None) -> None:
        """Explicitly inject a transient failure without a trace file.

        ``resource`` turns off at ``at`` and, if ``restore_at`` is given,
        turns back on at that date.
        """
        events = [(at, 0.0)]
        if restore_at is not None:
            if restore_at <= at:
                raise ValueError("restore_at must be after the failure date")
            events.append((restore_at, 1.0))
        from repro.surf.trace import Trace
        trace = Trace(events, name=f"failure:{resource.name}")
        self._schedule_next(resource, TraceKind.STATE, trace.iter_from(0.0))

    # -- time queries -----------------------------------------------------------------
    def next_trace_event_date(self) -> float:
        """Date of the next scheduled trace event (inf if none)."""
        if not self._trace_heap:
            return math.inf
        return self._trace_heap[0][0]

    def has_running_actions(self) -> bool:
        """True when at least one action is still running in any model."""
        return any(bool(model.running) for model in self.models)

    # -- main loop ---------------------------------------------------------------------
    def step(self, until: float = math.inf) -> Optional[StepResult]:
        """Advance the simulation by one event.

        Parameters
        ----------
        until:
            Upper bound on the new date (used by the process layer for its
            timers).  The engine never advances beyond it.

        Returns
        -------
        A :class:`StepResult`, or ``None`` when nothing can ever happen
        again (no running action, no pending trace event and no bound).
        """
        now = self.clock
        if until < now - _TIME_EPSILON:
            raise ValueError(f"cannot step backwards (until={until} < now={now})")

        min_delta = self._share_phase(now)

        trace_date = self.next_trace_event_date()
        delta_trace = trace_date - now if not math.isinf(trace_date) else math.inf
        delta_bound = until - now if not math.isinf(until) else math.inf

        delta = min(min_delta, delta_trace, delta_bound)
        if math.isinf(delta):
            return None
        delta = max(0.0, delta)

        new_time = now + delta
        self.clock = new_time

        completed = self._update_phase(new_time, delta)

        state_changes: List[Tuple[Resource, bool]] = []
        speed_changes: List[Tuple[Resource, float]] = []
        failed: List[Action] = []
        if self._trace_heap:
            failed.extend(self._fire_trace_events(new_time, state_changes,
                                                  speed_changes))

        reached_bound = (delta_bound <= min_delta + _TIME_EPSILON
                         and delta_bound <= delta_trace + _TIME_EPSILON
                         and not math.isinf(until))

        # Spin guard: a model reporting "something completes in 0 s" while
        # nothing actually completes would loop here forever without
        # advancing the clock (the loopback-communication hang was exactly
        # that).  Turn such a wedge into a loud error instead.
        if (delta <= 0 and not completed and not failed
                and not state_changes and not reached_bound):
            self._zero_progress_steps += 1
            if self._zero_progress_steps > 10000:
                raise RuntimeError(
                    f"SURF engine stalled at t={self.clock:g}: "
                    f"{self._zero_progress_steps} consecutive zero-delay "
                    f"steps without any action completing")
        else:
            self._zero_progress_steps = 0
        return StepResult(new_time, completed, failed, reached_bound,
                          state_changes, speed_changes)

    def _share_phase(self, now: float) -> float:
        """Solve every model's system; return the earliest event delay.

        Overridden by the sharded engine, which merges the per-shard
        solve results into the flat reschedule order before computing the
        next-event dates.
        """
        min_delta = math.inf
        for model in self.models:
            delta = model.share_resources(now)
            if delta < min_delta:
                min_delta = delta
        return min_delta

    def _update_phase(self, now: float, delta: float) -> List[Action]:
        """Fire every model's due events; return the completed actions.

        Overridden by the sharded engine, which pops the per-shard heaps
        merged by ``(date, seq)`` so the completion order matches the
        flat single-heap pop order.
        """
        completed: List[Action] = []
        for model in self.models:
            # Peek before paying the call: most steps fire events in one
            # model while the others have nothing due yet.  Stale heap
            # heads (lazy removals) only ever make the peek pessimistic.
            heap = model._heap
            if heap and heap[0][0] <= now + _TIME_EPSILON:
                completed.extend(model.update_actions_state(now, delta))
            else:
                model.clock = now
        return completed

    def _fire_trace_events(self, now: float,
                           state_changes: Optional[List[Tuple[Resource, bool]]]
                           = None,
                           speed_changes: Optional[List[Tuple[Resource, float]]]
                           = None) -> List[Action]:
        """Apply every trace event due at or before ``now``."""
        failed: List[Action] = []
        while self._trace_heap and self._trace_heap[0][0] <= now + _TIME_EPSILON:
            date, _, resource, kind, value, iterator = heapq.heappop(
                self._trace_heap)
            if kind is TraceKind.AVAILABILITY:
                # The capacity flows through update_constraint_capacity
                # (the only-write-path rule); the owning model then
                # resyncs whatever per-action state mirrors the capacity
                # (multi-core per-core bounds).
                resource.set_availability(value)
                self.model_of(resource).on_resource_capacity_changed(resource)
                if speed_changes is not None:
                    speed_changes.append((resource, value))
            else:
                was_on = resource.is_on
                resource.apply_state_value(value)
                if was_on != resource.is_on and state_changes is not None:
                    state_changes.append((resource, resource.is_on))
                if was_on and not resource.is_on:
                    failed.extend(self._fail_actions_using(resource, now))
            # Re-arm the next event of this trace (periodic traces never end).
            nxt = iterator.next_event()
            if nxt is not None:
                ndate, nvalue = nxt
                heapq.heappush(self._trace_heap,
                               (ndate, next(self._seq), resource, kind,
                                nvalue, iterator))
        return failed

    def _fail_actions_using(self, resource: Resource,
                            now: float) -> List[Action]:
        if isinstance(resource, (CpuResource, LinkResource)):
            return list(self.model_of(resource).fail_actions_on(resource, now))
        return []

    def fail_host(self, cpu: CpuResource, now: Optional[float] = None) -> List[Action]:
        """Immediately fail a CPU (used by explicit ``host.turn_off()``)."""
        date = self.clock if now is None else now
        cpu.turn_off()
        return self.model_of(cpu).fail_actions_on(cpu, date)

    def restore_host(self, cpu: CpuResource) -> None:
        """Turn a failed CPU back on."""
        cpu.turn_on()

    def fail_link(self, link: LinkResource,
                  now: Optional[float] = None) -> List[Action]:
        """Immediately fail a link (explicit ``link.turn_off()``).

        Every transfer whose route crosses the link fails, including
        transfers still paying their route latency (their zero-weight LMM
        variable keeps them registered on the link's constraint).
        """
        date = self.clock if now is None else now
        link.turn_off()
        return self.model_of(link).fail_actions_on(link, date)

    def restore_link(self, link: LinkResource) -> None:
        """Turn a failed link back on."""
        link.turn_on()

    def run_until_idle(self, max_time: float = math.inf) -> float:
        """Convenience loop for model-level tests: run until nothing remains.

        Returns the final simulated date.  The actions that completed or
        failed along the way — including those of the final step — are
        exposed as :attr:`last_completed` and :attr:`last_failed` so
        model-level benchmarks and tests can assert on them.
        """
        self.last_completed: List[Action] = []
        self.last_failed: List[Action] = []
        while True:
            result = self.step(until=max_time)
            if result is None:
                break
            self.last_completed.extend(result.completed)
            self.last_failed.extend(result.failed)
            if result.time >= max_time:
                break
            if (not self.has_running_actions()
                    and math.isinf(self.next_trace_event_date())):
                break
        return self.clock
