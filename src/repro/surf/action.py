"""Actions: the unit of work simulated by a SURF model.

An :class:`Action` is either a computation (``CpuAction``) or a data
transfer (``NetworkAction``).  It carries a total *cost* (flops or bytes), a
*remaining* amount, and is tied to one LMM :class:`~repro.surf.lmm.Variable`
whose solved value is the instantaneous rate the action progresses at.

The state machine matches SimGrid's::

    RUNNING --> DONE        (remaining reached 0)
            --> FAILED      (a resource it uses was turned off)
            --> CANCELLED   (explicitly cancelled by the application)

Suspension is not a separate state: a suspended action stays RUNNING with a
sharing weight of zero, so it simply receives no capacity until resumed.

Lazy progress accounting
------------------------

The models no longer advance every action at every engine step.  Instead an
action records the date its remaining amount was last synchronised
(``last_sync``) and the rate in force since then (``last_rate``); its
predicted completion date sits in the owning model's event heap.  The
stored amount is only re-synchronised when the rate actually changes (the
LMM solver reports exactly those variables) or when the action terminates.
Reading :attr:`remaining` extrapolates from the stored amount at the
model's current clock, so external observers always see up-to-date
progress without any per-step work.
"""

from __future__ import annotations

import enum
import math
from typing import Optional

from repro.surf.lmm import Variable

__all__ = ["Action", "ActionState"]


class ActionState(enum.Enum):
    """Lifecycle states of an action."""

    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


class Action:
    """Base class for everything that consumes simulated resources.

    Parameters
    ----------
    model:
        The owning model (CpuModel or NetworkModel); may be ``None`` in unit
        tests exercising the state machine alone.
    cost:
        Total amount of work (flops for computations, bytes for transfers).
    priority:
        Sharing weight passed to the LMM system.  Higher priority actions
        receive a proportionally larger share of contended resources.
    """

    __slots__ = ("model", "cost", "priority", "state", "variable",
                 "start_time", "finish_time", "data", "_suspended", "bound",
                 "_remaining", "last_sync", "last_rate", "_event_version")

    def __init__(self, model, cost: float, priority: float = 1.0) -> None:
        if cost < 0:
            raise ValueError("action cost must be >= 0")
        if priority < 0:
            raise ValueError("action priority must be >= 0")
        self.model = model
        self.cost = float(cost)
        self.priority = float(priority)
        self.state = ActionState.RUNNING
        self.variable: Optional[Variable] = None
        self.start_time: float = getattr(model, "clock", 0.0) if model else 0.0
        self.finish_time: Optional[float] = None
        self.data = None          # opaque back-pointer (activity, simcall...)
        self._suspended = False
        self.bound: Optional[float] = None
        # -- lazy progress bookkeeping
        self._remaining = float(cost)
        self.last_sync: float = self.start_time
        self.last_rate: float = 0.0
        # Bumped whenever the action's scheduled model event becomes stale;
        # the model's heap entries carry the version they were pushed with.
        self._event_version = 0

    # -- rate -------------------------------------------------------------------
    @property
    def rate(self) -> float:
        """Instantaneous progress rate from the last LMM solve."""
        if self.variable is None or self._suspended:
            return 0.0
        return self.variable.value

    @property
    def suspended(self) -> bool:
        """Whether the action is currently suspended (rate forced to 0)."""
        return self._suspended

    # -- lazy remaining ----------------------------------------------------------
    @property
    def remaining(self) -> float:
        """Remaining work, extrapolated to the model's current clock."""
        rem = self._remaining
        if (self.is_running() and self.last_rate > 0.0
                and self.model is not None):
            if math.isinf(self.last_rate):
                return 0.0
            elapsed = getattr(self.model, "clock", self.last_sync) - self.last_sync
            if elapsed > 0:
                rem = max(0.0, rem - self.last_rate * elapsed)
        return rem

    @remaining.setter
    def remaining(self, value: float) -> None:
        self._remaining = float(value)
        self.last_sync = getattr(self.model, "clock", 0.0) if self.model else 0.0
        # The completion heap is the only thing that finishes actions now,
        # so an external write to the remaining amount must displace the
        # previously predicted completion date.
        if self.model is not None and self.is_running():
            self.model._reschedule_action(self, self.last_sync)

    def sync_remaining(self, now: float) -> float:
        """Fold the progress made since ``last_sync`` into the stored amount.

        Must be called (by the owning model) whenever the action's rate is
        about to change, so the interval [last_sync, now] is accounted at
        the rate that was actually in force.  Returns the updated amount.
        """
        if self.is_running():
            if math.isinf(self.last_rate):
                self._remaining = 0.0
            elif self.last_rate > 0.0 and now > self.last_sync:
                self._remaining = max(
                    0.0, self._remaining - self.last_rate * (now - self.last_sync))
        self.last_sync = now
        return self._remaining

    # -- state transitions --------------------------------------------------------
    def is_running(self) -> bool:
        return self.state is ActionState.RUNNING

    def finish(self, now: float, state: ActionState) -> None:
        """Terminate the action in ``state`` at date ``now``."""
        if not self.is_running():
            return
        self.sync_remaining(now)
        self.state = state
        self.finish_time = now
        if self.model is not None:
            self.model.on_action_finished(self)

    def cancel(self, now: float) -> None:
        """Cancel the action (``MSG_task_cancel``)."""
        self.finish(now, ActionState.CANCELLED)

    def fail(self, now: float) -> None:
        """Mark the action failed because a resource it uses went down."""
        self.finish(now, ActionState.FAILED)

    def suspend(self) -> None:
        """Stop the action's progress without discarding its state."""
        if self._suspended or not self.is_running():
            return
        self._suspended = True
        if self.model is not None:
            self.model.on_action_priority_changed(self)

    def resume(self) -> None:
        """Resume a suspended action."""
        if not self._suspended or not self.is_running():
            return
        self._suspended = False
        if self.model is not None:
            self.model.on_action_priority_changed(self)

    def set_priority(self, priority: float) -> None:
        """Change the sharing weight of the action."""
        if priority < 0:
            raise ValueError("action priority must be >= 0")
        self.priority = float(priority)
        if self.model is not None:
            self.model.on_action_priority_changed(self)

    def set_bound(self, bound: Optional[float]) -> None:
        """Set the maximum rate of the action (``None`` removes the cap)."""
        if bound is not None and bound < 0:
            raise ValueError("action bound must be >= 0 or None")
        self.bound = bound
        if self.model is not None:
            self.model.on_action_priority_changed(self)

    # -- progress ----------------------------------------------------------------
    def effective_weight(self) -> float:
        """Weight to hand to the LMM system (0 when suspended)."""
        return 0.0 if self._suspended else self.priority

    def time_to_completion(self) -> float:
        """Time needed to finish at the current rate (inf if stalled)."""
        if not self.is_running():
            return 0.0
        remaining = self.remaining
        if remaining <= 0:
            return 0.0
        rate = self.rate
        if rate <= 0:
            return math.inf
        if math.isinf(rate):
            return 0.0
        return remaining / rate

    def progress(self) -> float:
        """Fraction of the work already performed, in ``[0, 1]``."""
        if self.cost <= 0:
            return 1.0 if not self.is_running() or self.remaining <= 0 else 0.0
        return 1.0 - self.remaining / self.cost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(cost={self.cost}, "
                f"remaining={self.remaining:.6g}, state={self.state.value})")
