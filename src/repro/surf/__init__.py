"""SURF — the virtual-platform simulation kernel (paper section "SURF").

SURF is the lowest layer of the SimGrid stack: it simulates the *platform*
(CPUs, network links, multi-hop routes) using a fluid model in which every
running activity (a computation or a data transfer) receives a share of the
capacity of the resources it uses.  Shares are computed with the unifying
**MaxMin fairness** model described in the paper: allocate capacity to all
tasks so as to maximise the minimum allocation over all tasks.

Public entry points:

* :class:`repro.surf.lmm.MaxMinSystem` — the Linear MaxMin solver;
* :class:`repro.surf.cpu.CpuModel` and :class:`repro.surf.network.NetworkModel`
  — the resource models built on top of it;
* :class:`repro.surf.engine.SurfEngine` — the time-advancing loop;
* :class:`repro.surf.trace.Trace` — trace-driven availability and failures.
"""

from repro.surf.action import Action, ActionState
from repro.surf.cpu import CpuModel, CpuResource, CpuAction
from repro.surf.engine import SurfEngine
from repro.surf.lmm import MaxMinSystem, Variable, Constraint
from repro.surf.network import (
    LinkResource,
    NetworkAction,
    NetworkModel,
    NetworkModelConfig,
)
from repro.surf.resource import Resource
from repro.surf.trace import Trace, TraceEvent, TraceKind

__all__ = [
    "Action",
    "ActionState",
    "Constraint",
    "CpuAction",
    "CpuModel",
    "CpuResource",
    "LinkResource",
    "MaxMinSystem",
    "NetworkAction",
    "NetworkModel",
    "NetworkModelConfig",
    "Resource",
    "SurfEngine",
    "Trace",
    "TraceEvent",
    "TraceKind",
    "Variable",
]
