"""Resources: the simulated hardware entities managed by SURF models.

A :class:`Resource` wraps one LMM :class:`~repro.surf.lmm.Constraint` and
adds what the paper's SURF panel describes:

* a *peak capacity* (CPU speed in flop/s, link bandwidth in byte/s);
* an *availability* factor in ``[0, 1]`` driven by an availability trace
  ("performance variations due to external load");
* an on/off *state* driven by a state trace or explicit failure injection
  ("dynamic resource failures").
"""

from __future__ import annotations

from typing import Optional

from repro.surf.lmm import Constraint, MaxMinSystem
from repro.surf.trace import Trace

__all__ = ["Resource"]


class Resource:
    """Base class for CPUs and network links.

    Parameters
    ----------
    name:
        Unique human-readable identifier.
    peak_capacity:
        Nominal capacity when fully available.
    system:
        The LMM system in which the resource registers its constraint.
    shared:
        Passed through to the constraint (``False`` models fat pipes).
    availability_trace / state_trace:
        Optional :class:`~repro.surf.trace.Trace` objects driving the
        availability factor and the on/off state over time.
    """

    def __init__(self, name: str, peak_capacity: float,
                 system: Optional[MaxMinSystem] = None,
                 shared: bool = True,
                 availability_trace: Optional[Trace] = None,
                 state_trace: Optional[Trace] = None,
                 index: Optional[int] = None) -> None:
        if peak_capacity < 0:
            raise ValueError(f"resource {name!r}: capacity must be >= 0")
        self.name = name
        self.peak_capacity = float(peak_capacity)
        self.availability = 1.0
        self.is_on = True
        self.availability_trace = availability_trace
        self.state_trace = state_trace
        self.constraint: Optional[Constraint] = None
        self._system = system
        if system is not None:
            # ``index`` pins the constraint id to the resource's platform
            # declaration index, making the id — and every id-based
            # tie-break downstream — independent of materialization order
            # (lazy ≡ eager ≡ sharded to the bit).
            self.constraint = system.new_constraint(
                peak_capacity, shared=shared, data=self, cid=index)

    # -- capacity ----------------------------------------------------------------
    @property
    def current_capacity(self) -> float:
        """Capacity after applying availability and on/off state."""
        if not self.is_on:
            return 0.0
        return self.peak_capacity * self.availability

    def _push_capacity(self) -> None:
        if self.constraint is not None and self._system is not None:
            self._system.update_constraint_capacity(
                self.constraint, self.current_capacity)

    def set_peak_capacity(self, capacity: float) -> None:
        """Change the nominal capacity of the resource at runtime.

        The new value reaches the solver through
        ``update_constraint_capacity`` — the one write path the selective
        solve tracks — so only the affected component is re-solved.
        """
        if capacity < 0:
            raise ValueError(f"resource {self.name!r}: capacity must be >= 0")
        self.peak_capacity = float(capacity)
        self._push_capacity()

    # -- trace / failure handling --------------------------------------------------
    def set_availability(self, factor: float) -> None:
        """Set the availability factor (usually from a trace event)."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError(
                f"resource {self.name!r}: availability factor {factor} is "
                f"outside [0, 1]")
        self.availability = float(factor)
        self._push_capacity()

    def turn_off(self) -> None:
        """Fail the resource: every action using it must be failed by the model."""
        if not self.is_on:
            return
        self.is_on = False
        self._push_capacity()

    def turn_on(self) -> None:
        """Restore the resource after a failure."""
        if self.is_on:
            return
        self.is_on = True
        self._push_capacity()

    def apply_state_value(self, value: float) -> None:
        """Interpret a state-trace value (0 = off, anything else = on)."""
        if value > 0:
            self.turn_on()
        else:
            self.turn_off()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"peak={self.peak_capacity}, avail={self.availability}, "
                f"on={self.is_on})")
