"""repro — a pure-Python reproduction of the SimGrid HPDC'06 system.

The package mirrors the paper's architecture, unified (as SimGrid itself
later did) behind one actor/activity API::

    MSG               GRAS                SMPI
    (prototyping)     (dev + deployment)  (MPI app simulation)
            \\            |                /
             +--------- s4u (actors, mailboxes, activity futures) ------+
                              |
                      kernel (contexts, simcalls, timers)
                              |
                            SURF  (fluid platform simulation, MaxMin fairness)
                              |
                          platform (hosts, links, routes, topologies)

plus ``repro.packet`` (a packet-level TCP simulator standing in for
NS2/GTNetS in the validation experiment), ``repro.wire`` (middleware
wire-format comparators for the GRAS tables), ``repro.amok`` (the Grid
Application Toolbox: monitoring and topology discovery) and
``repro.tracing`` (Gantt charts).

Quickstart (s4u, the modern API)
--------------------------------
>>> from repro import s4u, make_star
>>> engine = s4u.Engine(make_star(num_hosts=2))
>>> def pinger(actor):
...     yield actor.engine.mailbox("rendezvous").put("ping", size=1e6)
>>> def ponger(actor):
...     inbox = actor.engine.mailbox("rendezvous")
...     comp = yield actor.exec_async(1e9)       # overlap compute...
...     comm = yield inbox.get_async()           # ...with a receive
...     pending = s4u.ActivitySet([comp, comm])
...     while not pending.empty():
...         done = yield pending.wait_any()      # reap in completion order
>>> _ = engine.add_actor("pinger", "leaf-0", pinger)
>>> _ = engine.add_actor("ponger", "leaf-1", ponger)
>>> final_time = engine.run()

The paper's MSG API (``Environment``/``Process``/``Task``) is a thin
compatibility shim over s4u and remains fully supported:

>>> from repro import Environment, Task
>>> env = Environment(make_star(num_hosts=2))
>>> def sender(proc):
...     yield proc.send(Task("ping", data_size=1e6), "box")
>>> def receiver(proc):
...     task = yield proc.receive("box")
...     yield proc.execute(1e9)
>>> _ = env.create_process("sender", "leaf-0", sender)
>>> _ = env.create_process("receiver", "leaf-1", receiver)
>>> final_time = env.run()
"""

from repro import s4u

from repro.exceptions import (
    CancelledError,
    DataDescriptionError,
    DeadlockError,
    HostFailureError,
    MpiError,
    NetworkError,
    NoRouteError,
    PlatformError,
    ProcessKilledError,
    SimGridError,
    SimTimeoutError,
    TransferFailureError,
    UnknownMessageError,
)
from repro.msg import (
    Environment,
    Host,
    Mailbox,
    Process,
    Task,
)
from repro.platform import (
    Platform,
    load_platform,
    make_barabasi_albert_topology,
    make_client_server_lan,
    make_cluster,
    make_dumbbell,
    make_star,
    make_two_site_grid,
    make_waxman_topology,
    save_platform,
)
from repro.surf import (
    CpuModel,
    MaxMinSystem,
    NetworkModel,
    NetworkModelConfig,
    SurfEngine,
    Trace,
)
from repro.tracing import GanttChart, Recorder
from repro.version import __version__

__all__ = [
    "CancelledError",
    "CpuModel",
    "DataDescriptionError",
    "DeadlockError",
    "Environment",
    "GanttChart",
    "Host",
    "HostFailureError",
    "Mailbox",
    "MaxMinSystem",
    "MpiError",
    "NetworkError",
    "NetworkModel",
    "NetworkModelConfig",
    "NoRouteError",
    "Platform",
    "PlatformError",
    "Process",
    "ProcessKilledError",
    "Recorder",
    "SimGridError",
    "SimTimeoutError",
    "SurfEngine",
    "Task",
    "Trace",
    "TransferFailureError",
    "UnknownMessageError",
    "__version__",
    "load_platform",
    "make_barabasi_albert_topology",
    "make_client_server_lan",
    "make_cluster",
    "make_dumbbell",
    "make_star",
    "make_two_site_grid",
    "make_waxman_topology",
    "s4u",
    "save_platform",
]
