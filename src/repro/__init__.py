"""repro — a pure-Python reproduction of the SimGrid HPDC'06 system.

The package mirrors the paper's architecture, unified (as SimGrid itself
later did) behind **one canonical actor/activity API**: :mod:`repro.s4u`::

    GRAS                 SMPI                  AMOK
    (dev + deployment)   (MPI app simulation)  (grid toolbox)
            \\              |                  /
             +------ s4u (actors, mailboxes, activity futures) ------+
                              |
                      kernel (contexts, simcalls, timers)
                              |
                            SURF  (fluid platform simulation, MaxMin fairness)
                              |
                  platform (hosts, links, routing zones, topologies)

plus ``repro.packet`` (a packet-level TCP simulator standing in for
NS2/GTNetS in the validation experiment), ``repro.wire`` (middleware
wire-format comparators for the GRAS tables), ``repro.amok`` (the Grid
Application Toolbox: monitoring and topology discovery) and
``repro.tracing`` (Gantt charts).

Quickstart (s4u, the canonical API)
-----------------------------------
>>> from repro import ActivitySet, Engine, make_star
>>> engine = Engine(make_star(num_hosts=2))
>>> def pinger(actor):
...     yield actor.engine.mailbox("rendezvous").put("ping", size=1e6)
>>> def ponger(actor):
...     inbox = actor.engine.mailbox("rendezvous")
...     comp = yield actor.exec_async(1e9)       # overlap compute...
...     comm = yield inbox.get_async()           # ...with a receive
...     pending = ActivitySet([comp, comm])
...     while not pending.empty():
...         done = yield pending.wait_any()      # reap in completion order
>>> _ = engine.add_actor("pinger", "leaf-0", pinger)
>>> _ = engine.add_actor("ponger", "leaf-1", ponger)
>>> final_time = engine.run()

GRAS (:class:`repro.gras.SimWorld`), SMPI (:class:`repro.smpi.SmpiWorld`)
and AMOK all drive this engine directly.  The paper's MSG API
(``Environment``/``Process``/``Task``) was retired after a deprecation
cycle: accessing those names now raises a clear :class:`ImportError`
pointing at the s4u equivalents.
"""

from repro import s4u
from repro.s4u import (
    Activity,
    ActivitySet,
    Actor,
    Comm,
    Engine,
    Exec,
    FailureInjector,
    Host,
    Link,
    Mailbox,
    Sleep,
    this_actor,
)

from repro.exceptions import (
    CancelledError,
    DataDescriptionError,
    DeadlockError,
    HostFailureError,
    MpiError,
    NetworkError,
    NoRouteError,
    PlatformError,
    ProcessKilledError,
    SimGridError,
    SimTimeoutError,
    TransferFailureError,
    UnknownMessageError,
)
from repro.platform import (
    NetZone,
    Platform,
    load_platform,
    make_barabasi_albert_topology,
    make_client_server_lan,
    make_cluster,
    make_dumbbell,
    make_hierarchical_topology,
    make_star,
    make_two_site_grid,
    make_waxman_topology,
    make_zoned_grid,
    save_platform,
)
from repro.surf import (
    CpuModel,
    MaxMinSystem,
    NetworkModel,
    NetworkModelConfig,
    SurfEngine,
    Trace,
)
from repro.tracing import GanttChart, Recorder
from repro.version import __version__

#: The retired MSG API and where each name went.  The deprecated
#: compatibility shim (``repro.msg``) was removed after a deprecation
#: cycle; resolving one of its names fails loudly with the s4u equivalent
#: instead of an opaque AttributeError.
_MSG_REMOVED = {
    "Environment": "repro.s4u.Engine",
    "Process": "repro.s4u.Actor",
    "ProcessState": "repro.s4u.ActorState",
    "Task": "a plain payload plus Mailbox.put(payload, size=...)",
}


def __getattr__(name):
    if name in _MSG_REMOVED:
        raise ImportError(
            f"the deprecated MSG API was removed; repro.{name} is now "
            f"{_MSG_REMOVED[name]} (see repro.s4u)")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Activity",
    "ActivitySet",
    "Actor",
    "CancelledError",
    "Comm",
    "CpuModel",
    "DataDescriptionError",
    "DeadlockError",
    "Engine",
    "Exec",
    "FailureInjector",
    "GanttChart",
    "Host",
    "HostFailureError",
    "Link",
    "Mailbox",
    "MaxMinSystem",
    "MpiError",
    "NetworkError",
    "NetZone",
    "NetworkModel",
    "NetworkModelConfig",
    "NoRouteError",
    "Platform",
    "PlatformError",
    "ProcessKilledError",
    "Recorder",
    "SimGridError",
    "SimTimeoutError",
    "Sleep",
    "SurfEngine",
    "Trace",
    "TransferFailureError",
    "UnknownMessageError",
    "__version__",
    "load_platform",
    "make_barabasi_albert_topology",
    "make_client_server_lan",
    "make_cluster",
    "make_dumbbell",
    "make_hierarchical_topology",
    "make_star",
    "make_two_site_grid",
    "make_waxman_topology",
    "make_zoned_grid",
    "s4u",
    "save_platform",
    "this_actor",
]
