"""repro — a pure-Python reproduction of the SimGrid HPDC'06 system.

The package mirrors the paper's architecture, unified (as SimGrid itself
later did) behind **one canonical actor/activity API**: :mod:`repro.s4u`::

    MSG (legacy shim)  GRAS                SMPI
    (prototyping)      (dev + deployment)  (MPI app simulation)
            \\            |                /
             +--------- s4u (actors, mailboxes, activity futures) ------+
                              |
                      kernel (contexts, simcalls, timers)
                              |
                            SURF  (fluid platform simulation, MaxMin fairness)
                              |
                          platform (hosts, links, routes, topologies)

plus ``repro.packet`` (a packet-level TCP simulator standing in for
NS2/GTNetS in the validation experiment), ``repro.wire`` (middleware
wire-format comparators for the GRAS tables), ``repro.amok`` (the Grid
Application Toolbox: monitoring and topology discovery) and
``repro.tracing`` (Gantt charts).

Quickstart (s4u, the canonical API)
-----------------------------------
>>> from repro import ActivitySet, Engine, make_star
>>> engine = Engine(make_star(num_hosts=2))
>>> def pinger(actor):
...     yield actor.engine.mailbox("rendezvous").put("ping", size=1e6)
>>> def ponger(actor):
...     inbox = actor.engine.mailbox("rendezvous")
...     comp = yield actor.exec_async(1e9)       # overlap compute...
...     comm = yield inbox.get_async()           # ...with a receive
...     pending = ActivitySet([comp, comm])
...     while not pending.empty():
...         done = yield pending.wait_any()      # reap in completion order
>>> _ = engine.add_actor("pinger", "leaf-0", pinger)
>>> _ = engine.add_actor("ponger", "leaf-1", ponger)
>>> final_time = engine.run()

GRAS (:class:`repro.gras.SimWorld`), SMPI (:class:`repro.smpi.SmpiWorld`)
and AMOK all drive this engine directly.  The paper's MSG API
(``Environment``/``Process``/``Task``) survives as a deprecated legacy shim
over s4u: importing :mod:`repro.msg` — directly or through the lazy
``repro.Environment`` / ``repro.Process`` / ``repro.Task`` aliases below —
emits a :class:`DeprecationWarning` but keeps identical simulated dates.
"""

from repro import s4u
from repro.s4u import (
    Activity,
    ActivitySet,
    Actor,
    Comm,
    Engine,
    Exec,
    FailureInjector,
    Host,
    Link,
    Mailbox,
    Sleep,
    this_actor,
)

from repro.exceptions import (
    CancelledError,
    DataDescriptionError,
    DeadlockError,
    HostFailureError,
    MpiError,
    NetworkError,
    NoRouteError,
    PlatformError,
    ProcessKilledError,
    SimGridError,
    SimTimeoutError,
    TransferFailureError,
    UnknownMessageError,
)
from repro.platform import (
    Platform,
    load_platform,
    make_barabasi_albert_topology,
    make_client_server_lan,
    make_cluster,
    make_dumbbell,
    make_star,
    make_two_site_grid,
    make_waxman_topology,
    save_platform,
)
from repro.surf import (
    CpuModel,
    MaxMinSystem,
    NetworkModel,
    NetworkModelConfig,
    SurfEngine,
    Trace,
)
from repro.tracing import GanttChart, Recorder
from repro.version import __version__

#: Legacy MSG names, resolved lazily so that merely importing ``repro``
#: does not drag the deprecated shim in (PEP 562).  Accessing any of them
#: imports :mod:`repro.msg`, which emits its ``DeprecationWarning``.
_MSG_LEGACY = {"Environment", "Process", "ProcessState", "Task"}


def __getattr__(name):
    if name in _MSG_LEGACY:
        from repro import msg
        return getattr(msg, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _MSG_LEGACY)


__all__ = [
    "Activity",
    "ActivitySet",
    "Actor",
    "CancelledError",
    "Comm",
    "CpuModel",
    "DataDescriptionError",
    "DeadlockError",
    "Engine",
    "Environment",
    "Exec",
    "FailureInjector",
    "GanttChart",
    "Host",
    "HostFailureError",
    "Link",
    "Mailbox",
    "MaxMinSystem",
    "MpiError",
    "NetworkError",
    "NetworkModel",
    "NetworkModelConfig",
    "NoRouteError",
    "Platform",
    "PlatformError",
    "Process",
    "ProcessKilledError",
    "Recorder",
    "SimGridError",
    "SimTimeoutError",
    "Sleep",
    "SurfEngine",
    "Task",
    "Trace",
    "TransferFailureError",
    "UnknownMessageError",
    "__version__",
    "load_platform",
    "make_barabasi_albert_topology",
    "make_client_server_lan",
    "make_cluster",
    "make_dumbbell",
    "make_star",
    "make_two_site_grid",
    "make_waxman_topology",
    "s4u",
    "save_platform",
    "this_actor",
]
