"""repro — a pure-Python reproduction of the SimGrid HPDC'06 system.

The package mirrors the paper's architecture::

    MSG               GRAS                SMPI
    (prototyping)     (dev + deployment)  (MPI app simulation)
            \\            |                /
             +------- kernel (contexts, simcalls) ------+
                              |
                            SURF  (fluid platform simulation, MaxMin fairness)
                              |
                          platform (hosts, links, routes, topologies)

plus ``repro.packet`` (a packet-level TCP simulator standing in for
NS2/GTNetS in the validation experiment), ``repro.wire`` (middleware
wire-format comparators for the GRAS tables), ``repro.amok`` (the Grid
Application Toolbox: monitoring and topology discovery) and
``repro.tracing`` (Gantt charts).

Quickstart
----------
>>> from repro import Environment, Task, make_star
>>> platform = make_star(num_hosts=2)
>>> env = Environment(platform)
>>> def pinger(proc):
...     yield proc.send(Task("ping", data_size=1e6), "rendezvous")
>>> def ponger(proc):
...     task = yield proc.receive("rendezvous")
...     yield proc.execute(1e9)
>>> _ = env.create_process("pinger", "leaf-0", pinger)
>>> _ = env.create_process("ponger", "leaf-1", ponger)
>>> final_time = env.run()
"""

from repro.exceptions import (
    CancelledError,
    DataDescriptionError,
    DeadlockError,
    HostFailureError,
    MpiError,
    NetworkError,
    NoRouteError,
    PlatformError,
    ProcessKilledError,
    SimGridError,
    SimTimeoutError,
    TransferFailureError,
    UnknownMessageError,
)
from repro.msg import (
    Environment,
    Host,
    Mailbox,
    Process,
    Task,
)
from repro.platform import (
    Platform,
    load_platform,
    make_barabasi_albert_topology,
    make_client_server_lan,
    make_cluster,
    make_dumbbell,
    make_star,
    make_two_site_grid,
    make_waxman_topology,
    save_platform,
)
from repro.surf import (
    CpuModel,
    MaxMinSystem,
    NetworkModel,
    NetworkModelConfig,
    SurfEngine,
    Trace,
)
from repro.tracing import GanttChart, Recorder
from repro.version import __version__

__all__ = [
    "CancelledError",
    "CpuModel",
    "DataDescriptionError",
    "DeadlockError",
    "Environment",
    "GanttChart",
    "Host",
    "HostFailureError",
    "Mailbox",
    "MaxMinSystem",
    "MpiError",
    "NetworkError",
    "NetworkModel",
    "NetworkModelConfig",
    "NoRouteError",
    "Platform",
    "PlatformError",
    "Process",
    "ProcessKilledError",
    "Recorder",
    "SimGridError",
    "SimTimeoutError",
    "SurfEngine",
    "Task",
    "Trace",
    "TransferFailureError",
    "UnknownMessageError",
    "__version__",
    "load_platform",
    "make_barabasi_albert_topology",
    "make_client_server_lan",
    "make_cluster",
    "make_dumbbell",
    "make_star",
    "make_two_site_grid",
    "make_waxman_topology",
    "save_platform",
]
