"""Architecture descriptors for cross-architecture data exchange.

The paper's GRAS tables exchange messages between **PowerPC**, **Sparc**
and **x86** hosts.  What makes that hard (and what GRAS automates) is that
those architectures disagree on byte order and on the size/alignment of C
types.  An :class:`Architecture` records exactly that, and the data
description layer uses it to encode values the way the *sender* lays them
out and convert on the *receiver* ("receiver makes right", GRAS's NDR
strategy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["Architecture", "ARCHITECTURES", "LOCAL_ARCH"]


@dataclass(frozen=True)
class Architecture:
    """Byte order and C-type sizes/alignments of one machine family."""

    name: str
    byte_order: str                       # "little" or "big"
    type_sizes: Dict[str, int] = field(default_factory=dict)
    type_alignments: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.byte_order not in ("little", "big"):
            raise ValueError("byte_order must be 'little' or 'big'")

    def size_of(self, type_name: str) -> int:
        """Size in bytes of a scalar type on this architecture."""
        return self.type_sizes[type_name]

    def alignment_of(self, type_name: str) -> int:
        """Alignment in bytes of a scalar type on this architecture."""
        return self.type_alignments.get(type_name,
                                        self.type_sizes[type_name])

    @property
    def struct_byteorder_char(self) -> str:
        """The :mod:`struct` byte-order prefix for this architecture."""
        return "<" if self.byte_order == "little" else ">"


_COMMON_32BIT_SIZES = {
    "int8": 1, "uint8": 1,
    "int16": 2, "uint16": 2,
    "int32": 4, "uint32": 4,
    "int64": 8, "uint64": 8,
    "int": 4, "uint": 4,
    "long": 4, "ulong": 4,
    "float": 4, "double": 8,
    "char": 1, "pointer": 4,
}

_COMMON_64BIT_SIZES = dict(_COMMON_32BIT_SIZES, long=8, ulong=8, pointer=8)

#: The three architectures of the paper's tables plus a modern 64-bit x86.
ARCHITECTURES: Dict[str, Architecture] = {
    "x86": Architecture("x86", "little", dict(_COMMON_32BIT_SIZES),
                        {"double": 4, "int64": 4, "uint64": 4}),
    "x86_64": Architecture("x86_64", "little", dict(_COMMON_64BIT_SIZES)),
    "sparc": Architecture("sparc", "big", dict(_COMMON_32BIT_SIZES)),
    "powerpc": Architecture("powerpc", "big", dict(_COMMON_32BIT_SIZES)),
}

#: Descriptor used when none is specified (a 64-bit little-endian host).
LOCAL_ARCH = ARCHITECTURES["x86_64"]
