"""GRAS simulation backend: run GRAS processes inside the MSG simulator.

A :class:`SimWorld` wraps an MSG :class:`~repro.msg.environment.Environment`
configured with the *thread* context factory, so GRAS application code is
written as plain blocking calls — the very same code the real-life backend
(:mod:`repro.gras.rl_backend`) executes over real sockets.

Message transport: each ``(host, port)`` server socket maps to the MSG
mailbox ``"gras:<host>:<port>"``; ``msg_send`` wraps the encoded payload in
an MSG task whose ``data_size`` is the wire size of the message, so the
SURF network model charges exactly what the real message would cost.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import SimTimeoutError, UnknownMessageError
from repro.gras.arch import ARCHITECTURES, Architecture, LOCAL_ARCH
from repro.gras.message import GrasMessage
from repro.gras.process import GrasProcess
from repro.gras.socket import GrasSocket
from repro.msg.environment import Environment
from repro.msg.process import Process
from repro.msg.task import Task
from repro.platform.platform import Platform

__all__ = ["SimWorld", "SimGrasProcess"]

#: Ports above this value are considered ephemeral (auto-assigned).
_EPHEMERAL_BASE = 50000


def _mailbox_name(host: str, port: int) -> str:
    return f"gras:{host}:{port}"


class SimGrasProcess(GrasProcess):
    """A GRAS process executed inside the simulator."""

    def __init__(self, world: "SimWorld", msg_process: Process,
                 arch: Architecture) -> None:
        super().__init__(msg_process.name, arch)
        self.world = world
        self._proc = msg_process
        self._listen_port: Optional[int] = None
        self._buffer: List[GrasMessage] = []

    # -- sockets ---------------------------------------------------------------------
    @property
    def host_name(self) -> str:
        return self._proc.host.name

    def socket_server(self, port: int) -> GrasSocket:
        self._listen_port = port
        return GrasSocket(self.host_name, port, is_server=True)

    def socket_client(self, host: str, port: int) -> GrasSocket:
        return GrasSocket(host, port)

    def _ensure_listen_port(self) -> int:
        if self._listen_port is None:
            self._listen_port = _EPHEMERAL_BASE + self._proc.pid
        return self._listen_port

    # -- messaging --------------------------------------------------------------------
    def msg_send(self, socket: GrasSocket, msgtype_name: str,
                 payload: Any = None) -> None:
        msgtype = self.registry.by_name(msgtype_name)
        payload_bytes = b""
        if msgtype.payload_desc is not None and payload is not None:
            payload_bytes = msgtype.payload_desc.encode(payload, self.arch)
        message = GrasMessage(
            msgtype=msgtype_name,
            payload_bytes=payload_bytes,
            sender_arch=self.arch.name,
            sender_host=self.host_name,
            sender_port=self._ensure_listen_port(),
        )
        task = Task(f"gras:{msgtype_name}",
                    data_size=msgtype.wire_size(payload, self.arch),
                    payload=message)
        self._proc.send(task, _mailbox_name(socket.host, socket.port))

    def _next_message(self, timeout: float) -> GrasMessage:
        """Pop the next message (from the buffer or from the mailbox)."""
        if self._buffer:
            return self._buffer.pop(0)
        return self._recv_from_mailbox(timeout)

    def _recv_from_mailbox(self, timeout: float) -> GrasMessage:
        """Block until a *new* message arrives on the listen mailbox."""
        port = self._ensure_listen_port()
        task = self._proc.receive(_mailbox_name(self.host_name, port),
                                  timeout=timeout if not math.isinf(timeout)
                                  else None)
        return task.payload

    def _decode(self, message: GrasMessage) -> Any:
        msgtype = self.registry.by_name(message.msgtype)
        if msgtype.payload_desc is None or not message.payload_bytes:
            return None
        src_arch = ARCHITECTURES.get(message.sender_arch, LOCAL_ARCH)
        value, _ = msgtype.payload_desc.decode(message.payload_bytes, src_arch)
        return value

    def msg_wait(self, timeout: float, msgtype_name: str
                 ) -> Tuple[GrasSocket, Any]:
        deadline = self.os_time() + timeout
        # First serve matching buffered messages.
        for idx, message in enumerate(self._buffer):
            if message.msgtype == msgtype_name:
                self._buffer.pop(idx)
                return (GrasSocket(message.sender_host, message.sender_port),
                        self._decode(message))
        while True:
            remaining = deadline - self.os_time()
            if remaining < 0:
                raise SimTimeoutError(
                    f"no {msgtype_name!r} message within {timeout}s")
            # The buffer was already scanned above and only this thread
            # appends to it, so wait on the mailbox for *new* messages —
            # popping the buffer here would spin forever on a non-matching
            # buffered message.
            message = self._recv_from_mailbox(remaining)
            if message.msgtype == msgtype_name:
                return (GrasSocket(message.sender_host, message.sender_port),
                        self._decode(message))
            self._buffer.append(message)

    def msg_handle(self, timeout: float) -> bool:
        try:
            message = (self._buffer.pop(0) if self._buffer
                       else self._next_message(timeout))
        except SimTimeoutError:
            return False
        callback = self.registry.callback_for(message.msgtype)
        if callback is None:
            raise UnknownMessageError(
                f"no callback registered for {message.msgtype!r}")
        source = GrasSocket(message.sender_host, message.sender_port)
        callback(self, source, self._decode(message))
        return True

    # -- time ---------------------------------------------------------------------------
    def os_time(self) -> float:
        return self._proc.now

    def os_sleep(self, duration: float) -> None:
        self._proc.sleep(duration)

    # -- benchmarking ------------------------------------------------------------------------
    def _inject_computation(self, duration: float) -> None:
        if duration <= 0:
            return
        flops = duration * self._proc.host.speed
        self._proc.execute(flops, name="gras-bench")


class SimWorld:
    """A set of GRAS processes deployed on a simulated platform."""

    def __init__(self, platform: Platform,
                 arch_by_host: Optional[Dict[str, str]] = None,
                 recorder=None) -> None:
        self.env = Environment(platform, context_factory="thread",
                               recorder=recorder)
        self.arch_by_host = arch_by_host or {}
        self.gras_processes: List[SimGrasProcess] = []

    def _arch_for(self, host_name: str,
                  arch: Optional[str]) -> Architecture:
        name = arch or self.arch_by_host.get(host_name)
        if name is None:
            return LOCAL_ARCH
        return ARCHITECTURES[name]

    def add_process(self, name: str, host: str, func: Callable, *args,
                    arch: Optional[str] = None, **kwargs) -> Process:
        """Deploy ``func(gras_process, *args)`` on ``host``.

        ``arch`` selects the simulated architecture of that host
        (``"x86"``, ``"sparc"``, ``"powerpc"``...), which drives the wire
        encoding of the messages it sends.
        """
        architecture = self._arch_for(host, arch)
        world = self

        def body(msg_process: Process, *fargs, **fkwargs):
            gras_process = SimGrasProcess(world, msg_process, architecture)
            world.gras_processes.append(gras_process)
            func(gras_process, *fargs, **fkwargs)

        return self.env.create_process(name, host, body, *args, **kwargs)

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation; returns the final simulated time."""
        return self.env.run(until)

    @property
    def now(self) -> float:
        return self.env.now
