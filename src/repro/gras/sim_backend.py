"""GRAS simulation backend: run GRAS processes as s4u actors.

A :class:`SimWorld` wraps an :class:`repro.s4u.engine.Engine` configured
with the *thread* context factory, so GRAS application code is written as
plain blocking calls — the very same code the real-life backend
(:mod:`repro.gras.rl_backend`) executes over real sockets.

Message transport: each ``(host, port)`` server socket maps to the s4u
mailbox ``"gras:<host>:<port>"``; ``msg_send`` puts the encoded
:class:`~repro.gras.message.GrasMessage` on that mailbox with an explicit
``size`` equal to the wire size of the message, so the SURF network model
charges exactly what the real message would cost.  No per-message wrapper
object is allocated: the payload travels as-is through the mailbox, and
selective receive (``msg_wait``) combines the local reorder buffer with the
mailbox probe primitives (:meth:`~repro.s4u.mailbox.Mailbox.listen` /
``peek_payload``).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import SimTimeoutError, UnknownMessageError
from repro.gras.arch import ARCHITECTURES, Architecture, LOCAL_ARCH
from repro.gras.message import GrasMessage
from repro.gras.process import GrasProcess
from repro.gras.socket import GrasSocket
from repro.platform.platform import Platform
from repro.s4u.actor import Actor
from repro.s4u.engine import Engine
from repro.s4u.mailbox import Mailbox

__all__ = ["SimWorld", "SimGrasProcess"]

#: Ports above this value are considered ephemeral (auto-assigned).
_EPHEMERAL_BASE = 50000


def _mailbox_name(host: str, port: int) -> str:
    return f"gras:{host}:{port}"


class SimGrasProcess(GrasProcess):
    """A GRAS process executed inside the simulator (one s4u actor)."""

    def __init__(self, world: "SimWorld", actor: Actor,
                 arch: Architecture) -> None:
        super().__init__(actor.name, arch)
        self.world = world
        self._actor = actor
        self._listen_port: Optional[int] = None
        self._buffer: List[GrasMessage] = []

    # -- sockets ---------------------------------------------------------------------
    @property
    def host_name(self) -> str:
        return self._actor.host.name

    def socket_server(self, port: int) -> GrasSocket:
        self._listen_port = port
        return GrasSocket(self.host_name, port, is_server=True)

    def socket_client(self, host: str, port: int) -> GrasSocket:
        return GrasSocket(host, port)

    def _ensure_listen_port(self) -> int:
        if self._listen_port is None:
            self._listen_port = _EPHEMERAL_BASE + self._actor.pid
        return self._listen_port

    def _mailbox(self, host: str, port: int) -> Mailbox:
        return self._actor.engine.mailbox(_mailbox_name(host, port))

    # -- messaging --------------------------------------------------------------------
    def msg_send(self, socket: GrasSocket, msgtype_name: str,
                 payload: Any = None) -> None:
        msgtype = self.registry.by_name(msgtype_name)
        payload_bytes = b""
        if msgtype.payload_desc is not None and payload is not None:
            payload_bytes = msgtype.payload_desc.encode(payload, self.arch)
        message = GrasMessage(
            msgtype=msgtype_name,
            payload_bytes=payload_bytes,
            sender_arch=self.arch.name,
            sender_host=self.host_name,
            sender_port=self._ensure_listen_port(),
        )
        self._mailbox(socket.host, socket.port).put(
            message, size=msgtype.wire_size(payload, self.arch),
            name=f"gras:{msgtype_name}")

    def _next_message(self, timeout: float) -> GrasMessage:
        """Pop the next message (from the buffer or from the mailbox)."""
        if self._buffer:
            return self._buffer.pop(0)
        return self._recv_from_mailbox(timeout)

    def _recv_from_mailbox(self, timeout: float) -> GrasMessage:
        """Block until a *new* message arrives on the listen mailbox."""
        box = self._mailbox(self.host_name, self._ensure_listen_port())
        return box.get(timeout=timeout if not math.isinf(timeout) else None)

    def _decode(self, message: GrasMessage) -> Any:
        msgtype = self.registry.by_name(message.msgtype)
        if msgtype.payload_desc is None or not message.payload_bytes:
            return None
        src_arch = ARCHITECTURES.get(message.sender_arch, LOCAL_ARCH)
        value, _ = msgtype.payload_desc.decode(message.payload_bytes, src_arch)
        return value

    def msg_wait(self, timeout: float, msgtype_name: str
                 ) -> Tuple[GrasSocket, Any]:
        deadline = self.os_time() + timeout
        # First serve matching buffered messages.
        for idx, message in enumerate(self._buffer):
            if message.msgtype == msgtype_name:
                self._buffer.pop(idx)
                return (GrasSocket(message.sender_host, message.sender_port),
                        self._decode(message))
        while True:
            remaining = deadline - self.os_time()
            if remaining < 0:
                raise SimTimeoutError(
                    f"no {msgtype_name!r} message within {timeout}s")
            # The buffer was already scanned above and only this thread
            # appends to it, so wait on the mailbox for *new* messages —
            # popping the buffer here would spin forever on a non-matching
            # buffered message.
            message = self._recv_from_mailbox(remaining)
            if message.msgtype == msgtype_name:
                return (GrasSocket(message.sender_host, message.sender_port),
                        self._decode(message))
            self._buffer.append(message)

    def msg_waiting(self, msgtype_name: Optional[str] = None) -> bool:
        """Non-blocking probe: would ``msg_wait`` return without blocking?

        Checks the reorder buffer and the mailbox's pending sends (via the
        s4u probe primitives) without consuming anything.
        """
        if any(msgtype_name is None or m.msgtype == msgtype_name
               for m in self._buffer):
            return True
        box = self._mailbox(self.host_name, self._ensure_listen_port())
        return any(isinstance(message, GrasMessage)
                   and (msgtype_name is None
                        or message.msgtype == msgtype_name)
                   for message in box.pending_payloads())

    def msg_handle(self, timeout: float) -> bool:
        try:
            message = (self._buffer.pop(0) if self._buffer
                       else self._next_message(timeout))
        except SimTimeoutError:
            return False
        callback = self.registry.callback_for(message.msgtype)
        if callback is None:
            raise UnknownMessageError(
                f"no callback registered for {message.msgtype!r}")
        source = GrasSocket(message.sender_host, message.sender_port)
        callback(self, source, self._decode(message))
        return True

    # -- time ---------------------------------------------------------------------------
    def os_time(self) -> float:
        return self._actor.now

    def os_sleep(self, duration: float) -> None:
        self._actor.sleep_for(duration)

    # -- benchmarking ------------------------------------------------------------------------
    def _inject_computation(self, duration: float) -> None:
        if duration <= 0:
            return
        flops = duration * self._actor.host.speed
        self._actor.execute(flops, name="gras-bench")


class SimWorld:
    """A set of GRAS processes deployed on a simulated platform."""

    def __init__(self, platform: Platform,
                 arch_by_host: Optional[Dict[str, str]] = None,
                 recorder=None) -> None:
        self.engine = Engine(platform, context_factory="thread",
                             recorder=recorder)
        self.arch_by_host = arch_by_host or {}
        self.gras_processes: List[SimGrasProcess] = []

    def _arch_for(self, host_name: str,
                  arch: Optional[str]) -> Architecture:
        name = arch or self.arch_by_host.get(host_name)
        if name is None:
            return LOCAL_ARCH
        return ARCHITECTURES[name]

    def add_process(self, name: str, host: str, func: Callable, *args,
                    arch: Optional[str] = None, **kwargs) -> Actor:
        """Deploy ``func(gras_process, *args)`` on ``host``.

        ``arch`` selects the simulated architecture of that host
        (``"x86"``, ``"sparc"``, ``"powerpc"``...), which drives the wire
        encoding of the messages it sends.
        """
        architecture = self._arch_for(host, arch)
        world = self

        def body(actor: Actor, *fargs, **fkwargs):
            gras_process = SimGrasProcess(world, actor, architecture)
            world.gras_processes.append(gras_process)
            func(gras_process, *fargs, **fkwargs)

        return self.engine.add_actor(name, host, body, *args, **kwargs)

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation; returns the final simulated time."""
        return self.engine.run(until)

    @property
    def now(self) -> float:
        return self.engine.now
