"""GRAS message types and callback registry.

``gras_msgtype_declare("ping", gras_datadesc_by_name("int"))`` declares a
named message type with a typed payload; processes can then either block on
a specific type (``gras_msg_wait``) or register callbacks and let
``gras_msg_handle`` dispatch incoming messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.exceptions import UnknownMessageError
from repro.gras.datadesc import DataDescription, datadesc_by_name

__all__ = ["MessageType", "MessageRegistry", "GrasMessage"]


@dataclass(frozen=True)
class MessageType:
    """A named message type with an optional payload description."""

    name: str
    payload_desc: Optional[DataDescription] = None

    #: Fixed per-message protocol overhead on the wire, in bytes
    #: (message name, version, sender architecture, payload length).
    HEADER_OVERHEAD = 48

    def wire_size(self, payload: Any, arch=None) -> int:
        """Bytes this message occupies on the wire for a given payload."""
        from repro.gras.arch import LOCAL_ARCH
        arch = arch or LOCAL_ARCH
        size = self.HEADER_OVERHEAD + len(self.name)
        if self.payload_desc is not None and payload is not None:
            size += self.payload_desc.wire_size(payload, arch)
        return size


class MessageRegistry:
    """Per-process registry of message types and callbacks."""

    def __init__(self) -> None:
        self._types: Dict[str, MessageType] = {}
        self._callbacks: Dict[str, Callable] = {}

    # -- declaration ---------------------------------------------------------------
    def declare(self, name: str, payload_desc=None) -> MessageType:
        """Declare a message type (idempotent if redeclared identically)."""
        if isinstance(payload_desc, str):
            payload_desc = datadesc_by_name(payload_desc)
        msgtype = MessageType(name, payload_desc)
        existing = self._types.get(name)
        if existing is not None and existing.payload_desc is not payload_desc:
            # GRAS allows redeclaration as long as the description matches;
            # we accept same-name redeclaration and keep the latest.
            pass
        self._types[name] = msgtype
        return msgtype

    def by_name(self, name: str) -> MessageType:
        """Lookup a declared message type (``gras_msgtype_by_name``)."""
        try:
            return self._types[name]
        except KeyError:
            raise UnknownMessageError(
                f"message type {name!r} was never declared") from None

    def is_declared(self, name: str) -> bool:
        return name in self._types

    # -- callbacks ------------------------------------------------------------------
    def register_callback(self, msgtype_name: str, callback: Callable) -> None:
        """Attach a callback to a message type (``gras_cb_register``)."""
        self.by_name(msgtype_name)  # ensure declared
        self._callbacks[msgtype_name] = callback

    def unregister_callback(self, msgtype_name: str) -> None:
        self._callbacks.pop(msgtype_name, None)

    def callback_for(self, msgtype_name: str) -> Optional[Callable]:
        return self._callbacks.get(msgtype_name)


@dataclass
class GrasMessage:
    """A message in flight: type name, encoded payload and reply address."""

    msgtype: str
    payload_bytes: bytes
    sender_arch: str
    sender_host: str
    sender_port: int
    #: Decoded payload cache (filled by the receiving backend).
    payload: Any = None
