"""GRAS data descriptions: declare once, exchange across architectures.

The paper: *"Simple and cross-architecture communication of complex data
structures"* — the application declares the shape of its payloads
(``gras_datadesc_by_name("int")``, structure declarations...) and GRAS
handles the wire encoding, including byte-order and type-size conversion
between heterogeneous hosts.

The implementation follows GRAS's *NDR / receiver-makes-right* strategy:
the sender writes values in its native byte order and type sizes; the
receiver, knowing the sender's :class:`~repro.gras.arch.Architecture` from
the message header, converts only if needed.  This is what makes GRAS
faster than always-convert strategies like CDR (OmniORB) or text (XML) in
the paper's tables.
"""

from __future__ import annotations

import struct as _struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import DataDescriptionError
from repro.gras.arch import ARCHITECTURES, Architecture, LOCAL_ARCH

__all__ = [
    "DataDescription", "ScalarDesc", "StringDesc", "ArrayDesc", "StructDesc",
    "datadesc_by_name", "declare_struct", "registry_size",
]

# ------------------------------------------------------------------------------------
# scalar formats
# ------------------------------------------------------------------------------------

_STRUCT_CODES = {
    # type_name: (signed struct code by size, unsigned struct code by size)
    "int8": "b", "uint8": "B",
    "int16": "h", "uint16": "H",
    "int32": "i", "uint32": "I",
    "int64": "q", "uint64": "Q",
    "float": "f", "double": "d",
    "char": "c",
}

_SIGNED_BY_SIZE = {1: "b", 2: "h", 4: "i", 8: "q"}
_UNSIGNED_BY_SIZE = {1: "B", 2: "H", 4: "I", 8: "Q"}


class DataDescription:
    """Base class of every data description."""

    name: str = ""

    def wire_size(self, value: Any, arch: Architecture = LOCAL_ARCH) -> int:
        """Number of bytes ``value`` occupies on the wire for ``arch``."""
        raise NotImplementedError

    def encode(self, value: Any, arch: Architecture = LOCAL_ARCH) -> bytes:
        """Encode ``value`` using ``arch``'s native representation."""
        raise NotImplementedError

    def decode(self, data: bytes, src_arch: Architecture,
               offset: int = 0) -> Tuple[Any, int]:
        """Decode a value written by ``src_arch``; returns (value, new offset)."""
        raise NotImplementedError

    # convenience ---------------------------------------------------------------------
    def roundtrip(self, value: Any, src_arch: Architecture,
                  dst_arch: Architecture) -> Any:
        """Encode on ``src_arch`` and decode on ``dst_arch`` (for tests)."""
        del dst_arch  # receiver-makes-right: decoding only needs the source
        data = self.encode(value, src_arch)
        decoded, consumed = self.decode(data, src_arch)
        if consumed != len(data):
            raise DataDescriptionError(
                f"{self.name}: {len(data) - consumed} trailing bytes")
        return decoded


class ScalarDesc(DataDescription):
    """A scalar C type (integers of various widths, float, double, char)."""

    def __init__(self, type_name: str) -> None:
        if type_name not in LOCAL_ARCH.type_sizes:
            raise DataDescriptionError(f"unknown scalar type {type_name!r}")
        self.name = type_name

    def _code_for(self, arch: Architecture) -> str:
        size = arch.size_of(self.name)
        if self.name in ("float", "double"):
            return "f" if size == 4 else "d"
        if self.name == "char":
            return "c"
        signed = not self.name.startswith("u")
        table = _SIGNED_BY_SIZE if signed else _UNSIGNED_BY_SIZE
        try:
            return table[size]
        except KeyError:
            raise DataDescriptionError(
                f"{self.name}: no wire format for size {size}") from None

    def wire_size(self, value: Any, arch: Architecture = LOCAL_ARCH) -> int:
        return arch.size_of(self.name)

    def encode(self, value: Any, arch: Architecture = LOCAL_ARCH) -> bytes:
        code = self._code_for(arch)
        if self.name == "char":
            if isinstance(value, str):
                value = value.encode("latin-1")[:1] or b"\x00"
            return _struct.pack(arch.struct_byteorder_char + "c", value)
        try:
            return _struct.pack(arch.struct_byteorder_char + code, value)
        except _struct.error as exc:
            raise DataDescriptionError(
                f"cannot encode {value!r} as {self.name}: {exc}") from None

    def decode(self, data: bytes, src_arch: Architecture,
               offset: int = 0) -> Tuple[Any, int]:
        code = self._code_for(src_arch)
        size = src_arch.size_of(self.name)
        try:
            (value,) = _struct.unpack_from(
                src_arch.struct_byteorder_char + code, data, offset)
        except _struct.error as exc:
            raise DataDescriptionError(
                f"cannot decode {self.name}: {exc}") from None
        if self.name == "char" and isinstance(value, bytes):
            value = value.decode("latin-1")
        return value, offset + size


class StringDesc(DataDescription):
    """A length-prefixed UTF-8 string (GRAS transports strings explicitly)."""

    name = "string"

    def wire_size(self, value: Any, arch: Architecture = LOCAL_ARCH) -> int:
        encoded = str(value).encode("utf-8")
        return 4 + len(encoded)

    def encode(self, value: Any, arch: Architecture = LOCAL_ARCH) -> bytes:
        encoded = str(value).encode("utf-8")
        prefix = _struct.pack(arch.struct_byteorder_char + "I", len(encoded))
        return prefix + encoded

    def decode(self, data: bytes, src_arch: Architecture,
               offset: int = 0) -> Tuple[Any, int]:
        (length,) = _struct.unpack_from(
            src_arch.struct_byteorder_char + "I", data, offset)
        offset += 4
        raw = data[offset:offset + length]
        if len(raw) != length:
            raise DataDescriptionError("truncated string payload")
        return raw.decode("utf-8"), offset + length


class ArrayDesc(DataDescription):
    """A homogeneous array, either fixed-size or length-prefixed."""

    def __init__(self, element: DataDescription,
                 fixed_length: Optional[int] = None,
                 name: str = "") -> None:
        self.element = element
        self.fixed_length = fixed_length
        self.name = name or f"array<{element.name}>"

    def _check_length(self, value: Sequence[Any]) -> None:
        if (self.fixed_length is not None
                and len(value) != self.fixed_length):
            raise DataDescriptionError(
                f"{self.name}: expected {self.fixed_length} elements, "
                f"got {len(value)}")

    def wire_size(self, value: Any, arch: Architecture = LOCAL_ARCH) -> int:
        self._check_length(value)
        header = 0 if self.fixed_length is not None else 4
        return header + sum(self.element.wire_size(v, arch) for v in value)

    def encode(self, value: Any, arch: Architecture = LOCAL_ARCH) -> bytes:
        self._check_length(value)
        chunks: List[bytes] = []
        if self.fixed_length is None:
            chunks.append(_struct.pack(arch.struct_byteorder_char + "I",
                                       len(value)))
        for item in value:
            chunks.append(self.element.encode(item, arch))
        return b"".join(chunks)

    def decode(self, data: bytes, src_arch: Architecture,
               offset: int = 0) -> Tuple[Any, int]:
        if self.fixed_length is None:
            (length,) = _struct.unpack_from(
                src_arch.struct_byteorder_char + "I", data, offset)
            offset += 4
        else:
            length = self.fixed_length
        items = []
        for _ in range(length):
            item, offset = self.element.decode(data, src_arch, offset)
            items.append(item)
        return items, offset


class StructDesc(DataDescription):
    """A C-struct-like record: named, ordered, typed fields.

    Values are plain dictionaries keyed by field name (the Python analogue
    of the C structs GRAS describes).
    """

    def __init__(self, name: str,
                 fields: Sequence[Tuple[str, DataDescription]]) -> None:
        if not fields:
            raise DataDescriptionError(f"struct {name!r} needs fields")
        self.name = name
        self.fields: List[Tuple[str, DataDescription]] = list(fields)

    def wire_size(self, value: Any, arch: Architecture = LOCAL_ARCH) -> int:
        return sum(desc.wire_size(self._field(value, fname), arch)
                   for fname, desc in self.fields)

    def encode(self, value: Any, arch: Architecture = LOCAL_ARCH) -> bytes:
        return b"".join(desc.encode(self._field(value, fname), arch)
                        for fname, desc in self.fields)

    def decode(self, data: bytes, src_arch: Architecture,
               offset: int = 0) -> Tuple[Any, int]:
        result: Dict[str, Any] = {}
        for fname, desc in self.fields:
            result[fname], offset = desc.decode(data, src_arch, offset)
        return result, offset

    @staticmethod
    def _field(value: Any, fname: str) -> Any:
        try:
            return value[fname]
        except (TypeError, KeyError):
            try:
                return getattr(value, fname)
            except AttributeError:
                raise DataDescriptionError(
                    f"value has no field {fname!r}") from None


# ------------------------------------------------------------------------------------
# the global registry (gras_datadesc_by_name)
# ------------------------------------------------------------------------------------

_REGISTRY: Dict[str, DataDescription] = {}


def _bootstrap_registry() -> None:
    for type_name in ("int8", "uint8", "int16", "uint16", "int32", "uint32",
                      "int64", "uint64", "float", "double", "char"):
        _REGISTRY[type_name] = ScalarDesc(type_name)
    # C-style aliases used by the paper's listings
    _REGISTRY["int"] = ScalarDesc("int32")
    _REGISTRY["unsigned int"] = ScalarDesc("uint32")
    _REGISTRY["long"] = ScalarDesc("int64")
    _REGISTRY["string"] = StringDesc()


_bootstrap_registry()


def datadesc_by_name(name: str) -> DataDescription:
    """Look up a data description by name (``gras_datadesc_by_name``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise DataDescriptionError(f"unknown data description {name!r}") from None


def declare_struct(name: str,
                   fields: Sequence[Tuple[str, Any]]) -> StructDesc:
    """Declare (and register) a structure description.

    Field descriptions may be given by name (``"int"``) or as
    :class:`DataDescription` instances, which allows nesting::

        declare_struct("point", [("x", "double"), ("y", "double")])
        declare_struct("segment", [("a", datadesc_by_name("point")),
                                   ("b", datadesc_by_name("point"))])
    """
    resolved: List[Tuple[str, DataDescription]] = []
    for fname, desc in fields:
        if isinstance(desc, str):
            desc = datadesc_by_name(desc)
        if not isinstance(desc, DataDescription):
            raise DataDescriptionError(
                f"field {fname!r}: not a data description: {desc!r}")
        resolved.append((fname, desc))
    struct_desc = StructDesc(name, resolved)
    _REGISTRY[name] = struct_desc
    return struct_desc


def registry_size() -> int:
    """Number of registered descriptions (used by tests)."""
    return len(_REGISTRY)
