"""GRAS sockets: the endpoints messages are sent to / received from.

A :class:`GrasSocket` is a lightweight address ``(host, port)`` plus a role
(server sockets accept incoming messages, client sockets designate a peer).
The same object is used by both backends; what differs is how the backend
moves bytes (simulated tasks vs. real TCP connections).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GrasSocket"]


@dataclass(frozen=True)
class GrasSocket:
    """An endpoint address used by ``gras_msg_send`` / callbacks."""

    host: str
    port: int
    is_server: bool = False

    @property
    def address(self) -> str:
        """Canonical ``host:port`` string."""
        return f"{self.host}:{self.port}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        role = "server" if self.is_server else "peer"
        return f"<GrasSocket {role} {self.address}>"
