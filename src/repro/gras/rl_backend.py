"""GRAS real-life backend: the same process code over real sockets.

The paper's key GRAS claim is that the *resulting application is production,
not prototype*: the code written against the GRAS API runs unmodified
either in the simulator or for real.  This backend provides the "for real"
half on a single machine: every GRAS process is an OS thread, messages are
framed over localhost TCP connections, time is the wall clock.

The wire frame is self-describing enough for the receiver-makes-right
conversion: it carries the sender's architecture name, its reply port, the
message type name and the payload bytes encoded with the sender's layout.
"""

from __future__ import annotations

import queue
import socket as _socket
import struct as _struct
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import NetworkError, SimTimeoutError, UnknownMessageError
from repro.gras.arch import ARCHITECTURES, Architecture, LOCAL_ARCH
from repro.gras.message import GrasMessage
from repro.gras.process import GrasProcess
from repro.gras.socket import GrasSocket

__all__ = ["RlWorld", "RlGrasProcess"]

_MAGIC = b"GRAS"
_LOCALHOST = "127.0.0.1"


def _pack_frame(message: GrasMessage) -> bytes:
    arch = message.sender_arch.encode("ascii")
    msgtype = message.msgtype.encode("utf-8")
    header = _struct.pack("!4sH I H I", _MAGIC, len(arch),
                          message.sender_port, len(msgtype),
                          len(message.payload_bytes))
    return header + arch + msgtype + message.payload_bytes


def _read_exact(conn: _socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = conn.recv(remaining)
        if not chunk:
            raise NetworkError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _unpack_frame(conn: _socket.socket) -> GrasMessage:
    header = _read_exact(conn, _struct.calcsize("!4sH I H I"))
    magic, arch_len, reply_port, type_len, payload_len = _struct.unpack(
        "!4sH I H I", header)
    if magic != _MAGIC:
        raise NetworkError("bad frame magic")
    arch = _read_exact(conn, arch_len).decode("ascii")
    msgtype = _read_exact(conn, type_len).decode("utf-8")
    payload = _read_exact(conn, payload_len) if payload_len else b""
    return GrasMessage(msgtype=msgtype, payload_bytes=payload,
                       sender_arch=arch, sender_host=_LOCALHOST,
                       sender_port=reply_port)


class RlGrasProcess(GrasProcess):
    """A GRAS process running for real (thread + localhost TCP)."""

    def __init__(self, name: str, arch: Architecture = LOCAL_ARCH) -> None:
        super().__init__(name, arch)
        self._inbox: "queue.Queue[GrasMessage]" = queue.Queue()
        self._server_socket: Optional[_socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._listen_port: Optional[int] = None
        self._buffer: List[GrasMessage] = []
        self._closing = threading.Event()
        self._start_wallclock = time.monotonic()

    # -- sockets ----------------------------------------------------------------------
    def socket_server(self, port: int) -> GrasSocket:
        if self._server_socket is not None:
            return GrasSocket(_LOCALHOST, self._listen_port or port,
                              is_server=True)
        server = _socket.socket(_socket.AF_INET, _socket.SOCK_STREAM)
        server.setsockopt(_socket.SOL_SOCKET, _socket.SO_REUSEADDR, 1)
        server.bind((_LOCALHOST, port))
        server.listen(16)
        server.settimeout(0.1)
        self._server_socket = server
        self._listen_port = server.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True,
            name=f"gras-accept-{self.name}")
        self._accept_thread.start()
        return GrasSocket(_LOCALHOST, self._listen_port, is_server=True)

    def socket_client(self, host: str, port: int) -> GrasSocket:
        return GrasSocket(host, port)

    def _ensure_listen_port(self) -> int:
        if self._listen_port is None:
            self.socket_server(0)  # ephemeral port
        assert self._listen_port is not None
        return self._listen_port

    def _accept_loop(self) -> None:
        assert self._server_socket is not None
        while not self._closing.is_set():
            try:
                conn, _addr = self._server_socket.accept()
            except _socket.timeout:
                continue
            except OSError:
                break
            try:
                with conn:
                    message = _unpack_frame(conn)
                self._inbox.put(message)
            except NetworkError:
                continue

    # -- messaging ---------------------------------------------------------------------
    def msg_send(self, socket: GrasSocket, msgtype_name: str,
                 payload: Any = None) -> None:
        msgtype = self.registry.by_name(msgtype_name)
        payload_bytes = b""
        if msgtype.payload_desc is not None and payload is not None:
            payload_bytes = msgtype.payload_desc.encode(payload, self.arch)
        message = GrasMessage(
            msgtype=msgtype_name, payload_bytes=payload_bytes,
            sender_arch=self.arch.name, sender_host=_LOCALHOST,
            sender_port=self._ensure_listen_port())
        frame = _pack_frame(message)
        try:
            with _socket.create_connection((socket.host, socket.port),
                                           timeout=5.0) as conn:
                conn.sendall(frame)
        except OSError as exc:
            raise NetworkError(
                f"cannot send {msgtype_name!r} to {socket.address}: {exc}"
            ) from exc

    def _next_message(self, timeout: float) -> GrasMessage:
        if self._buffer:
            return self._buffer.pop(0)
        try:
            return self._inbox.get(timeout=timeout)
        except queue.Empty:
            raise SimTimeoutError(
                f"no message within {timeout}s") from None

    def _decode(self, message: GrasMessage) -> Any:
        msgtype = self.registry.by_name(message.msgtype)
        if msgtype.payload_desc is None or not message.payload_bytes:
            return None
        src_arch = ARCHITECTURES.get(message.sender_arch, LOCAL_ARCH)
        value, _ = msgtype.payload_desc.decode(message.payload_bytes, src_arch)
        return value

    def msg_wait(self, timeout: float, msgtype_name: str
                 ) -> Tuple[GrasSocket, Any]:
        deadline = time.monotonic() + timeout
        for idx, message in enumerate(self._buffer):
            if message.msgtype == msgtype_name:
                self._buffer.pop(idx)
                return (GrasSocket(message.sender_host, message.sender_port),
                        self._decode(message))
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise SimTimeoutError(
                    f"no {msgtype_name!r} message within {timeout}s")
            message = self._next_message(remaining)
            if message.msgtype == msgtype_name:
                return (GrasSocket(message.sender_host, message.sender_port),
                        self._decode(message))
            self._buffer.append(message)

    def msg_handle(self, timeout: float) -> bool:
        try:
            message = (self._buffer.pop(0) if self._buffer
                       else self._next_message(timeout))
        except SimTimeoutError:
            return False
        callback = self.registry.callback_for(message.msgtype)
        if callback is None:
            raise UnknownMessageError(
                f"no callback registered for {message.msgtype!r}")
        source = GrasSocket(message.sender_host, message.sender_port)
        callback(self, source, self._decode(message))
        return True

    # -- time ---------------------------------------------------------------------------------
    def os_time(self) -> float:
        return time.monotonic() - self._start_wallclock

    def os_sleep(self, duration: float) -> None:
        time.sleep(duration)

    # -- benchmarking ------------------------------------------------------------------------------
    def _inject_computation(self, duration: float) -> None:
        # In real-life mode the computation really ran: nothing to inject.
        return

    # -- lifecycle ------------------------------------------------------------------------------------
    def exit(self) -> None:
        self._closing.set()
        if self._server_socket is not None:
            try:
                self._server_socket.close()
            except OSError:  # pragma: no cover - defensive
                pass


class RlWorld:
    """A set of GRAS processes running for real on the local machine."""

    def __init__(self) -> None:
        self.processes: List[RlGrasProcess] = []
        self._threads: List[threading.Thread] = []
        self._errors: List[BaseException] = []

    def add_process(self, name: str, func: Callable, *args,
                    arch: Optional[str] = None, **kwargs) -> RlGrasProcess:
        """Register ``func(gras_process, *args)`` to run in its own thread."""
        architecture = ARCHITECTURES[arch] if arch else LOCAL_ARCH
        process = RlGrasProcess(name, architecture)
        self.processes.append(process)

        def body() -> None:
            try:
                func(process, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - reported in run()
                self._errors.append(exc)
            finally:
                process.exit()

        thread = threading.Thread(target=body, daemon=True,
                                  name=f"gras-rl-{name}")
        self._threads.append(thread)
        return process

    def run(self, timeout: Optional[float] = 30.0) -> None:
        """Start every process and wait for all of them to finish.

        Raises the first error any process raised, if any.
        """
        for thread in self._threads:
            thread.start()
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            thread.join(remaining)
        if any(thread.is_alive() for thread in self._threads):
            raise SimTimeoutError("real-life GRAS processes did not finish "
                                  f"within {timeout}s")
        if self._errors:
            raise self._errors[0]
