"""Automatic benchmarking of application code (``GRAS_BENCH_*`` macros).

The paper: *"Automatic benchmarking of application code for simulation
(CPU)"*.  In the original GRAS the ``GRAS_BENCH_ALWAYS_BEGIN/END`` macros
measure how long a block of *real* code takes on the real machine, and in
simulation mode inject that duration as simulated computation.

Here the same idea is a context manager: the wall-clock time of the block
is measured with :func:`time.perf_counter`; the backend then either injects
an equivalent simulated execution (simulation mode) or does nothing more
(real-life mode).  A :class:`BenchRecorder` additionally supports the
``ONCE`` variants (run the block for real only the first time, replay the
recorded duration afterwards) used by SMPI.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

__all__ = ["BenchRecorder", "measure_block"]


def measure_block(func: Callable[[], object]) -> tuple:
    """Run ``func`` and return ``(result, elapsed_wall_clock_seconds)``."""
    start = time.perf_counter()
    result = func()
    elapsed = time.perf_counter() - start
    return result, elapsed


class BenchRecorder:
    """Remembers measured durations keyed by a bench site identifier.

    Supports the two sampling policies of the paper's macros:

    * ``ALWAYS`` — measure every execution (``GRAS_BENCH_ALWAYS_*``);
    * ``ONCE`` — measure the first execution, then reuse the recorded
      duration without re-running the real code
      (``SMPI_BENCH_ONCE_RUN_ONCE_*``).
    """

    def __init__(self) -> None:
        self._measurements: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def record(self, key: str, duration: float) -> None:
        """Store a measured duration for ``key`` (averaging over runs)."""
        if duration < 0:
            raise ValueError("duration must be >= 0")
        count = self._counts.get(key, 0)
        previous = self._measurements.get(key, 0.0)
        # running average, so repeated ALWAYS measurements stay stable
        self._measurements[key] = (previous * count + duration) / (count + 1)
        self._counts[key] = count + 1

    def has(self, key: str) -> bool:
        return key in self._measurements

    def duration_of(self, key: str) -> float:
        """Recorded (averaged) duration of a bench site."""
        try:
            return self._measurements[key]
        except KeyError:
            raise KeyError(f"no benchmark recorded for {key!r}") from None

    def count_of(self, key: str) -> int:
        return self._counts.get(key, 0)

    def clear(self) -> None:
        self._measurements.clear()
        self._counts.clear()
