"""The GRAS process interface shared by the simulation and real-life backends.

The whole point of GRAS (paper: *"Ability to run the same code in full or
partial simulation mode or in real-world mode"*) is that application code is
written once against this interface and executed by either backend:

* :class:`repro.gras.sim_backend.SimGrasProcess` runs it inside the MSG
  simulator (using the thread context factory, so the code contains no
  ``yield``);
* :class:`repro.gras.rl_backend.RlGrasProcess` runs it as a real thread
  exchanging bytes over localhost TCP sockets.

Application code receives a :class:`GrasProcess` as its first argument and
uses only its methods, exactly like C GRAS code uses only ``gras_*``
functions.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Iterator, Optional, Tuple

from repro.gras.arch import Architecture, LOCAL_ARCH
from repro.gras.bench import BenchRecorder
from repro.gras.message import MessageRegistry
from repro.gras.socket import GrasSocket

__all__ = ["GrasProcess"]


class GrasProcess:
    """Abstract GRAS process: messaging, sockets, time, benchmarking."""

    def __init__(self, name: str, arch: Architecture = LOCAL_ARCH) -> None:
        self.name = name
        self.arch = arch
        self.registry = MessageRegistry()
        self.bench_recorder = BenchRecorder()
        self.properties: dict = {}

    # -- message types -------------------------------------------------------------------
    def msgtype_declare(self, name: str, payload_desc=None) -> None:
        """Declare a message type (``gras_msgtype_declare``)."""
        self.registry.declare(name, payload_desc)

    def cb_register(self, msgtype_name: str, callback: Callable) -> None:
        """Register ``callback(process, source_socket, payload)`` for a type."""
        self.registry.register_callback(msgtype_name, callback)

    # -- sockets (backend-specific) ---------------------------------------------------------
    def socket_server(self, port: int) -> GrasSocket:
        """Open a server socket on ``port`` (``gras_socket_server``)."""
        raise NotImplementedError

    def socket_client(self, host: str, port: int) -> GrasSocket:
        """Create a client socket to ``host:port`` (``gras_socket_client``)."""
        raise NotImplementedError

    # -- messaging (backend-specific) ----------------------------------------------------------
    def msg_send(self, socket: GrasSocket, msgtype_name: str,
                 payload: Any = None) -> None:
        """Send one typed message to ``socket`` (``gras_msg_send``)."""
        raise NotImplementedError

    def msg_wait(self, timeout: float, msgtype_name: str
                 ) -> Tuple[GrasSocket, Any]:
        """Block until a message of the given type arrives.

        Returns ``(source_socket, payload)`` like ``gras_msg_wait`` fills
        its ``&from`` and ``&payload`` output arguments.
        """
        raise NotImplementedError

    def msg_handle(self, timeout: float) -> bool:
        """Wait for (at most ``timeout``) and dispatch one incoming message.

        Returns True when a message was handled, False on timeout.
        """
        raise NotImplementedError

    # -- time (backend-specific) -------------------------------------------------------------------
    def os_time(self) -> float:
        """Current time (simulated clock or wall clock)."""
        raise NotImplementedError

    def os_sleep(self, duration: float) -> None:
        """Sleep (simulated or real)."""
        raise NotImplementedError

    # -- benchmarking ----------------------------------------------------------------------------------
    def _inject_computation(self, duration: float) -> None:
        """Account for ``duration`` seconds of computation (backend hook)."""
        raise NotImplementedError

    @contextlib.contextmanager
    def bench_always(self, key: str = "") -> Iterator[None]:
        """``GRAS_BENCH_ALWAYS_BEGIN/END``: measure the block every time.

        The real duration of the block is measured and, in simulation mode,
        injected as simulated computation on the process's host.
        """
        import time as _time
        start = _time.perf_counter()
        try:
            yield
        finally:
            elapsed = _time.perf_counter() - start
            if key:
                self.bench_recorder.record(key, elapsed)
            self._inject_computation(elapsed)

    @contextlib.contextmanager
    def bench_once(self, key: str) -> Iterator[bool]:
        """``SMPI_BENCH_ONCE``-style sampling: run the block once for real.

        The context manager yields ``True`` when the block should really
        run (first time) and ``False`` afterwards; either way the recorded
        duration is injected as simulated computation.

        Usage::

            with proc.bench_once("dgemm") as should_run:
                if should_run:
                    expensive_kernel()
        """
        import time as _time
        should_run = not self.bench_recorder.has(key)
        start = _time.perf_counter()
        try:
            yield should_run
        finally:
            if should_run:
                elapsed = _time.perf_counter() - start
                self.bench_recorder.record(key, elapsed)
            self._inject_computation(self.bench_recorder.duration_of(key))

    # -- lifecycle -----------------------------------------------------------------------------------------
    def exit(self) -> None:
        """Tear the process down (``gras_exit``); default is a no-op."""
