"""GRAS — Grid Reality And Simulation (paper section "Application development").

GRAS is the API for developing *real* distributed applications that run
unchanged either inside the simulator or in the real world:

* typed messages whose payloads are described once (:mod:`repro.gras.datadesc`)
  and exchanged across heterogeneous architectures ("simple and
  cross-architecture communication of complex data structures");
* callbacks and explicit waits on message types (:mod:`repro.gras.message`);
* two interchangeable backends: :class:`~repro.gras.sim_backend.SimWorld`
  runs every GRAS process inside the MSG simulator, while
  :class:`~repro.gras.rl_backend.RlWorld` runs the very same process
  functions over real localhost TCP sockets and OS threads;
* automatic benchmarking of computation blocks
  (:mod:`repro.gras.bench`) so that real code can be simulated accurately.
"""

from repro.gras.arch import ARCHITECTURES, Architecture, LOCAL_ARCH
from repro.gras.bench import BenchRecorder
from repro.gras.datadesc import (
    ArrayDesc,
    DataDescription,
    ScalarDesc,
    StringDesc,
    StructDesc,
    datadesc_by_name,
    declare_struct,
)
from repro.gras.message import MessageType, MessageRegistry
from repro.gras.process import GrasProcess
from repro.gras.rl_backend import RlWorld
from repro.gras.sim_backend import SimWorld
from repro.gras.socket import GrasSocket

__all__ = [
    "ARCHITECTURES",
    "Architecture",
    "ArrayDesc",
    "BenchRecorder",
    "DataDescription",
    "GrasProcess",
    "GrasSocket",
    "LOCAL_ARCH",
    "MessageRegistry",
    "MessageType",
    "RlWorld",
    "ScalarDesc",
    "SimWorld",
    "StringDesc",
    "StructDesc",
    "datadesc_by_name",
    "declare_struct",
]
