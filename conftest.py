"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (offline environments without a working editable install), and
arms a per-test hang watchdog: a simulation that stops advancing time but
keeps spinning (a zero-delta engine loop, a lost wakeup...) would otherwise
freeze the whole suite.  The watchdog injects a ``TestHangError`` into the
test thread after ``REPRO_TEST_TIMEOUT`` seconds (default 30) and dumps all
thread stacks with :mod:`faulthandler` so the wedge point is visible.
"""

import ctypes
import faulthandler
import os
import sys
import threading

import pytest

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

#: Per-test wall-clock budget in seconds (0 disables the watchdog).
TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "30"))


class TestHangError(Exception):
    """Raised inside a test that exceeded the per-test wall-clock budget."""


def _arm_watchdog(target_thread_id, timeout, fired, done):
    """Start a timer that asynchronously raises TestHangError in the test."""

    def _fire():
        # A test that finished right at the boundary must not get a stray
        # async exception injected into its teardown (an async exc cannot
        # be revoked once set).  ``done`` is re-checked right before the
        # injection because the stack dump takes a moment; the remaining
        # window is a few bytecodes — best effort by nature.
        if done:
            return
        fired.append(True)
        # sys.__stderr__ bypasses pytest's capture, which would otherwise
        # swallow the dump of a test that never returns.
        err = sys.__stderr__ or sys.stderr
        err.write(f"\n=== repro watchdog: test exceeded {timeout:g}s, "
                  f"dumping all stacks ===\n")
        faulthandler.dump_traceback(file=err)
        err.flush()
        if done:
            return
        # Inject the exception into the (pure-Python) simulation loop.  An
        # async exception only lands in a thread executing bytecode, never
        # in one blocked in C: target the test's main thread (generator-
        # context spins) and every simulated-process thread (thread-context
        # spins — the main thread is then parked in Event.wait and killing
        # the spinner unwinds it through the context handshake).
        targets = [target_thread_id]
        targets.extend(t.ident for t in threading.enumerate()
                       if t.name == "sim-process" and t.ident is not None)
        for tid in targets:
            ctypes.pythonapi.PyThreadState_SetAsyncExc(
                ctypes.c_ulong(tid), ctypes.py_object(TestHangError))

    timer = threading.Timer(timeout, _fire)
    timer.daemon = True
    timer.start()
    return timer


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if TEST_TIMEOUT <= 0:
        yield
        return
    fired = []
    done = []
    timer = _arm_watchdog(threading.get_ident(), TEST_TIMEOUT, fired, done)
    try:
        yield
    finally:
        done.append(True)
        timer.cancel()
        if fired:
            item.add_report_section(
                "call", "watchdog",
                f"test killed by the repro hang watchdog after "
                f"{TEST_TIMEOUT:g}s")
