"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (offline environments without a working editable install), and
registers the shared fixtures used by both ``tests/`` and ``benchmarks/``.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
