#!/usr/bin/env python
"""AMOK example: platform monitoring and topology discovery.

The Grid Application Toolbox panel of the paper lists *platform monitoring
(CPU and network)* and *network topology discovery*.  This example runs the
AMOK bandwidth meter between the hosts of a two-site grid (inside the
simulator) and feeds the measured pairwise bandwidths to the topology
inference module, which recovers the two sites without ever looking at the
platform description.

Run with::

    python examples/amok_monitoring.py
"""

from repro.amok import BandwidthMeter, TopologyInference
from repro.gras import SimWorld
from repro.platform import make_two_site_grid

MEASUREMENT_PORT = 6000


def run_measurement(platform_factory, src, dst, payload_bytes=2_000_000):
    """Measure src -> dst bandwidth on a fresh simulated platform."""
    platform = platform_factory()
    world = SimWorld(platform)
    meter = BandwidthMeter(payload_bytes=payload_bytes)
    results = {}

    def source(proc):
        result = meter.measure(proc, dst, MEASUREMENT_PORT,
                               reply_port=MEASUREMENT_PORT + 1)
        results["measurement"] = result
        meter.stop_sink(proc, dst, MEASUREMENT_PORT)

    def sink(proc):
        meter.sink(proc, MEASUREMENT_PORT)

    world.add_process("sink", dst, sink)
    world.add_process("source", src, source)
    world.run()
    return results["measurement"]


def main():
    hosts_per_site = 2
    factory = lambda: make_two_site_grid(hosts_per_site=hosts_per_site)
    hosts = [f"siteA-{i}" for i in range(hosts_per_site)] + \
            [f"siteB-{i}" for i in range(hosts_per_site)]

    print("Pairwise bandwidth measurements (AMOK, simulated):")
    bandwidths = {}
    for i, src in enumerate(hosts):
        for dst in hosts[i + 1:]:
            result = run_measurement(factory, src, dst)
            bandwidths[(src, dst)] = result.bandwidth
            print(f"  {src:8s} -> {dst:8s} : "
                  f"{result.bandwidth / 1e6:6.2f} MB/s, "
                  f"latency ~ {result.latency * 1e3:5.2f} ms")

    inference = TopologyInference(ratio_threshold=2.0)
    topology = inference.infer(hosts, bandwidths)
    print("\nInferred topology:")
    for idx, cluster in enumerate(topology.clusters):
        print(f"  site {idx}: {', '.join(cluster)} "
              f"(intra ~ {topology.intra_bandwidth[idx] / 1e6:.2f} MB/s)")
    for (i, j), bw in topology.inter_bandwidth.items():
        print(f"  site {i} <-> site {j}: ~ {bw / 1e6:.2f} MB/s (wide area)")


if __name__ == "__main__":
    main()
