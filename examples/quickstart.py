#!/usr/bin/env python
"""Quickstart: the paper's MSG client/server example, in the s4u API.

The paper's listing creates a client that sends a 30 MFlop / 3.2 MB task to
a server on port 22, executes a 10.5 MFlop local task, and waits for a
10 KB acknowledgement on port 23; the server executes whatever it receives
and acknowledges.  This script runs that exact exchange on a small LAN
through the modern actor/activity API (``repro.s4u``) and prints the
timeline; the simulated dates are identical to the MSG version of this
example (the MSG API is a compatibility shim over s4u).

Run with::

    python examples/quickstart.py
"""

from repro import s4u
from repro.s4u import this_actor
from repro.platform import make_star

#: One MFlop in flop / one MB in bytes (the paper uses decimal units).
MFLOP = 1e6
MBYTE = 1e6

PORT_22 = 22
PORT_23 = 23


def mailbox_for(engine, host_name, port):
    """The paper's "port" rendezvous, as an s4u mailbox name."""
    return engine.mailbox(f"{host_name}:{port}")


def client(actor, server_host_name):
    """The paper's ``int client(int argc, char **argv)`` function."""
    engine = actor.engine

    # simulated data transfer: 30.0 MFlop of work, 3.2 MB of data
    request = {"name": "Remote", "flops": 30.0 * MFLOP}
    yield mailbox_for(engine, server_host_name, PORT_22).put(
        request, size=3.2 * MBYTE, name="Remote")
    print(f"[{actor.now:8.4f}] {actor.name}: sent 'Remote' to "
          f"{server_host_name}")

    # simulated task execution: 10.50 MFlop
    yield this_actor.execute(10.50 * MFLOP, name="Local")
    print(f"[{actor.now:8.4f}] {actor.name}: executed 'Local'")

    # simulated data reception
    ack = yield mailbox_for(engine, this_actor.get_host().name, PORT_23).get()
    print(f"[{actor.now:8.4f}] {actor.name}: received '{ack['name']}'")


def server(actor, client_host_name, requests_to_serve=1):
    """The paper's ``int server(int argc, char **argv)`` function."""
    engine = actor.engine
    inbox = mailbox_for(engine, this_actor.get_host().name, PORT_22)
    for _ in range(requests_to_serve):
        # simulated data reception
        request = yield inbox.get()
        print(f"[{actor.now:8.4f}] {actor.name}: received "
              f"'{request['name']}'")

        # simulated task execution
        yield this_actor.execute(request["flops"], name=request["name"])
        print(f"[{actor.now:8.4f}] {actor.name}: executed "
              f"'{request['name']}'")

        # simulated data transfer: 0 MFlop, 10 KB
        ack = {"name": "Ack", "flops": 0.0}
        yield mailbox_for(engine, client_host_name, PORT_23).put(
            ack, size=0.01 * MBYTE, name="Ack")
        print(f"[{actor.now:8.4f}] {actor.name}: acknowledged to "
              f"{client_host_name}")


def main():
    # a small network of workstations: one server, one client
    platform = make_star(num_hosts=1, host_speed=1e8,
                         link_bandwidth=1.25e6, link_latency=1e-3,
                         center_name="server-host", prefix="client-host")
    engine = s4u.Engine(platform)
    engine.add_actor("client", "client-host-0", client, "server-host")
    engine.add_actor("server", "server-host", server, "client-host-0")
    final_time = engine.run()
    print(f"\nSimulation ended at t={final_time:.4f} s")
    return final_time


if __name__ == "__main__":
    main()
