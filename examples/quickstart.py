#!/usr/bin/env python
"""Quickstart: the paper's MSG client/server example, translated literally.

The paper's listing creates a client that sends a 30 MFlop / 3.2 MB task to
a server on port 22, executes a 10.5 MFlop local task, and waits for a
10 KB acknowledgement on port 23; the server executes whatever it receives
and acknowledges.  This script runs that exact exchange on a small LAN and
prints the timeline.

Run with::

    python examples/quickstart.py
"""

from repro import Environment
from repro.msg import (
    MSG_get_host_by_name,
    MSG_task_create,
    MSG_task_execute,
    MSG_task_get,
    MSG_task_put,
)
from repro.platform import make_star

PORT_22 = 22
PORT_23 = 23


def client(proc, server_host_name):
    """The paper's ``int client(int argc, char **argv)`` function."""
    destination = MSG_get_host_by_name(proc, server_host_name)

    # simulated data transfer: 30.0 MFlop of work, 3.2 MB of data
    remote = MSG_task_create("Remote", 30.0, 3.2)
    yield MSG_task_put(proc, remote, destination, PORT_22)
    print(f"[{proc.now:8.4f}] {proc.name}: sent 'Remote' to "
          f"{destination.name}")

    # simulated task execution: 10.50 MFlop
    local = MSG_task_create("Local", 10.50, 3.2)
    yield MSG_task_execute(proc, local)
    print(f"[{proc.now:8.4f}] {proc.name}: executed 'Local'")

    # simulated data reception
    ack = yield MSG_task_get(proc, PORT_23)
    print(f"[{proc.now:8.4f}] {proc.name}: received '{ack.name}'")


def server(proc, client_host_name, requests_to_serve=1):
    """The paper's ``int server(int argc, char **argv)`` function."""
    for _ in range(requests_to_serve):
        # simulated data reception
        task = yield MSG_task_get(proc, PORT_22)
        print(f"[{proc.now:8.4f}] {proc.name}: received '{task.name}'")

        # simulated task execution
        yield MSG_task_execute(proc, task)
        print(f"[{proc.now:8.4f}] {proc.name}: executed '{task.name}'")

        source = MSG_get_host_by_name(proc, client_host_name)

        # simulated data transfer: 0 MFlop, 10 KB
        ack = MSG_task_create("Ack", 0, 0.01)
        yield MSG_task_put(proc, ack, source, PORT_23)
        print(f"[{proc.now:8.4f}] {proc.name}: acknowledged to "
              f"{source.name}")


def main():
    # a small network of workstations: one server, one client
    platform = make_star(num_hosts=1, host_speed=1e8,
                         link_bandwidth=1.25e6, link_latency=1e-3,
                         center_name="server-host", prefix="client-host")
    env = Environment(platform)
    env.create_process("client", "client-host-0", client, "server-host")
    env.create_process("server", "server-host", server, "client-host-0")
    final_time = env.run()
    print(f"\nSimulation ended at t={final_time:.4f} s")
    return final_time


if __name__ == "__main__":
    main()
