#!/usr/bin/env python
"""Failure injection: a master/worker fleet surviving host churn.

The paper lists *trace-based simulation of dynamic resource failures* as a
core SURF capability.  This example shows the whole fault-tolerance layer
at work: a sink collects results from a fleet of ``auto_restart`` workers
while a seeded :class:`~repro.s4u.failure.FailureInjector` keeps turning
random worker hosts off and back on.  Workers die mid-work, their
in-flight transfers fail (the sink shrugs them off), and each restored
host reboots its worker — the fleet still delivers every result.

Run with::

    python examples/failure_churn.py [seed]
"""

import sys

from repro import s4u
from repro.exceptions import TransferFailureError
from repro.platform import make_star
from repro.s4u import FailureInjector

NUM_WORKERS = 16
RESULTS_TARGET = 400
WORK_FLOPS = 1e6       # ~1 ms per result on a 1 GFlop/s host
RESULT_BYTES = 1e3


def sink(actor, received):
    """Collects results on the never-churned center host."""
    box = actor.engine.mailbox("sink")
    while received[0] < RESULTS_TARGET:
        try:
            yield box.get()
            received[0] += 1
        except TransferFailureError:
            continue   # the matched worker's host just died; re-post


def worker(actor, index):
    """Computes and reports forever; churn does the killing."""
    box = actor.engine.mailbox("sink")
    while True:
        yield actor.execute(WORK_FLOPS)
        yield box.put(index, size=RESULT_BYTES)


def run(seed=42, verbose=True):
    engine = s4u.Engine(make_star(num_hosts=NUM_WORKERS, host_speed=1e9,
                                  link_bandwidth=125e6, link_latency=1e-4))
    received = [0]
    engine.add_actor("sink", "center", sink, received)
    for i in range(NUM_WORKERS):
        engine.add_actor(f"worker-{i}", f"leaf-{i}", worker, i,
                         daemon=True, auto_restart=True)

    if verbose:
        engine.on_host_state_change(lambda host, is_on: print(
            f"[{engine.now:8.4f}] {host.name} "
            f"{'back up' if is_on else 'DOWN'}"
            f"{'' if is_on else f' ({received[0]} results so far)'}"))

    injector = FailureInjector(
        engine, seed=seed, hosts=[f"leaf-{i}" for i in range(NUM_WORKERS)],
        mtbf=0.002, mean_downtime=0.01, max_failures=100)
    injector.start()

    final = engine.run()
    if verbose:
        print(f"[{final:8.4f}] all {received[0]} results collected through "
              f"{injector.failures} host failures "
              f"({engine.restart_count} worker restarts)")
    return {"final_time": final, "received": received[0],
            "failures": injector.failures, "restarts": engine.restart_count}


if __name__ == "__main__":
    run(seed=int(sys.argv[1]) if len(sys.argv) > 1 else 42)
