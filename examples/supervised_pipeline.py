#!/usr/bin/env python
"""Fault-tolerance toolkit: a supervised pipeline surviving host churn.

The three ``repro.ft`` primitives composed into one loss-free
master/worker pipeline:

* a :class:`~repro.ft.Supervisor` keeps the worker fleet alive
  (one-for-one restarts; a child churned away with its host is parked
  and re-spawned when the host reboots);
* a :class:`~repro.ft.HeartbeatMonitor` watches the worker hosts and
  reports suspect/alive flips as they happen;
* the master pushes every item through a seeded
  :class:`~repro.ft.RetryPolicy` (exponential backoff, deterministic
  jitter, per-attempt timeout) — a send parked on a dead worker times
  out and is retried until the supervisor has the worker back — and
  re-submits whatever the consumer has not acknowledged, so duplicates
  are possible but losses are not.

A seeded :class:`~repro.s4u.failure.FailureInjector` does the damage.
Everything is deterministic: same seed, same flips, same dates.

Run with::

    python examples/supervised_pipeline.py [seed]
"""

import sys

from repro import s4u
from repro.exceptions import TransferFailureError
from repro.ft import ChildSpec, HeartbeatMonitor, RetryPolicy, Supervisor
from repro.platform import make_star
from repro.s4u import FailureInjector

NUM_WORKERS = 4
NUM_ITEMS = 40
ITEM_FLOPS = 1e8        # 100 ms per item on a 1 GFlop/s host
ITEM_BYTES = 1e3
DRAIN_WAIT = 1.0        # settle time before re-submitting unacked items


def worker(actor, index):
    """Pull an item from this worker's inbox, crunch it, push the result."""
    jobs = actor.engine.mailbox(f"jobs-{index}")
    out = actor.engine.mailbox("out")
    while True:
        try:
            item, flops = yield jobs.get()
        except TransferFailureError:
            continue
        yield actor.execute(flops)
        yield out.put((item, index), size=ITEM_BYTES)


def consumer(actor, state):
    """Dedup sink: first delivery of each item id wins."""
    out = actor.engine.mailbox("out")
    while True:
        try:
            item, _index = yield out.get()
        except TransferFailureError:
            continue
        if item in state["acked"]:
            state["duplicates"] += 1
        else:
            state["acked"].add(item)


def master(actor, state, policy, verbose):
    """Retry-wrapped round-robin submission, at-least-once overall."""
    engine = actor.engine
    pending = sorted(range(NUM_ITEMS))
    turn = 0
    first_round = True
    while pending:
        if not first_round:
            state["resubmissions"] += len(pending)
            if verbose:
                print(f"[{engine.now:7.3f}] re-submitting "
                      f"{len(pending)} unacked item(s): {pending}")
        for item in pending:
            inbox = engine.mailbox(f"jobs-{turn % NUM_WORKERS}")
            turn += 1
            yield from policy.run(
                lambda box=inbox, item=item: box.put_async(
                    (item, ITEM_FLOPS), size=ITEM_BYTES))
        yield actor.sleep_for(DRAIN_WAIT)
        pending = sorted(set(range(NUM_ITEMS)) - state["acked"])
        first_round = False


def run(seed=42, verbose=True):
    engine = s4u.Engine(make_star(num_hosts=NUM_WORKERS, host_speed=1e9,
                                  link_bandwidth=125e6, link_latency=1e-4))
    leaves = [f"leaf-{i}" for i in range(NUM_WORKERS)]
    state = {"acked": set(), "duplicates": 0, "resubmissions": 0}
    policy = RetryPolicy(max_attempts=8, base_delay=0.2, seed=7,
                         attempt_timeout=1.5)

    def flip(kind):
        return lambda host, date: verbose and print(
            f"[{date:7.3f}] detector: {kind} {host}")

    supervisor = Supervisor(
        engine,
        [ChildSpec(f"worker-{i}", leaves[i], worker, i)
         for i in range(NUM_WORKERS)],
        strategy="one_for_one", max_restarts=50, window=10.0,
        name="pipeline-supervisor", host="center", daemon=True)
    supervisor.start()
    monitor = HeartbeatMonitor(engine, leaves, "center",
                               period=0.25, timeout=0.75,
                               on_suspect=flip("suspect"),
                               on_alive=flip("alive")).start()
    engine.add_actor("consumer", "center", consumer, state, daemon=True)
    engine.add_actor("master", "center", master, state, policy, verbose)

    injector = FailureInjector(engine, seed=seed, hosts=leaves,
                               mtbf=0.4, mean_downtime=2.0, max_failures=5)
    injector.start()

    final = engine.run()
    suspects = sum(1 for _, kind, _ in monitor.events if kind == "suspect")
    if verbose:
        print(f"[{final:7.3f}] pipeline done: "
              f"{len(state['acked'])}/{NUM_ITEMS} items, "
              f"{policy.retries} send retries, "
              f"{state['resubmissions']} re-submissions, "
              f"{state['duplicates']} duplicates, "
              f"{supervisor.restarts} worker restarts, "
              f"{suspects} suspicions through {injector.failures} failures")
    return {"final_time": final, "delivered": len(state["acked"]),
            "duplicates": state["duplicates"],
            "resubmissions": state["resubmissions"],
            "send_retries": policy.retries,
            "worker_restarts": supervisor.restarts,
            "suspects": suspects, "failures": injector.failures}


if __name__ == "__main__":
    run(seed=int(sys.argv[1]) if len(sys.argv) > 1 else 42)
