#!/usr/bin/env python
"""A peer-to-peer file sharing application on volatile Internet hosts.

The paper's list of target applications ends with *"a peer-to-peer
file-sharing application running on volatile Internet hosts"*.  This example
exercises the SURF features that make such a study possible:

* trace-driven CPU availability ("performance variations due to external
  load"),
* trace-driven transient host failures,
* timeouts and failure handling in the s4u API.

A tracker actor knows which peers hold the file; downloaders ask the
tracker, then fetch chunks from the chosen seed.  One seed fails mid-way
through a transfer, so its client falls back to another seed.  Messages are
plain payloads with explicit simulated sizes — ports map to mailboxes named
``"<host>:<port>"``.

Run with::

    python examples/p2p_filesharing.py
"""

from dataclasses import dataclass

from repro import Engine, SimTimeoutError, TransferFailureError
from repro.platform import Platform
from repro.surf.trace import Trace

FILE_SIZE = 40e6          # 40 MB file
CHUNK_SIZE = 10e6         # fetched in 10 MB chunks
TRACKER_PORT = 1
SEED_PORT = 2
REPLY_PORT = 10
CHUNK_PORT = 20


@dataclass
class ChunkRequest:
    """Who wants a chunk, and which host to ship it to."""

    requester: str
    reply_host: str


def build_volatile_platform(num_peers=4):
    """Internet-like star: slow asymmetric links, volatile availability."""
    platform = Platform("volatile-internet")
    platform.add_router("internet")
    platform.add_host("tracker", 1e9)
    platform.add_link("tracker-link", 1.25e6, 20e-3)
    platform.connect("tracker", "internet", "tracker-link")
    for i in range(num_peers):
        # peer 1 suffers a transient failure between t=30s and t=200s
        state_trace = None
        if i == 1:
            state_trace = Trace([(30.0, 0.0), (200.0, 1.0)],
                                name="peer-1-failure")
        # external load halves peer 2's CPU every other 50 s
        avail_trace = None
        if i == 2:
            avail_trace = Trace([(0.0, 1.0), (50.0, 0.5)], period=100.0,
                                name="peer-2-load")
        platform.add_host(f"peer-{i}", 5e8, state_trace=state_trace,
                          availability_trace=avail_trace)
        platform.add_link(f"peer-link-{i}", 6.25e5, 30e-3)
        platform.connect(f"peer-{i}", "internet", f"peer-link-{i}")
    return platform


def tracker(actor, seeds, expected_queries):
    """Answers "who has the file?" queries with the list of seeds."""
    engine = actor.engine
    inbox = engine.mailbox(f"{actor.host.name}:{TRACKER_PORT}")
    served = 0
    while served < expected_queries:
        asker_host = yield inbox.get()
        yield engine.mailbox(f"{asker_host}:{REPLY_PORT}").put(
            list(seeds), size=1e3, name="seed-list")
        served += 1


def seed(actor, chunks_to_serve):
    """Serves chunk requests until told it is no longer needed."""
    engine = actor.engine
    inbox = engine.mailbox(f"{actor.host.name}:{SEED_PORT}")
    served = 0
    while served < chunks_to_serve:
        try:
            request = yield inbox.get(timeout=500.0)
        except SimTimeoutError:
            return
        yield engine.mailbox(f"{request.reply_host}:{CHUNK_PORT}").put(
            CHUNK_SIZE, size=CHUNK_SIZE, name="chunk")
        served += 1


def downloader(actor, name, log, preferred_seed=0):
    """Asks the tracker for seeds, then downloads the file chunk by chunk."""
    engine = actor.engine
    my_host = actor.host.name
    yield engine.mailbox(f"tracker:{TRACKER_PORT}").put(
        my_host, size=1e3, name="query")
    seed_list = yield engine.mailbox(f"{my_host}:{REPLY_PORT}").get()

    remaining = FILE_SIZE
    seed_index = preferred_seed
    failures = 0
    while remaining > 0:
        target = seed_list[seed_index % len(seed_list)]
        request = ChunkRequest(requester=name, reply_host=my_host)
        try:
            yield engine.mailbox(f"{target}:{SEED_PORT}").put(
                request, size=1e3, name="chunk-request", timeout=60.0)
            chunk_bytes = yield engine.mailbox(
                f"{my_host}:{CHUNK_PORT}").get(timeout=120.0)
            remaining -= chunk_bytes
            log.append((actor.now, name, f"got chunk from {target}"))
        except (TransferFailureError, SimTimeoutError) as exc:
            failures += 1
            log.append((actor.now, name,
                        f"seed {target} unavailable ({type(exc).__name__}), "
                        "switching"))
            seed_index += 1
            if failures > 10:
                log.append((actor.now, name, "giving up"))
                return
    log.append((actor.now, name, "download complete"))


def main():
    platform = build_volatile_platform()
    engine = Engine(platform)
    log = []

    seeds = ["peer-0", "peer-1"]
    engine.add_actor("tracker", "tracker", tracker, seeds, 2)
    engine.add_actor("seed-0", "peer-0", seed, 12, daemon=True)
    engine.add_actor("seed-1", "peer-1", seed, 12, daemon=True)
    # leech-2 prefers the seed that will fail at t=30s, so it exercises the
    # failure-handling / fallback path; leech-3 starts on the healthy seed.
    engine.add_actor("leech-2", "peer-2", downloader, "leech-2", log, 1)
    engine.add_actor("leech-3", "peer-3", downloader, "leech-3", log, 0)

    final_time = engine.run()
    print(f"P2P session finished at t={final_time:.1f} s\n")
    for when, who, what in log:
        print(f"  [{when:8.2f}] {who:8s} {what}")


if __name__ == "__main__":
    main()
