#!/usr/bin/env python
"""A peer-to-peer file sharing application on volatile Internet hosts.

The paper's list of target applications ends with *"a peer-to-peer
file-sharing application running on volatile Internet hosts"*.  This example
exercises the SURF features that make such a study possible:

* trace-driven CPU availability ("performance variations due to external
  load"),
* trace-driven transient host failures,
* timeouts and failure handling in the MSG API.

A tracker process knows which peers hold the file; downloaders ask the
tracker, then fetch chunks from the chosen seed.  One seed fails mid-way
through a transfer, so its client falls back to another seed.

Run with::

    python examples/p2p_filesharing.py
"""

from repro import Environment, SimTimeoutError, Task, TransferFailureError
from repro.platform import Platform
from repro.surf.trace import Trace

FILE_SIZE = 40e6          # 40 MB file
CHUNK_SIZE = 10e6         # fetched in 10 MB chunks
TRACKER_PORT = 1
SEED_PORT = 2


def build_volatile_platform(num_peers=4):
    """Internet-like star: slow asymmetric links, volatile availability."""
    platform = Platform("volatile-internet")
    platform.add_router("internet")
    platform.add_host("tracker", 1e9)
    platform.add_link("tracker-link", 1.25e6, 20e-3)
    platform.connect("tracker", "internet", "tracker-link")
    for i in range(num_peers):
        # peer 1 suffers a transient failure between t=30s and t=200s
        state_trace = None
        if i == 1:
            state_trace = Trace([(30.0, 0.0), (200.0, 1.0)],
                                name="peer-1-failure")
        # external load halves peer 2's CPU every other 50 s
        avail_trace = None
        if i == 2:
            avail_trace = Trace([(0.0, 1.0), (50.0, 0.5)], period=100.0,
                                name="peer-2-load")
        platform.add_host(f"peer-{i}", 5e8, state_trace=state_trace,
                          availability_trace=avail_trace)
        platform.add_link(f"peer-link-{i}", 6.25e5, 30e-3)
        platform.connect(f"peer-{i}", "internet", f"peer-link-{i}")
    return platform


def tracker(proc, seeds, expected_queries):
    """Answers "who has the file?" queries with the list of seeds."""
    served = 0
    while served < expected_queries:
        query = yield proc.get(TRACKER_PORT)
        reply = Task("seed-list", data_size=1e3, payload=list(seeds))
        yield proc.put(reply, query.payload, 10)
        served += 1


def seed(proc, chunks_to_serve):
    """Serves chunk requests until told it is no longer needed."""
    served = 0
    while served < chunks_to_serve:
        try:
            request = yield proc.get(SEED_PORT, timeout=500.0)
        except SimTimeoutError:
            return
        chunk = Task("chunk", data_size=CHUNK_SIZE, payload=request.payload)
        yield proc.put(chunk, request.sender.host, 20)
        served += 1


def downloader(proc, name, log, preferred_seed=0):
    """Asks the tracker for seeds, then downloads the file chunk by chunk."""
    query = Task("query", data_size=1e3, payload=proc.host.name)
    yield proc.put(query, "tracker", TRACKER_PORT)
    seed_list = (yield proc.get(10)).payload

    remaining = FILE_SIZE
    seed_index = preferred_seed
    failures = 0
    while remaining > 0:
        target = seed_list[seed_index % len(seed_list)]
        request = Task("chunk-request", data_size=1e3, payload=name)
        try:
            yield proc.put(request, target, SEED_PORT, timeout=60.0)
            chunk = yield proc.get(20, timeout=120.0)
            remaining -= chunk.data_size
            log.append((proc.now, name, f"got chunk from {target}"))
        except (TransferFailureError, SimTimeoutError) as exc:
            failures += 1
            log.append((proc.now, name,
                        f"seed {target} unavailable ({type(exc).__name__}), "
                        "switching"))
            seed_index += 1
            if failures > 10:
                log.append((proc.now, name, "giving up"))
                return
    log.append((proc.now, name, "download complete"))


def main():
    platform = build_volatile_platform()
    env = Environment(platform)
    log = []

    seeds = ["peer-0", "peer-1"]
    env.create_process("tracker", "tracker", tracker, seeds, 2)
    env.create_process("seed-0", "peer-0", seed, 12, daemon=True)
    env.create_process("seed-1", "peer-1", seed, 12, daemon=True)
    # leech-2 prefers the seed that will fail at t=30s, so it exercises the
    # failure-handling / fallback path; leech-3 starts on the healthy seed.
    env.create_process("leech-2", "peer-2", downloader, "leech-2", log, 1)
    env.create_process("leech-3", "peer-3", downloader, "leech-3", log, 0)

    final_time = env.run()
    print(f"P2P session finished at t={final_time:.1f} s\n")
    for when, who, what in log:
        print(f"  [{when:8.2f}] {who:8s} {what}")


if __name__ == "__main__":
    main()
