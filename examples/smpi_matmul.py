#!/usr/bin/env python
"""SMPI example: the paper's 1-D parallel matrix multiplication.

The paper's SMPI panel shows an MPI matrix multiplication where matrices are
distributed by vertical strips; at every step ``k`` the owner of column
``k`` broadcasts it and every rank updates its strip of ``C`` with a local
GEMM wrapped in ``SMPI_BENCH_ONCE_RUN_ONCE`` so the simulation can replay
the measured kernel time.

This script simulates that program twice — on a homogeneous cluster and on
a heterogeneous two-site grid — and reports the simulated execution times,
illustrating "study how an existing MPI application reacts to platform
heterogeneity".

Run with::

    python examples/smpi_matmul.py
"""

import numpy as np

from repro.platform import make_cluster, make_two_site_grid
from repro.smpi import SmpiWorld


def parallel_mat_mult(mpi, M=128, N=128, K=128, alpha=1.0, beta=0.0):
    """The paper's ``parallel_mat_mult`` translated to the SMPI API."""
    comm = mpi.COMM_WORLD
    num_proc = comm.size
    my_id = comm.rank
    KK = K // num_proc
    NN = N // num_proc

    rng = np.random.default_rng(my_id)
    # Each rank owns a vertical strip of A (M x KK) and of B/C (K x NN).
    A = rng.random((M, KK))
    B = rng.random((K, NN))
    C = np.zeros((M, NN))

    for k in range(K):
        owner = k // KK
        if owner == my_id:
            buf_col = np.ascontiguousarray(A[:, k % KK])
        else:
            buf_col = None
        buf_col = comm.bcast(buf_col, root=owner)

        # Start benchmarking: the local GEMM runs for real only once, then
        # the recorded duration is charged to the simulated host.
        with mpi.sampler.bench_once("dgemm-step") as run_for_real:
            if run_for_real:
                C = alpha * np.outer(buf_col, B[k, :]) + (1.0 if k else beta) * C
    return C


def simulate(platform, num_ranks, label):
    world = SmpiWorld(platform, num_ranks=num_ranks)
    elapsed = world.run(parallel_mat_mult)
    print(f"  {label:35s} ranks={num_ranks}  simulated time = {elapsed:.4f} s")
    return elapsed


def main():
    print("1-D MPI matrix multiplication under SMPI")
    ranks = 4
    homogeneous = simulate(make_cluster(num_hosts=ranks, host_speed=1e9),
                           ranks, "homogeneous commodity cluster")
    heterogeneous = simulate(
        make_two_site_grid(hosts_per_site=ranks // 2, host_speed=1e9,
                           wan_bandwidth=1.25e6, wan_latency=50e-3),
        ranks, "heterogeneous two-site grid (WAN)")
    slowdown = heterogeneous / homogeneous if homogeneous > 0 else float("inf")
    print(f"  heterogeneity slowdown: {slowdown:.2f}x "
          f"(broadcasts cross the wide-area link)")


if __name__ == "__main__":
    main()
