#!/usr/bin/env python
"""GRAS ping-pong: the same code in simulation mode and in real-world mode.

This is the paper's GRAS listing (client sends a ``ping`` carrying an int,
the server's callback benchmarks a computation and replies with a ``pong``)
run twice with the *same* process functions:

1. inside the simulator, on a two-host platform with simulated architectures
   (an x86 client talking to a SPARC server, exercising the
   receiver-makes-right conversion);
2. for real, over localhost TCP sockets and OS threads.

Run with::

    python examples/gras_pingpong.py
"""

from repro.gras import RlWorld, SimWorld
from repro.platform import make_star

PORT = 4000


def ping_callback(proc, source, payload):
    """Server-side callback for 'ping' messages (the paper's listing)."""
    msg = payload
    with proc.bench_always("server-work"):
        # Some computation whose duration should be simulated.
        total = 0
        for i in range(20000):
            total += i * i
    # Send data back as payload of the pong message to the ping's source.
    reply_socket = proc.socket_client(source.host, source.port)
    proc.msg_send(reply_socket, "pong", msg)


def server(proc, port=PORT):
    proc.msgtype_declare("ping", "int")
    proc.msgtype_declare("pong", "int")
    proc.cb_register("ping", ping_callback)
    proc.socket_server(port)
    # wait for the next message (up to 600s) and handle it
    proc.msg_handle(600.0)
    proc.exit()


def client(proc, server_host, port=PORT):
    ping, expected_pong = 1234, 1234
    proc.os_sleep(1)  # wait for the server startup
    proc.msgtype_declare("ping", "int")
    proc.msgtype_declare("pong", "int")
    proc.socket_server(port + 1)           # reply endpoint
    peer = proc.socket_client(server_host, port)
    start = proc.os_time()
    proc.msg_send(peer, "ping", ping)
    _, pong = proc.msg_wait(60.0, "pong")
    rtt = proc.os_time() - start
    assert pong == expected_pong, f"bad pong: {pong}"
    print(f"    ping-pong completed: payload={pong}, round-trip={rtt:.6f} s")
    proc.exit()


def run_simulation():
    print("[simulation mode] x86 client <-> sparc server on a simulated LAN")
    platform = make_star(num_hosts=1, center_name="server-host",
                         prefix="client-host",
                         link_bandwidth=12.5e6, link_latency=5e-4)
    world = SimWorld(platform, arch_by_host={"client-host-0": "x86",
                                             "server-host": "sparc"})
    world.add_process("server", "server-host", server)
    world.add_process("client", "client-host-0", client, "server-host")
    final = world.run()
    print(f"    simulated time: {final:.6f} s")
    return final


def run_real_life():
    print("[real-world mode] the same functions over localhost TCP")
    world = RlWorld()
    world.add_process("server", server, 4200, arch="x86_64")
    world.add_process("client", client, "127.0.0.1", 4200, arch="x86_64")
    world.run(timeout=30.0)
    print("    real-world run completed")


if __name__ == "__main__":
    run_simulation()
    run_real_life()
