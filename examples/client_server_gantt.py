#!/usr/bin/env python
"""Experiment E4: the Gantt chart of the paper's client/server application.

The paper shows a Gantt chart for *"an execution of the above code for 2
servers and 3 clients"* on a hub/switch/router/Internet topology: dark
portions are computations, light portions are communications, and the
concurrent client flows visibly interfere because they share links.

This script reproduces that scenario, prints the per-host busy/idle summary
and renders the chart as ASCII art (``#`` = computation, ``-`` =
communication, ``.`` = idle).

Run with::

    python examples/client_server_gantt.py
"""

from repro import Environment, Recorder, GanttChart
from repro.msg import MSG_task_create
from repro.platform import make_client_server_lan
from repro.tracing import render_ascii_gantt

PORT_REQUEST = 22
PORT_ACK = 23
REQUESTS_PER_CLIENT = 3


def client(proc, server_name, client_index):
    """Send requests to its server, compute locally, wait for the ack."""
    for round_idx in range(REQUESTS_PER_CLIENT):
        remote = MSG_task_create(f"Remote-c{client_index}-r{round_idx}",
                                 30.0, 3.2)
        yield proc.put(remote, server_name, PORT_REQUEST)
        local = MSG_task_create(f"Local-c{client_index}-r{round_idx}",
                                10.50, 3.2)
        yield proc.execute(local)
        yield proc.get(PORT_ACK)


def server(proc, expected_requests):
    """Serve computation requests and acknowledge them."""
    for _ in range(expected_requests):
        task = yield proc.get(PORT_REQUEST)
        yield proc.execute(task)
        ack = MSG_task_create(f"Ack-{task.name}", 0, 0.01)
        yield proc.put(ack, task.sender.host, PORT_ACK)


def run(num_clients=3, num_servers=2, verbose=True):
    platform = make_client_server_lan(num_clients=num_clients,
                                      num_servers=num_servers)
    recorder = Recorder()
    env = Environment(platform, recorder=recorder)

    # each client talks to server (index mod num_servers)
    requests_per_server = [0] * num_servers
    for c in range(num_clients):
        requests_per_server[c % num_servers] += REQUESTS_PER_CLIENT
    for s in range(num_servers):
        env.create_process(f"server-{s}", f"server-{s}", server,
                           requests_per_server[s])
    for c in range(num_clients):
        env.create_process(f"client-{c}", f"client-{c}", client,
                           f"server-{c % num_servers}", c)

    final_time = env.run()
    chart = GanttChart(recorder)

    if verbose:
        print(f"Simulated {num_clients} clients / {num_servers} servers, "
              f"makespan = {final_time:.3f} s\n")
        print(render_ascii_gantt(chart, width=70))
        print("\nPer-host busy time (s):")
        for host, totals in sorted(chart.summary().items()):
            print(f"  {host:12s} compute={totals['compute']:7.3f}  "
                  f"comm={totals['comm']:7.3f}  idle={totals['idle']:7.3f}")
        print(f"\nOverlapping communication pairs: "
              f"{chart.overlapping_comms()} (flows interfere on shared links)")
    return final_time, chart


if __name__ == "__main__":
    run()
