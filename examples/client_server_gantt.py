#!/usr/bin/env python
"""Experiment E4: the Gantt chart of the paper's client/server application.

The paper shows a Gantt chart for *"an execution of the above code for 2
servers and 3 clients"* on a hub/switch/router/Internet topology: dark
portions are computations, light portions are communications, and the
concurrent client flows visibly interfere because they share links.

This script reproduces that scenario on the canonical s4u API — requests
travel as plain payloads with an explicit ``size``, no task wrappers —
prints the per-host busy/idle summary and renders the chart as ASCII art
(``#`` = computation, ``-`` = communication, ``.`` = idle).

Run with::

    python examples/client_server_gantt.py
"""

from dataclasses import dataclass

from repro import Engine, GanttChart, Recorder
from repro.platform import make_client_server_lan
from repro.tracing import render_ascii_gantt

MFLOP = 1e6
MBYTE = 1e6

PORT_REQUEST = 22
PORT_ACK = 23
REQUESTS_PER_CLIENT = 3


@dataclass
class WorkRequest:
    """One remote-computation request (the paper's "Remote" task)."""

    name: str
    flops: float
    reply_box: str


def client(actor, server_name, client_index):
    """Send requests to its server, compute locally, wait for the ack."""
    engine = actor.engine
    request_box = engine.mailbox(f"{server_name}:{PORT_REQUEST}")
    ack_box = engine.mailbox(f"{actor.host.name}:{PORT_ACK}")
    for round_idx in range(REQUESTS_PER_CLIENT):
        name = f"Remote-c{client_index}-r{round_idx}"
        remote = WorkRequest(name, 30.0 * MFLOP, ack_box.name)
        yield request_box.put(remote, size=3.2 * MBYTE, name=name)
        yield actor.execute(10.50 * MFLOP,
                            name=f"Local-c{client_index}-r{round_idx}")
        yield ack_box.get()


def server(actor, expected_requests):
    """Serve computation requests and acknowledge them."""
    engine = actor.engine
    inbox = engine.mailbox(f"{actor.host.name}:{PORT_REQUEST}")
    for _ in range(expected_requests):
        request = yield inbox.get()
        yield actor.execute(request.flops, name=request.name)
        yield engine.mailbox(request.reply_box).put(
            "ack", size=0.01 * MBYTE, name=f"Ack-{request.name}")


def run(num_clients=3, num_servers=2, verbose=True):
    platform = make_client_server_lan(num_clients=num_clients,
                                      num_servers=num_servers)
    recorder = Recorder()
    engine = Engine(platform, recorder=recorder)

    # each client talks to server (index mod num_servers)
    requests_per_server = [0] * num_servers
    for c in range(num_clients):
        requests_per_server[c % num_servers] += REQUESTS_PER_CLIENT
    for s in range(num_servers):
        engine.add_actor(f"server-{s}", f"server-{s}", server,
                         requests_per_server[s])
    for c in range(num_clients):
        engine.add_actor(f"client-{c}", f"client-{c}", client,
                         f"server-{c % num_servers}", c)

    final_time = engine.run()
    chart = GanttChart(recorder)

    if verbose:
        print(f"Simulated {num_clients} clients / {num_servers} servers, "
              f"makespan = {final_time:.3f} s\n")
        print(render_ascii_gantt(chart, width=70))
        print("\nPer-host busy time (s):")
        for host, totals in sorted(chart.summary().items()):
            print(f"  {host:12s} compute={totals['compute']:7.3f}  "
                  f"comm={totals['comm']:7.3f}  idle={totals['idle']:7.3f}")
        print(f"\nOverlapping communication pairs: "
              f"{chart.overlapping_comms()} (flows interfere on shared links)")
    return final_time, chart


if __name__ == "__main__":
    run()
