"""Setup script for the repro package.

Kept as a classic ``setup.py`` (rather than pyproject-only) so editable
installs work in offline environments where PEP 660 build isolation is
unavailable: ``pip install -e .``.
"""

import os

from setuptools import find_packages, setup


def _read_version():
    version = {}
    here = os.path.dirname(os.path.abspath(__file__))
    with open(os.path.join(here, "src", "repro", "version.py")) as fh:
        exec(fh.read(), version)
    return version["__version__"]


setup(
    name="repro-simgrid-hpdc06",
    version=_read_version(),
    description=(
        "Pure-Python reproduction of the SimGrid HPDC'06 framework: a "
        "fluid (MaxMin) platform simulator with s4u actor/activity, MSG, "
        "GRAS and SMPI APIs"
    ),
    long_description=(
        "A reproduction of the SimGrid HPDC'06 system: the SURF fluid "
        "simulation core with MaxMin fairness, a unified s4u "
        "actor/activity API (Engine, Actor, Mailbox, Comm/Exec/Sleep "
        "futures, ActivitySet), and the paper's MSG, GRAS and SMPI "
        "interfaces rebased on it, plus a packet-level TCP validator, "
        "wire-format comparators, the AMOK toolbox and Gantt tracing."
    ),
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.9",
    install_requires=[],  # standard library only, by design
    extras_require={"test": ["pytest", "hypothesis"]},
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Distributed Computing",
        "Topic :: Scientific/Engineering",
    ],
)
