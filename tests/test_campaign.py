"""Campaign driver: grids, aggregation, pool discipline, snapshot fanout.

The runner's contract mirrors the kernel executor's: the result of a
campaign is a pure function of ``run_fn`` and the grid — bit-identical
whether it ran serially, over N forked workers, or degraded to serial
because a worker died mid-share.  With a snapshot attached, forked runs
must match a cold per-seed loop exactly.
"""

import json
import os

import pytest

from repro import s4u
from repro.campaign import (
    CampaignError,
    ExperimentSpec,
    default_campaign_workers,
    grid,
    run_campaign,
    summarize,
)
from repro.platform import make_star
from repro.s4u import FailureInjector


# ---------------------------------------------------------------------------
# grid + aggregation (pure functions)
# ---------------------------------------------------------------------------

class TestGrid:
    def test_config_major_order_and_labels(self):
        specs = grid([1, 2], [{"label": "a", "x": 1}, {"x": 2}])
        assert [(s.seed, s.label) for s in specs] == [
            (1, "a"), (2, "a"), (1, "cfg1"), (2, "cfg1")]
        assert specs[0].config == {"label": "a", "x": 1}

    def test_single_unlabelled_config_gets_empty_label(self):
        specs = grid([7], [{"x": 1}])
        assert specs[0].label == ""

    def test_no_configs_means_config_none(self):
        specs = grid(range(3))
        assert len(specs) == 3
        assert all(s.config is None for s in specs)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            grid([])
        with pytest.raises(ValueError):
            grid([1], [])


class TestSummarize:
    def test_distribution_fields(self):
        runs = [{"t": float(v)} for v in [5, 1, 3, 2, 4]]
        summary = summarize(runs)["t"]
        assert summary == {"min": 1.0, "median": 3.0, "p95": 5.0,
                           "max": 5.0, "mean": 3.0, "n": 5}

    def test_nested_dicts_flatten_with_dots(self):
        summary = summarize([{"kernel": {"solver": {"pops": 4}}, "t": 1.0}])
        assert summary["kernel.solver.pops"]["max"] == 4.0
        assert summary["t"]["n"] == 1

    def test_non_numeric_leaves_ignored(self):
        summary = summarize([{"t": 1.0, "name": "run-a", "tags": [1, 2]}])
        assert set(summary) == {"t"}

    def test_metric_missing_from_some_runs_counts_n(self):
        summary = summarize([{"t": 1.0, "extra": 9.0}, {"t": 3.0}])
        assert summary["t"]["n"] == 2
        assert summary["extra"]["n"] == 1


class TestWorkerDefaults:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_WORKERS", "3")
        assert default_campaign_workers() == 3
        monkeypatch.setenv("REPRO_CAMPAIGN_WORKERS", "0")
        assert default_campaign_workers() == 0
        monkeypatch.setenv("REPRO_CAMPAIGN_WORKERS", "auto")
        assert default_campaign_workers() == max(0, (os.cpu_count() or 1) - 1)
        monkeypatch.setenv("REPRO_CAMPAIGN_WORKERS", "nonsense")
        assert default_campaign_workers() == 0

    def test_falls_back_to_repro_parallel(self, monkeypatch):
        monkeypatch.delenv("REPRO_CAMPAIGN_WORKERS", raising=False)
        monkeypatch.setenv("REPRO_PARALLEL", "2")
        assert default_campaign_workers() == 2
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert default_campaign_workers() == 0


# ---------------------------------------------------------------------------
# execution: serial ≡ parallel ≡ fallback
# ---------------------------------------------------------------------------

def _simulate(seed, config):
    """A tiny but real simulation: dates depend on seed via churn."""
    rounds = (config or {}).get("rounds", 2)
    engine = s4u.Engine(make_star(num_hosts=3, host_speed=1e9,
                                  link_bandwidth=1e7, link_latency=1e-4))

    def worker(actor, index):
        for _ in range(rounds):
            yield actor.execute(4e6 * (index + 1))

    for index in range(3):
        engine.add_actor(f"w{index}", f"leaf-{index}", worker, index)
    injector = FailureInjector(engine, seed=seed,
                               hosts=["leaf-1", "leaf-2"],
                               mtbf=0.005, mean_downtime=0.01,
                               max_failures=3).start()
    final = engine.run()
    return {"simulated_time_s": final, "failures": injector.failures}


class TestRunCampaign:
    def test_serial_runs_whole_grid_in_order(self):
        specs = grid(range(4), [{"rounds": 2}, {"label": "long", "rounds": 3}])
        result = run_campaign(_simulate, specs, workers=0)
        assert len(result.runs) == 8
        assert [r["seed"] for r in result.runs] == [0, 1, 2, 3] * 2
        assert [r["label"] for r in result.runs][:4] == ["cfg0"] * 4
        assert all(r["metrics"]["simulated_time_s"] > 0 for r in result.runs)

    def test_bare_int_experiments_promote_to_specs(self):
        result = run_campaign(_simulate, [1, 2], workers=0)
        assert result.specs == [ExperimentSpec(1), ExperimentSpec(2)]

    def test_parallel_equals_serial_bit_identically(self):
        specs = grid(range(6))
        serial = run_campaign(_simulate, specs, workers=0)
        parallel = run_campaign(_simulate, specs, workers=3)
        assert parallel.metrics() == serial.metrics()
        assert parallel.summary() == serial.summary()
        assert parallel.workers == 3 and serial.workers == 0

    def test_worker_death_degrades_to_serial(self):
        parent_pid = os.getpid()

        def fragile(seed, config):
            if seed == 2 and os.getpid() != parent_pid:
                os._exit(1)  # kill the worker mid-share, no reply sent
            return {"value": seed * 2.0}

        result = run_campaign(fragile, grid(range(6)), workers=2)
        assert result.fallbacks == 1
        assert [r["metrics"]["value"] for r in result.runs] == [
            0.0, 2.0, 4.0, 6.0, 8.0, 10.0]

    def test_experiment_error_fails_the_campaign(self):
        def boom(seed, config):
            if seed == 3:
                raise RuntimeError("exploded on purpose")
            return {"value": float(seed)}

        for workers in (0, 2):
            with pytest.raises(CampaignError, match="seed=3") as excinfo:
                run_campaign(boom, grid(range(5)), workers=workers)
            assert "exploded on purpose" in str(excinfo.value)

    def test_run_fn_must_return_a_mapping(self):
        with pytest.raises(CampaignError, match="metrics mapping"):
            run_campaign(lambda seed, config: 42.0, [1], workers=0)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(_simulate, [], workers=0)


# ---------------------------------------------------------------------------
# per-run watchdog: hung runs time out, get retried, then fail loudly
# ---------------------------------------------------------------------------

class TestRunWatchdog:
    def test_run_timeout_env_parsing(self, monkeypatch):
        from repro.campaign import default_run_timeout
        monkeypatch.delenv("REPRO_CAMPAIGN_RUN_TIMEOUT", raising=False)
        assert default_run_timeout() is None        # strictly opt-in
        monkeypatch.setenv("REPRO_CAMPAIGN_RUN_TIMEOUT", "2.5")
        assert default_run_timeout() == 2.5
        for off in ("", "0", "-1", "nonsense"):
            monkeypatch.setenv("REPRO_CAMPAIGN_RUN_TIMEOUT", off)
            assert default_run_timeout() is None

    def test_hung_run_times_out_and_retries_elsewhere(self, tmp_path):
        import time
        parent_pid = os.getpid()
        sentinel = tmp_path / "hung-once"

        def sticky(seed, config):
            if seed == 2 and os.getpid() != parent_pid \
                    and not sentinel.exists():
                sentinel.write_text("hanging")   # hang the first attempt only
                time.sleep(60.0)
            return {"value": seed * 2.0}

        result = run_campaign(sticky, grid(range(4)), workers=2,
                              run_timeout=1.0)
        # The watchdog fired once, the run was retried in a fresh worker,
        # and the grid still completed bit-identically.
        assert result.timeouts == 1
        assert result.retries == 1
        assert result.fallbacks == 0
        assert [r["metrics"]["value"] for r in result.runs] == [
            0.0, 2.0, 4.0, 6.0]
        report = result.to_report("watchdog")
        assert report["timeouts"] == 1 and report["retries"] == 1

    def test_worker_death_retried_in_fresh_worker(self, tmp_path):
        parent_pid = os.getpid()
        sentinel = tmp_path / "died-once"

        def fragile(seed, config):
            if seed == 2 and os.getpid() != parent_pid \
                    and not sentinel.exists():
                sentinel.write_text("dying")
                os._exit(1)                      # kill the worker, no reply
            return {"value": seed * 2.0}

        # With a watchdog armed, a death-lost run is retried in a fresh
        # worker process instead of degrading the share to serial.
        result = run_campaign(fragile, grid(range(4)), workers=2,
                              run_timeout=5.0)
        assert result.fallbacks == 1
        assert result.timeouts == 0
        assert result.retries == 1
        assert [r["metrics"]["value"] for r in result.runs] == [
            0.0, 2.0, 4.0, 6.0]

    def test_permanently_hung_run_fails_after_grid_completes(self, tmp_path):
        import time
        parent_pid = os.getpid()

        def stuck(seed, config):
            if seed == 1:
                if os.getpid() == parent_pid:    # never hang the parent
                    raise RuntimeError("ran in parent unexpectedly")
                time.sleep(60.0)
            (tmp_path / f"done-{seed}").write_text("ok")
            return {"value": float(seed)}

        with pytest.raises(CampaignError, match="run lost twice") as excinfo:
            run_campaign(stuck, grid(range(4)), workers=2, run_timeout=0.75)
        assert "seed=1" in str(excinfo.value)
        # Both attempts hung past the watchdog, but the rest of the grid
        # finished before the campaign failed.
        for seed in (0, 2, 3):
            assert (tmp_path / f"done-{seed}").exists()

    def test_no_timeout_means_no_watchdog_fields_move(self):
        result = run_campaign(_simulate, grid(range(3)), workers=2)
        assert result.timeouts == 0 and result.retries == 0


# ---------------------------------------------------------------------------
# snapshot fanout
# ---------------------------------------------------------------------------

def _warm_blob():
    engine = s4u.Engine(make_star(num_hosts=3, host_speed=1e9,
                                  link_bandwidth=1e7, link_latency=1e-4))

    def warm(actor, index):
        yield actor.execute(1e7)

    for index in range(3):
        engine.add_actor(f"warm{index}", f"leaf-{index}", warm, index)
    engine.run()
    blob = engine.snapshot()
    engine.close()
    return blob, engine.now


def _measured_phase(engine, seed, config):
    rounds = (config or {}).get("rounds", 2)

    def worker(actor, index):
        for _ in range(rounds):
            yield actor.execute(4e6 * (index + 1))

    for index in range(3):
        engine.add_actor(f"w{index}", f"leaf-{index}", worker, index)
    injector = FailureInjector(engine, seed=seed,
                               hosts=["leaf-1", "leaf-2"],
                               mtbf=0.005, mean_downtime=0.01,
                               max_failures=3).start()
    final = engine.run()
    return {"simulated_time_s": final, "failures": injector.failures}


class TestSnapshotFanout:
    def test_forked_campaign_equals_cold_loop(self):
        blob, warm_date = _warm_blob()
        specs = grid(range(5), [{"rounds": 2}, {"label": "x", "rounds": 3}])
        forked = run_campaign(_measured_phase, specs, workers=2,
                              snapshot=blob)
        assert forked.forked

        cold = []
        for spec in specs:
            engine = s4u.Engine.restore(blob)
            cold.append(_measured_phase(engine, spec.seed, spec.config))
            engine.close()
        assert forked.metrics() == cold
        assert all(m["simulated_time_s"] > warm_date for m in cold)

    def test_forked_serial_equals_forked_parallel(self):
        blob, _ = _warm_blob()
        specs = grid(range(4))
        serial = run_campaign(_measured_phase, specs, workers=0,
                              snapshot=blob)
        parallel = run_campaign(_measured_phase, specs, workers=2,
                                snapshot=blob)
        assert serial.metrics() == parallel.metrics()


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------

class TestReport:
    def test_report_shape_and_json_roundtrip(self, tmp_path):
        result = run_campaign(_simulate, grid(range(3)), workers=0)
        report = result.to_report("unit-test")
        assert report["schema"] == "repro-campaign/1"
        assert report["scenario"] == "unit-test"
        assert report["runs"] == 3 and not report["forked"]
        stats = report["metrics"]["simulated_time_s"]
        assert set(stats) == {"min", "median", "p95", "max", "mean", "n"}
        assert stats["min"] <= stats["median"] <= stats["p95"] <= stats["max"]

        path = tmp_path / "campaign.json"
        result.write_json(str(path), "unit-test")
        assert json.loads(path.read_text()) == report
