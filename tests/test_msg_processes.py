"""Tests for MSG process management: create/suspend/resume/kill/join/daemons."""

import pytest

from repro import Environment, ProcessKilledError, Task
from repro.msg.process import ProcessState
from repro.platform import Platform


def platform_one_host(speed=1e9):
    platform = Platform("solo")
    platform.add_host("host", speed)
    return platform


def platform_two_hosts(speed=1e9):
    platform = Platform("duo")
    platform.add_host("h1", speed)
    platform.add_host("h2", speed)
    platform.add_link("l", 1e6, 0.0)
    platform.connect("h1", "h2", "l")
    return platform


class TestLifecycle:
    def test_process_created_dynamically_by_another_process(self):
        env = Environment(platform_one_host())
        log = []

        def child(proc, tag):
            yield proc.execute(1e9)
            log.append((tag, proc.now))

        def parent(proc):
            yield proc.sleep(1.0)
            proc.env.create_process("child", "host", child, "spawned")
            yield proc.sleep(0.1)

        env.create_process("parent", "host", parent)
        env.run()
        assert log == [("spawned", pytest.approx(2.0))]

    def test_process_finishes_and_is_dead(self):
        env = Environment(platform_one_host())

        def trivial(proc):
            yield proc.sleep(1.0)

        process = env.create_process("p", "host", trivial)
        env.run()
        assert process.state == ProcessState.DEAD
        assert not process.is_alive

    def test_join_waits_for_target_end(self):
        env = Environment(platform_one_host())
        times = {}

        def worker(proc):
            yield proc.execute(2e9)

        def waiter(proc, target):
            yield proc.join(target)
            times["joined"] = proc.now

        worker_proc = env.create_process("worker", "host", worker)
        env.create_process("waiter", "host", waiter, worker_proc)
        env.run()
        assert times["joined"] == pytest.approx(2.0)

    def test_join_on_dead_process_returns_immediately(self):
        env = Environment(platform_one_host())
        times = {}

        def quick(proc):
            yield proc.sleep(0.1)

        def waiter(proc, target):
            yield proc.sleep(5.0)
            yield proc.join(target)
            times["joined"] = proc.now

        quick_proc = env.create_process("quick", "host", quick)
        env.create_process("waiter", "host", waiter, quick_proc)
        env.run()
        assert times["joined"] == pytest.approx(5.0)

    def test_daemons_die_with_the_last_regular_process(self):
        env = Environment(platform_one_host())
        log = []

        def daemon(proc):
            try:
                while True:
                    yield proc.sleep(1.0)
                    log.append(proc.now)
            except ProcessKilledError:
                log.append("killed")
                raise

        def main(proc):
            yield proc.sleep(3.5)

        env.create_process("daemon", "host", daemon, daemon=True)
        env.create_process("main", "host", main)
        final = env.run()
        assert final == pytest.approx(3.5)
        assert log[-1] == "killed"
        assert [t for t in log if t != "killed"] == [1.0, 2.0, 3.0]


class TestKill:
    def test_kill_other_process(self):
        env = Environment(platform_one_host())
        log = []

        def victim(proc):
            try:
                yield proc.sleep(100.0)
                log.append("survived")
            finally:
                log.append(("dead-at", proc.now))

        def killer(proc, target):
            yield proc.sleep(2.0)
            yield proc.kill(target)
            log.append(("killed-at", proc.now))

        victim_proc = env.create_process("victim", "host", victim)
        env.create_process("killer", "host", killer, victim_proc)
        final = env.run()
        assert ("dead-at", pytest.approx(2.0)) in log
        assert ("killed-at", pytest.approx(2.0)) in log
        assert "survived" not in log
        assert final == pytest.approx(2.0)

    def test_suicide(self):
        env = Environment(platform_one_host())
        log = []

        def lemming(proc):
            yield proc.sleep(1.0)
            yield proc.kill()
            log.append("unreachable")

        env.create_process("lemming", "host", lemming)
        env.run()
        assert log == []

    def test_kill_process_blocked_on_execution_frees_the_cpu(self):
        env = Environment(platform_one_host(speed=1e9))
        times = {}

        def hog(proc):
            yield proc.execute(1e12)

        def other(proc):
            yield proc.execute(1e9)
            times["other"] = proc.now

        def killer(proc, target):
            yield proc.sleep(0.5)
            yield proc.kill(target)

        hog_proc = env.create_process("hog", "host", hog)
        env.create_process("other", "host", other)
        env.create_process("killer", "host", killer, hog_proc)
        env.run()
        # the other process had half the CPU for 0.5 s, then all of it
        assert times["other"] == pytest.approx(1.25)

    def test_environment_level_kill(self):
        env = Environment(platform_one_host())

        def forever(proc):
            while True:
                yield proc.sleep(10.0)

        process = env.create_process("p", "host", forever)
        env.kill_process(process)
        env.run()
        assert not process.is_alive


class TestSuspendResume:
    def test_suspend_other_pauses_its_execution(self):
        env = Environment(platform_one_host(speed=1e9))
        times = {}

        def worker(proc):
            yield proc.execute(1e9)
            times["worker"] = proc.now

        def controller(proc, target):
            yield proc.sleep(0.5)
            yield proc.suspend(target)
            yield proc.sleep(2.0)
            yield proc.resume_process(target)

        worker_proc = env.create_process("worker", "host", worker)
        env.create_process("ctrl", "host", controller, worker_proc)
        env.run()
        # 0.5 s of work done, 2 s suspended, 0.5 s to finish
        assert times["worker"] == pytest.approx(3.0)

    def test_self_suspend_until_resumed(self):
        env = Environment(platform_one_host())
        times = {}

        def sleeper(proc):
            yield proc.suspend()
            times["resumed"] = proc.now

        def waker(proc, target):
            yield proc.sleep(4.0)
            yield proc.resume_process(target)

        sleeper_proc = env.create_process("sleeper", "host", sleeper)
        env.create_process("waker", "host", waker, sleeper_proc)
        env.run()
        assert times["resumed"] == pytest.approx(4.0)
        assert not sleeper_proc.is_suspended

    def test_suspended_flag_visible(self):
        env = Environment(platform_one_host())
        observed = {}

        def sleeper(proc):
            yield proc.suspend()

        def observer(proc, target):
            yield proc.sleep(1.0)
            observed["suspended"] = target.is_suspended
            yield proc.resume_process(target)

        sleeper_proc = env.create_process("sleeper", "host", sleeper)
        env.create_process("observer", "host", observer, sleeper_proc)
        env.run()
        assert observed["suspended"] is True


class TestSchedulingFairness:
    def test_yield_lets_other_processes_run(self):
        env = Environment(platform_one_host())
        order = []

        def chatty(proc, tag, rounds):
            for _ in range(rounds):
                order.append(tag)
                yield proc.yield_()

        env.create_process("a", "host", chatty, "a", 3)
        env.create_process("b", "host", chatty, "b", 3)
        env.run()
        # processes alternate instead of running to completion one by one
        assert order[:4] == ["a", "b", "a", "b"]

    def test_thread_context_environment(self):
        """The same scenario runs under the thread context factory."""
        env = Environment(platform_two_hosts(), context_factory="thread")
        times = {}

        def sender(proc):
            proc.send(Task("d", data_size=1e6), "box")

        def receiver(proc):
            task = proc.receive("box")
            times["got"] = (task.name, proc.now)

        env.create_process("s", "h1", sender)
        env.create_process("r", "h2", receiver)
        env.run()
        assert times["got"][0] == "d"
        assert times["got"][1] == pytest.approx(1.0)
