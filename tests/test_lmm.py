"""Unit and property tests for the Linear MaxMin solver (repro.surf.lmm)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.surf.lmm import MaxMinSystem


def make_single_link(capacity=100.0, weights=(1.0, 1.0)):
    system = MaxMinSystem()
    link = system.new_constraint(capacity)
    variables = []
    for weight in weights:
        var = system.new_variable(weight=weight)
        system.expand(link, var)
        variables.append(var)
    return system, link, variables


class TestBasicSharing:
    def test_single_variable_gets_full_capacity(self):
        system, _, (var,) = make_single_link(weights=(1.0,))
        system.solve()
        assert var.value == pytest.approx(100.0)

    def test_two_equal_variables_split_evenly(self):
        system, _, (a, b) = make_single_link()
        system.solve()
        assert a.value == pytest.approx(50.0)
        assert b.value == pytest.approx(50.0)

    def test_weighted_sharing_proportional_to_weights(self):
        system, _, (a, b) = make_single_link(weights=(1.0, 3.0))
        system.solve()
        assert a.value == pytest.approx(25.0)
        assert b.value == pytest.approx(75.0)

    def test_many_variables_fair_share(self):
        system, _, variables = make_single_link(weights=(1.0,) * 10)
        system.solve()
        for var in variables:
            assert var.value == pytest.approx(10.0)

    def test_zero_weight_variable_gets_nothing(self):
        system, _, (a, b) = make_single_link(weights=(1.0, 0.0))
        system.solve()
        assert a.value == pytest.approx(100.0)
        assert b.value == 0.0

    def test_variable_without_constraint_unbounded(self):
        system = MaxMinSystem()
        var = system.new_variable()
        system.solve()
        assert math.isinf(var.value)

    def test_variable_without_constraint_respects_bound(self):
        system = MaxMinSystem()
        var = system.new_variable(bound=42.0)
        system.solve()
        assert var.value == pytest.approx(42.0)


class TestBounds:
    def test_bound_below_fair_share_redistributes(self):
        system = MaxMinSystem()
        link = system.new_constraint(100.0)
        a = system.new_variable(bound=10.0)
        b = system.new_variable()
        system.expand(link, a)
        system.expand(link, b)
        system.solve()
        assert a.value == pytest.approx(10.0)
        assert b.value == pytest.approx(90.0)

    def test_bound_above_fair_share_is_inactive(self):
        system = MaxMinSystem()
        link = system.new_constraint(100.0)
        a = system.new_variable(bound=80.0)
        b = system.new_variable()
        system.expand(link, a)
        system.expand(link, b)
        system.solve()
        assert a.value == pytest.approx(50.0)
        assert b.value == pytest.approx(50.0)

    def test_update_bound_takes_effect_on_next_solve(self):
        system, _, (a, b) = make_single_link()
        system.solve()
        system.update_variable_bound(a, 5.0)
        system.solve()
        assert a.value == pytest.approx(5.0)
        assert b.value == pytest.approx(95.0)


class TestMultiResource:
    def test_two_links_bottleneck_is_smallest(self):
        system = MaxMinSystem()
        fast = system.new_constraint(100.0)
        slow = system.new_constraint(10.0)
        flow = system.new_variable()
        system.expand(fast, flow)
        system.expand(slow, flow)
        system.solve()
        assert flow.value == pytest.approx(10.0)

    def test_cross_traffic_classic_example(self):
        # Flow A uses links 1 and 2; flow B uses link 1; flow C uses link 2.
        # Link capacities 10 each: A gets 5, B gets 5, C gets 5.
        system = MaxMinSystem()
        link1 = system.new_constraint(10.0)
        link2 = system.new_constraint(10.0)
        a = system.new_variable()
        b = system.new_variable()
        c = system.new_variable()
        system.expand(link1, a)
        system.expand(link2, a)
        system.expand(link1, b)
        system.expand(link2, c)
        system.solve()
        assert a.value == pytest.approx(5.0)
        assert b.value == pytest.approx(5.0)
        assert c.value == pytest.approx(5.0)

    def test_unbalanced_cross_traffic(self):
        # link1 capacity 10 shared by A and B; link2 capacity 100 used by A
        # only: A and B each get 5; link2 is not limiting.
        system = MaxMinSystem()
        link1 = system.new_constraint(10.0)
        link2 = system.new_constraint(100.0)
        a = system.new_variable()
        b = system.new_variable()
        system.expand(link1, a)
        system.expand(link2, a)
        system.expand(link1, b)
        system.solve()
        assert a.value == pytest.approx(5.0)
        assert b.value == pytest.approx(5.0)

    def test_paper_figure_four_tasks_two_resources(self):
        """The MaxMin illustration of the paper's SURF panel (E5 shape)."""
        system = MaxMinSystem()
        r1 = system.new_constraint(1.0)
        r2 = system.new_constraint(1.0)
        # proc 1 and 2 use resource 1, proc 3 and 4 use resource 2,
        # proc 2 also crosses resource 2 (interference pattern)
        p1 = system.new_variable()
        p2 = system.new_variable()
        p3 = system.new_variable()
        p4 = system.new_variable()
        system.expand(r1, p1)
        system.expand(r1, p2)
        system.expand(r2, p2)
        system.expand(r2, p3)
        system.expand(r2, p4)
        system.solve()
        assert system.check_feasible()
        # resource 2 is the bottleneck: three tasks -> 1/3 each
        assert p2.value == pytest.approx(1.0 / 3.0)
        assert p3.value == pytest.approx(1.0 / 3.0)
        assert p4.value == pytest.approx(1.0 / 3.0)
        # p1 then takes what remains of resource 1
        assert p1.value == pytest.approx(2.0 / 3.0)


class TestFatPipe:
    def test_fatpipe_does_not_share(self):
        system = MaxMinSystem()
        backbone = system.new_constraint(100.0, shared=False)
        a = system.new_variable()
        b = system.new_variable()
        system.expand(backbone, a)
        system.expand(backbone, b)
        system.solve()
        assert a.value == pytest.approx(100.0)
        assert b.value == pytest.approx(100.0)

    def test_fatpipe_still_caps_individual_flows(self):
        system = MaxMinSystem()
        backbone = system.new_constraint(100.0, shared=False)
        access = system.new_constraint(300.0)
        a = system.new_variable()
        system.expand(backbone, a)
        system.expand(access, a)
        system.solve()
        assert a.value == pytest.approx(100.0)


class TestMutation:
    def test_remove_variable_frees_capacity(self):
        system, link, (a, b) = make_single_link()
        system.solve()
        system.remove_variable(a)
        system.solve()
        assert b.value == pytest.approx(100.0)
        assert len(link.elements) == 1

    def test_update_capacity(self):
        system, link, (a, b) = make_single_link()
        system.update_constraint_capacity(link, 20.0)
        system.solve()
        assert a.value == pytest.approx(10.0)
        assert b.value == pytest.approx(10.0)

    def test_expand_twice_accumulates_usage(self):
        # A route crossing the same link twice consumes it twice.
        system = MaxMinSystem()
        link = system.new_constraint(100.0)
        var = system.new_variable()
        system.expand(link, var, 1.0)
        system.expand(link, var, 1.0)
        system.solve()
        assert var.value == pytest.approx(50.0)

    def test_suspend_via_weight_and_resume(self):
        system, _, (a, b) = make_single_link()
        system.update_variable_weight(a, 0.0)
        system.solve()
        assert a.value == 0.0
        assert b.value == pytest.approx(100.0)
        system.update_variable_weight(a, 1.0)
        system.solve()
        assert a.value == pytest.approx(50.0)


class TestValidation:
    def test_negative_weight_rejected(self):
        system = MaxMinSystem()
        with pytest.raises(ValueError):
            system.new_variable(weight=-1.0)

    def test_negative_capacity_rejected(self):
        system = MaxMinSystem()
        with pytest.raises(ValueError):
            system.new_constraint(-5.0)

    def test_negative_usage_rejected(self):
        system = MaxMinSystem()
        link = system.new_constraint(10.0)
        var = system.new_variable()
        with pytest.raises(ValueError):
            system.expand(link, var, -1.0)


# ----------------------------------------------------------------------------------
# property-based tests
# ----------------------------------------------------------------------------------

@st.composite
def random_system(draw):
    """A random LMM system plus its construction recipe."""
    num_constraints = draw(st.integers(min_value=1, max_value=5))
    num_variables = draw(st.integers(min_value=1, max_value=8))
    capacities = [draw(st.floats(min_value=1.0, max_value=1000.0))
                  for _ in range(num_constraints)]
    weights = [draw(st.floats(min_value=0.1, max_value=10.0))
               for _ in range(num_variables)]
    bounds = [draw(st.one_of(st.none(),
                             st.floats(min_value=0.5, max_value=500.0)))
              for _ in range(num_variables)]
    # each variable uses a non-empty subset of constraints
    usage = [draw(st.lists(st.integers(min_value=0,
                                       max_value=num_constraints - 1),
                           min_size=1, max_size=num_constraints,
                           unique=True))
             for _ in range(num_variables)]
    return capacities, weights, bounds, usage


def build(capacities, weights, bounds, usage):
    system = MaxMinSystem()
    constraints = [system.new_constraint(c) for c in capacities]
    variables = []
    for weight, bound, used in zip(weights, bounds, usage):
        var = system.new_variable(weight=weight, bound=bound)
        for cons_idx in used:
            system.expand(constraints[cons_idx], var)
        variables.append(var)
    return system, constraints, variables


@settings(max_examples=200, deadline=None)
@given(random_system())
def test_property_solution_is_feasible(recipe):
    """No constraint capacity nor variable bound is ever exceeded."""
    system, _, _ = build(*recipe)
    system.solve()
    assert system.check_feasible()


@settings(max_examples=200, deadline=None)
@given(random_system())
def test_property_no_variable_starves(recipe):
    """Every variable with positive weight and a constraint gets a rate > 0."""
    system, _, variables = build(*recipe)
    system.solve()
    for var in variables:
        assert var.value > 0.0


@settings(max_examples=100, deadline=None)
@given(random_system())
def test_property_maxmin_optimality(recipe):
    """No single variable can be increased without breaking feasibility.

    This is the Pareto-optimality half of max-min fairness: after solving,
    every variable is blocked either by its bound or by a saturated
    constraint.
    """
    system, constraints, variables = build(*recipe)
    system.solve()
    tol = 1e-6
    for var in variables:
        at_bound = var.bound is not None and var.value >= var.bound * (1 - tol)
        saturated = False
        for elem in var.elements:
            cns = elem.constraint
            if not cns.shared:
                continue
            if cns.usage_total() >= cns.capacity * (1 - tol) - tol:
                saturated = True
                break
        assert at_bound or saturated, (
            f"variable {var.id} (value {var.value}) is not blocked by "
            "anything - allocation is not max-min optimal")


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=1, max_value=20),
       st.floats(min_value=1.0, max_value=1e6))
def test_property_equal_weights_equal_shares(num_vars, capacity):
    """N identical variables on one resource each get capacity / N."""
    system = MaxMinSystem()
    link = system.new_constraint(capacity)
    variables = [system.new_variable() for _ in range(num_vars)]
    for var in variables:
        system.expand(link, var)
    system.solve()
    for var in variables:
        assert var.value == pytest.approx(capacity / num_vars, rel=1e-6)
