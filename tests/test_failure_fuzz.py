"""Property-based failure fuzzing: the simulator survives any schedule.

The failure subsystem's contract is not one scenario but a family of
invariants that must hold under *arbitrary* host/link on-off schedules:

* **liveness** — the run always terminates (the conftest watchdog turns a
  hang into a test failure);
* **monotonic clock** — observed dates never decrease;
* **no zombie activity** — once the run is over, no activity is left in the
  STARTED state (everything that began either completed, failed, timed out
  or was cancelled);
* **determinism** — replaying the very same schedule (or the same injector
  seed) reproduces every date bit-identically.

Two generators exercise them: hypothesis-built explicit schedules (timer
pulses turning precise resources off/on at precise dates) and seeded
:class:`~repro.s4u.failure.FailureInjector` churn.  Both are derandomized
(fixed seed set / fixed seed ranges) so CI fuzzes the same ~200+ schedules
on every run.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import s4u
from repro.campaign import grid, run_campaign
from repro.exceptions import (
    HostFailureError,
    SimTimeoutError,
    TransferFailureError,
)
from repro.platform import make_star
from repro.s4u import ActivityState, FailureInjector

NUM_WORKERS = 3
ROUNDS = 4


def _run_workload(schedule=(), injector_seed=None, injector_cfg=None):
    """One master/worker run under a failure schedule; returns its log.

    ``schedule`` is a list of ``(date, kind, index, downtime)`` pulses
    applied through engine timers (kind 0 = host, 1 = link).  When
    ``injector_seed`` is given a :class:`FailureInjector` drives the churn
    instead.  The master lives on the never-churned ``center`` host and
    works with timeouts, so the run terminates whatever happens to the
    leaves.  Returns ``(log, activities)``: the chronological event log
    (every float date in it must replay bit-identically) and every
    activity handle the bodies created.
    """
    engine = s4u.Engine(make_star(num_hosts=NUM_WORKERS, host_speed=1e9,
                                  link_bandwidth=1e7, link_latency=1e-4))
    log = []
    activities = []

    engine.on_host_state_change(
        lambda host, is_on: log.append(("host", host.name, is_on, engine.now)))
    engine.on_link_state_change(
        lambda link, is_on: log.append(("link", link.name, is_on, engine.now)))

    def worker(actor, index):
        inbox = engine.mailbox(f"w{index}")
        outbox = engine.mailbox("replies")
        while True:
            try:
                job = yield inbox.get()
            except TransferFailureError:
                continue
            comp = yield actor.exec_async(job)
            activities.append(comp)
            try:
                yield comp.wait()
            except HostFailureError:
                continue
            comm = yield outbox.put_async(index, size=2e3)
            activities.append(comm)
            try:
                yield comm.wait(timeout=0.05)
            except (SimTimeoutError, TransferFailureError):
                pass

    def master(actor):
        replies = engine.mailbox("replies")
        for round_no in range(ROUNDS):
            for index in range(NUM_WORKERS):
                comm = yield engine.mailbox(f"w{index}").put_async(
                    1e5 * (1 + round_no), size=1e3)
                activities.append(comm)
                try:
                    yield comm.wait(timeout=0.02)
                except (SimTimeoutError, TransferFailureError):
                    log.append(("send-lost", round_no, index, engine.now))
            for _ in range(NUM_WORKERS):
                try:
                    got = yield replies.get(timeout=0.02)
                    log.append(("reply", round_no, got, engine.now))
                except (SimTimeoutError, TransferFailureError):
                    log.append(("reply-lost", round_no, None, engine.now))
            log.append(("round", round_no, None, engine.now))

    engine.add_actor("master", "center", master)
    for i in range(NUM_WORKERS):
        engine.add_actor(f"worker-{i}", f"leaf-{i}", worker, i,
                         daemon=True, auto_restart=True)

    for date, kind, index, downtime in schedule:
        index %= NUM_WORKERS
        if kind == 0:
            target = engine.host(f"leaf-{index}")
        else:
            target = engine.link_by_name(f"leaf-link-{index}")
        engine.timers.schedule(date, target.turn_off)
        engine.timers.schedule(date + downtime, target.turn_on)

    injector = None
    if injector_seed is not None:
        injector = FailureInjector(
            engine, seed=injector_seed,
            hosts=[f"leaf-{i}" for i in range(NUM_WORKERS)],
            links=[f"leaf-link-{i}" for i in range(NUM_WORKERS)],
            **(injector_cfg or dict(mtbf=0.004, mean_downtime=0.01,
                                    max_failures=30)))
        injector.start()

    final = engine.run()
    log.append(("final", None, None, final))
    if injector is not None:
        log.append(("pulses", None, None, tuple(injector.events)))
    return log, activities


def _check_invariants(log, activities):
    # Monotonic clock: the observation order is the emission order.
    dates = [entry[3] for entry in log if isinstance(entry[3], float)]
    assert all(a <= b for a, b in zip(dates, dates[1:])), dates
    # No zombie: nothing that started is still running after the run.
    for activity in activities:
        assert activity._resolved().state is not ActivityState.STARTED, activity


# Explicit schedules: (date, host-or-link, target index, downtime).
_pulse = st.tuples(
    st.floats(min_value=0.0, max_value=0.1, allow_nan=False,
              allow_infinity=False),
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=0, max_value=NUM_WORKERS - 1),
    st.floats(min_value=1e-4, max_value=0.05, allow_nan=False,
              allow_infinity=False),
)


@settings(max_examples=60, derandomize=True, deadline=None)
@given(st.lists(_pulse, max_size=8))
def test_explicit_schedules_live_and_replay(schedule):
    """60 hypothesis schedules: invariants hold and replays are identical."""
    log, activities = _run_workload(schedule=schedule)
    _check_invariants(log, activities)
    replay_log, replay_activities = _run_workload(schedule=schedule)
    _check_invariants(replay_log, replay_activities)
    assert log == replay_log


def _fuzz_seed_run(seed, config):
    """One seeded churn experiment: live run + replay + invariant checks.

    This is the loop body of the seed sweep, shaped as a campaign
    ``run_fn`` so the same code runs serially (the CI default) or fanned
    out over worker processes by :func:`repro.campaign.run_campaign`.
    The invariants assert *inside* the run — a violation in a worker
    fails the campaign with the seed in the traceback.
    """
    log, activities = _run_workload(injector_seed=seed)
    _check_invariants(log, activities)
    replay_log, replay_activities = _run_workload(injector_seed=seed)
    _check_invariants(replay_log, replay_activities)
    assert log == replay_log, f"seed {seed} did not replay identically"
    pulses = next(entry[3] for entry in log if entry[0] == "pulses")
    final = next(entry[3] for entry in log if entry[0] == "final")
    return {"simulated_time_s": final, "pulses": len(pulses),
            "log_events": len(log)}


@pytest.mark.parametrize("seed_base", [0, 50, 100])
def test_injector_seeds_live_and_replay(seed_base):
    """150 seeded churn schedules (50 per chunk): same seed, same dates.

    ``REPRO_CAMPAIGN_FUZZ=1`` routes each 50-seed sweep through the
    campaign driver (worker count from ``REPRO_CAMPAIGN_WORKERS`` /
    ``REPRO_PARALLEL``); by default the sweep runs the exact same
    experiments serially in-process.
    """
    seeds = range(seed_base, seed_base + 50)
    if os.environ.get("REPRO_CAMPAIGN_FUZZ", "") == "1":
        result = run_campaign(_fuzz_seed_run, grid(seeds))
        assert result.summary()["simulated_time_s"]["n"] == 50
    else:
        for seed in seeds:
            _fuzz_seed_run(seed, None)


def test_campaign_fuzz_path_smoke():
    """The campaign route of the sweep stays exercised in default CI."""
    result = run_campaign(_fuzz_seed_run, grid(range(3)), workers=2)
    assert result.summary()["simulated_time_s"]["n"] == 3
    assert all(run["metrics"]["log_events"] > 0 for run in result.runs)


def test_different_seeds_differ():
    """Sanity: the injector seed actually drives the schedule."""
    log_a, _ = _run_workload(injector_seed=1)
    log_b, _ = _run_workload(injector_seed=2)
    pulses_a = next(e[3] for e in log_a if e[0] == "pulses")
    pulses_b = next(e[3] for e in log_b if e[0] == "pulses")
    assert pulses_a != pulses_b


# ---------------------------------------------------------------------------
# Heartbeat detector accuracy under seeded churn
# ---------------------------------------------------------------------------

HB_PERIOD = 0.25
HB_TIMEOUT = 1.0          # 4x period: tolerates beats lost to recv aborts
HB_HORIZON = 12.0
# A suspicion is *justified* only within this long of a real down-event:
# the last pre-failure beat lands at most one period before the outage,
# staleness is declared strictly past ``timeout`` and the monitor scans on
# the ``check_period`` (= period) grid, plus beat delivery latency.
HB_ACCURACY_BOUND = HB_TIMEOUT + 2 * HB_PERIOD + 0.01


def _hb_hold(actor, horizon):
    yield actor.sleep_until(horizon)


def _detector_run(seed):
    """One seeded-churn run under a heartbeat monitor.

    Returns ``(truth, flips, final)``: the ground-truth host state
    transitions seen by ``on_host_state_change``, the detector's
    suspect/alive flip log and the final date — all of which must replay
    bit-identically for the same seed.
    """
    from repro.ft import HeartbeatMonitor

    leaves = [f"leaf-{i}" for i in range(NUM_WORKERS)]
    engine = s4u.Engine(make_star(num_hosts=NUM_WORKERS, host_speed=1e9,
                                  link_bandwidth=1e7, link_latency=1e-4))
    truth = []
    engine.on_host_state_change(
        lambda host, is_on: truth.append((engine.now, host.name, is_on)))
    monitor = HeartbeatMonitor(engine, leaves, "center",
                               period=HB_PERIOD, timeout=HB_TIMEOUT).start()
    FailureInjector(engine, seed=seed, hosts=leaves,
                    mtbf=1.5, mean_downtime=1.0, max_failures=6,
                    until=HB_HORIZON - 2.0).start()
    engine.add_actor("hold", "center", _hb_hold, HB_HORIZON)
    final = engine.run()
    return truth, list(monitor.events), final


def _check_detector_accuracy(truth, flips):
    """Every suspicion is anchored to a recent real down-event."""
    downs = {}
    for date, name, is_on in truth:
        if not is_on:
            downs.setdefault(name, []).append(date)
    for date, kind, name in flips:
        if kind != "suspect":
            continue
        past = [d for d in downs.get(name, []) if d <= date + 1e-9]
        assert past, f"{name} suspected at {date} but never went down"
        lag = date - max(past)
        assert lag <= HB_ACCURACY_BOUND, \
            f"{name} suspected {lag}s after its last down-event at {date}"


@pytest.mark.parametrize("seed_base", [0, 50, 100])
def test_detector_accuracy_under_churn(seed_base):
    """150 seeded churn schedules: suspicion is accurate and replays.

    The heartbeat detector never suspects a host more than
    ``period + timeout`` (plus one scan tick of slack) after that host's
    last ground-truth down-event, and the suspect/alive flip log replays
    bit-identically per seed.
    """
    total_flips = 0
    for seed in range(seed_base, seed_base + 50):
        truth, flips, final = _detector_run(seed)
        _check_detector_accuracy(truth, flips)
        assert (truth, flips, final) == _detector_run(seed), \
            f"seed {seed} did not replay identically"
        total_flips += len(flips)
    assert total_flips > 0      # the sweep actually exercised the detector


def test_churn_fleet_survives_fifty_failures():
    """Acceptance: an auto-restart fleet absorbs >= 50 host failures."""
    from repro.exceptions import TransferFailureError

    num_workers, target = 16, 600
    engine = s4u.Engine(make_star(num_hosts=num_workers, host_speed=1e9,
                                  link_bandwidth=125e6, link_latency=1e-4))
    received = [0]

    def sink(actor):
        box = engine.mailbox("sink")
        while received[0] < target:
            try:
                yield box.get()
                received[0] += 1
            except TransferFailureError:
                continue

    def worker(actor, index):
        box = engine.mailbox("sink")
        while True:
            yield actor.execute(1e6)
            yield box.put(index, size=1e3)

    engine.add_actor("sink", "center", sink)
    for i in range(num_workers):
        engine.add_actor(f"worker-{i}", f"leaf-{i}", worker, i,
                         daemon=True, auto_restart=True)
    injector = FailureInjector(
        engine, seed=42, hosts=[f"leaf-{i}" for i in range(num_workers)],
        mtbf=0.001, mean_downtime=0.008, max_failures=120)
    injector.start()
    engine.run()

    assert received[0] == target          # all work completed despite churn
    assert injector.failures >= 50        # the churn was real
    assert engine.restart_count >= 25     # and auto-restart did the saving
