"""Parallel component solves ≡ the serial solver, bit for bit.

The PR-7 contract for :class:`~repro.surf.shard.ParallelSolveExecutor`
is strict: with the executor attached and forced to accept every batch,
a solve must produce exactly the values, the ``changed`` report, the
solver counters and the dirtiness bookkeeping of the in-process loop.
The hypothesis suite is derandomized so CI replays the same systems on
every run.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.surf.lmm import MaxMinSystem
from repro.surf.shard import ParallelSolveExecutor, default_workers


# ---------------------------------------------------------------------------
# Random-system specs.  A spec is plain data so the same spec can build two
# structurally identical systems (one solved serially, one in workers).
# ---------------------------------------------------------------------------

@st.composite
def system_specs(draw):
    ncns = draw(st.integers(min_value=2, max_value=18))
    nvars = draw(st.integers(min_value=2, max_value=40))
    constraints = [
        (draw(st.floats(min_value=0.5, max_value=50.0)),  # capacity
         draw(st.booleans()))                              # shared / fatpipe
        for _ in range(ncns)
    ]
    variables = []
    for _ in range(nvars):
        zero = draw(st.integers(min_value=0, max_value=9)) == 0
        weight = 0.0 if zero else draw(
            st.floats(min_value=0.1, max_value=8.0))
        bound = draw(st.one_of(
            st.none(), st.floats(min_value=0.1, max_value=30.0)))
        degree = draw(st.integers(min_value=1, max_value=3))
        edges = draw(st.lists(
            st.tuples(st.integers(min_value=0, max_value=ncns - 1),
                      st.floats(min_value=0.1, max_value=4.0)),
            min_size=degree, max_size=degree,
            unique_by=lambda e: e[0]))
        variables.append((weight, bound, edges))
    # A perturbation round exercises the incremental dirty path.
    perturbs = draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=nvars - 1),
                  st.floats(min_value=0.0, max_value=6.0)),
        min_size=0, max_size=6))
    return constraints, variables, perturbs


def materialize(spec):
    """Build a fresh system (plus cns/var handles) from a spec."""
    cns_specs, var_specs, _ = spec
    system = MaxMinSystem()
    cnss = [system.new_constraint(cap, shared=shared)
            for cap, shared in cns_specs]
    variables = []
    for weight, bound, edges in var_specs:
        var = system.new_variable(weight=weight, bound=bound)
        for cidx, usage in edges:
            system.expand(cnss[cidx], var, usage)
        variables.append(var)
    return system, cnss, variables


def snapshot(system, changed):
    counters = (system.constraints_solved, system.variables_solved,
                system.elements_visited, system.heap_pops)
    values = {var.id: var.value for var in system.variables}
    return values, [var.id for var in changed], counters


@pytest.fixture(scope="module")
def forced_executor():
    """One worker pool for the whole module: every batch qualifies."""
    executor = ParallelSolveExecutor(workers=2, min_components=1, min_work=1)
    yield executor
    executor.close()


DERANDOMIZED = settings(
    max_examples=20, deadline=None, derandomize=True,
    suppress_health_check=[HealthCheck.function_scoped_fixture])


@DERANDOMIZED
@given(spec=system_specs())
def test_parallel_solve_matches_serial(spec, forced_executor):
    serial_sys, _, serial_vars = materialize(spec)
    worker_sys, _, worker_vars = materialize(spec)
    worker_sys.executor = forced_executor

    serial = snapshot(serial_sys, serial_sys.solve())
    parallel = snapshot(worker_sys, worker_sys.solve())
    assert parallel == serial
    assert not worker_sys._modified and not worker_sys._detached_dirty

    # Incremental round: same perturbations on both sides, same result.
    for vidx, weight in spec[2]:
        serial_sys.update_variable_weight(serial_vars[vidx], weight)
        worker_sys.update_variable_weight(worker_vars[vidx], weight)
    serial = snapshot(serial_sys, serial_sys.solve())
    parallel = snapshot(worker_sys, worker_sys.solve())
    assert parallel == serial
    assert not worker_sys._modified and not worker_sys._detached_dirty


@DERANDOMIZED
@given(spec=system_specs())
def test_parallel_solve_grouped_matches_serial(spec, forced_executor):
    serial_sys = materialize(spec)[0]
    worker_sys = materialize(spec)[0]
    worker_sys.executor = forced_executor

    serial_changed, serial_groups = serial_sys.solve_grouped()
    worker_changed, worker_groups = worker_sys.solve_grouped()
    assert [v.id for v in worker_changed] == [v.id for v in serial_changed]
    assert worker_groups == serial_groups


class TestExecutorLifecycle:
    def test_small_batches_stay_in_process(self):
        executor = ParallelSolveExecutor(workers=2, min_components=2,
                                         min_work=256)
        with executor:
            system = MaxMinSystem()
            system.executor = executor
            cns = system.new_constraint(1.0)
            var = system.new_variable()
            system.expand(cns, var, 1.0)
            system.solve()
            assert var.value == pytest.approx(1.0)
            # one tiny component: below both thresholds, never shipped
            assert executor.batches == 0

    def test_zero_workers_never_accepts(self):
        executor = ParallelSolveExecutor(workers=0, min_components=1,
                                         min_work=1)
        assert not executor.accepts([([], [object()] * 100)])
        executor.close()

    def test_close_releases_workers_and_segments(self):
        executor = ParallelSolveExecutor(workers=2, min_components=1,
                                         min_work=1)
        system = MaxMinSystem()
        system.executor = executor
        for _ in range(4):
            cns = system.new_constraint(1.0)
            var = system.new_variable()
            system.expand(cns, var, 1.0)
        system.solve()
        assert executor.batches == 1
        procs = [proc for _, proc in executor._state["procs"]]
        assert procs and all(proc.is_alive() for proc in procs)
        segment = executor._state["shm"].name.lstrip("/")
        executor.close()
        for proc in procs:
            proc.join(timeout=5.0)
            assert not proc.is_alive()
        if os.path.isdir("/dev/shm"):
            assert segment not in os.listdir("/dev/shm")
        executor.close()  # idempotent

    def test_dead_workers_fall_back_to_serial(self):
        executor = ParallelSolveExecutor(workers=2, min_components=1,
                                         min_work=1)
        with executor:
            system = MaxMinSystem()
            system.executor = executor
            cnss = [system.new_constraint(float(i + 1)) for i in range(3)]
            variables = []
            for cns in cnss:
                var = system.new_variable()
                system.expand(cns, var, 1.0)
                variables.append(var)
            system.solve()
            assert executor.batches == 1
            for _, proc in executor._state["procs"]:
                proc.terminate()
                proc.join(timeout=5.0)
            for var in variables:
                system.update_variable_weight(var, 2.0)
            system.solve()
            # the batch failed over to the in-process path, correctly
            assert executor.fallbacks >= 1
            assert executor.workers == 0
            for i, var in enumerate(variables):
                assert var.value == pytest.approx(float(i + 1))

    def test_default_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert default_workers() == 0
        monkeypatch.setenv("REPRO_PARALLEL", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_PARALLEL", "not-a-number")
        assert default_workers() == 0
        monkeypatch.delenv("REPRO_PARALLEL")
        assert default_workers() == max((os.cpu_count() or 1) - 1, 0)
