"""Integration tests: every shipped example runs and produces sane output."""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestQuickstart:
    def test_runs_and_matches_expected_duration(self, capsys):
        module = load_example("quickstart")
        final_time = module.main()
        captured = capsys.readouterr().out
        assert "received 'Ack'" in captured
        # 3.2 MB at 1.25 MB/s (+1 ms) + 30 MFlop at 100 MFlop/s + 10 KB ack
        assert 2.8 < final_time < 3.0


class TestClientServerGantt:
    def test_gantt_shows_interfering_communications(self):
        module = load_example("client_server_gantt")
        final_time, chart = module.run(verbose=False)
        assert final_time > 0
        summary = chart.summary()
        # every client and server row exists and did some communication
        assert set(summary) == {"client-0", "client-1", "client-2",
                                "server-0", "server-1"}
        assert all(totals["comm"] > 0 for totals in summary.values())
        # servers computed (dark blocks exist)
        assert summary["server-0"]["compute"] > 0
        # the paper's point: concurrent flows overlap in time
        assert chart.overlapping_comms() > 0


class TestGrasPingpong:
    def test_simulation_mode(self, capsys):
        module = load_example("gras_pingpong")
        final = module.run_simulation()
        assert final > 1.0          # the client sleeps 1 s before pinging
        assert "ping-pong completed" in capsys.readouterr().out

    def test_real_mode(self, capsys):
        module = load_example("gras_pingpong")
        module.run_real_life()
        assert "real-world run completed" in capsys.readouterr().out


class TestSmpiMatmul:
    def test_heterogeneous_platform_is_slower(self, capsys):
        module = load_example("smpi_matmul")
        homogeneous = module.simulate(
            __import__("repro.platform", fromlist=["make_cluster"])
            .make_cluster(num_hosts=4), 4, "homogeneous")
        heterogeneous = module.simulate(
            __import__("repro.platform", fromlist=["make_two_site_grid"])
            .make_two_site_grid(hosts_per_site=2, wan_bandwidth=1.25e6,
                                wan_latency=50e-3), 4, "heterogeneous")
        assert heterogeneous > homogeneous


class TestP2pFilesharing:
    def test_downloads_complete_despite_failure(self, capsys):
        module = load_example("p2p_filesharing")
        module.main()
        out = capsys.readouterr().out
        assert out.count("download complete") == 2
        assert "switching" in out          # the failed seed was abandoned


class TestFailureChurn:
    def test_fleet_survives_and_reports(self, capsys):
        module = load_example("failure_churn")
        outcome = module.run(seed=42)
        out = capsys.readouterr().out
        assert outcome["received"] == module.RESULTS_TARGET
        assert outcome["failures"] > 0
        assert outcome["restarts"] > 0
        assert "DOWN" in out and "back up" in out
        assert "all 400 results collected" in out


class TestSupervisedPipeline:
    def test_loss_free_pipeline_under_churn(self, capsys):
        module = load_example("supervised_pipeline")
        outcome = module.run(seed=42)
        out = capsys.readouterr().out
        # Loss-free despite real churn, with every ft primitive visible.
        assert outcome["delivered"] == module.NUM_ITEMS == 40
        assert outcome["failures"] == 5
        assert outcome["worker_restarts"] >= 1
        assert outcome["suspects"] >= 1
        assert outcome["send_retries"] + outcome["resubmissions"] >= 1
        assert "detector: suspect" in out and "detector: alive" in out
        assert "pipeline done: 40/40 items" in out

    def test_printed_output_replays_bit_identically(self, capsys):
        module = load_example("supervised_pipeline")
        outcome = module.run(seed=42)
        first = capsys.readouterr().out
        assert module.run(seed=42) == outcome
        assert capsys.readouterr().out == first


class TestAmokMonitoring:
    def test_two_sites_inferred(self, capsys):
        module = load_example("amok_monitoring")
        module.main()
        out = capsys.readouterr().out
        assert "site 0:" in out and "site 1:" in out
        assert "wide area" in out
