"""Recovery policies: chunked checkpointing under seeded churn."""

import pytest

from repro.replay import compare_recovery_policies, run_recovery_experiment

CALM = {"mtbf": 1e6, "max_failures": 1}     # first failure far beyond the run


class TestRecoveryExperiment:
    def test_calm_run_completes_without_waste(self):
        metrics = run_recovery_experiment(seed=1, config={**CALM,
                                                          "policy": "periodic"})
        assert metrics["completed"] == 4
        assert metrics["failures"] == 0
        assert metrics["wasted_flops"] == 0.0
        # 7 intermediate checkpoints per worker (the final chunk banks free)
        assert metrics["checkpoints"] == 4 * 7
        # 4e9 work + 7 * 5e7 checkpoint cost at 1e9 flop/s
        assert metrics["makespan"] == pytest.approx(4.35)

    def test_event_policy_skips_checkpoints_when_calm(self):
        metrics = run_recovery_experiment(seed=1, config={**CALM,
                                                          "policy": "event"})
        assert metrics["completed"] == 4
        assert metrics["checkpoints"] == 0
        assert metrics["makespan"] == pytest.approx(4.0)

    def test_churny_run_recovers_and_accounts_waste(self):
        # Seed 4 is a run where a worker dies after completing a chunk it
        # had not banked yet (waste is accounted at chunk granularity, so
        # a kill in the *middle* of a chunk legitimately counts zero).
        metrics = run_recovery_experiment(seed=4, config={"policy": "periodic"})
        assert metrics["completed"] == 4
        assert metrics["kills"] >= metrics["failures"] > 0
        # Progress is banked every chunk, so waste is bounded by one
        # chunk plus one checkpoint's worth per kill.
        assert metrics["wasted_flops"] > 0.0
        assert metrics["wasted_flops"] <= metrics["kills"] * 5.5e8

    def test_event_policy_wastes_at_least_as_much_per_seed(self):
        for seed in (1, 4, 6):
            periodic = run_recovery_experiment(
                seed=seed, config={"policy": "periodic"})
            event = run_recovery_experiment(
                seed=seed, config={"policy": "event"})
            assert event["completed"] == periodic["completed"] == 4
            assert event["wasted_flops"] >= periodic["wasted_flops"]
            assert event["checkpoints"] < periodic["checkpoints"]

    def test_same_seed_same_metrics(self):
        first = run_recovery_experiment(seed=9, config={"policy": "event"})
        second = run_recovery_experiment(seed=9, config={"policy": "event"})
        assert first == second

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            run_recovery_experiment(seed=1, config={**CALM,
                                                    "policy": "hopeful"})


class TestCompareRecoveryPolicies:
    def test_compare_over_seeds_serial(self):
        report = compare_recovery_policies([1, 2, 3], workers=0)
        summary = report["summary"]
        assert set(summary) == {"periodic", "event"}
        assert summary["periodic"]["completed"]["n"] == 3
        assert summary["periodic"]["checkpoints"]["min"] > 0
        # Under churn the lazy policy re-does more work per kill.
        assert (summary["event"]["wasted_flops"]["mean"]
                >= summary["periodic"]["wasted_flops"]["mean"])

    def test_forked_matches_serial(self):
        serial = compare_recovery_policies([4, 5], workers=0)
        forked = compare_recovery_policies([4, 5], workers=2)
        assert forked["summary"] == serial["summary"]
        assert forked["forked"] or not serial["forked"]
