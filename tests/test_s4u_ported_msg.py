"""The behavioural pins of the retired MSG test suite, expressed on s4u.

The MSG compatibility shim (and its ``tests/test_msg_*`` files) was removed
once every layer ran natively on s4u.  The scenarios below are the cases
from those files worth keeping: they pin simulation *physics* (transfer
dates, CPU sharing, rendezvous semantics, failure propagation, deadlock
detection) rather than shim plumbing, so they must keep passing no matter
which API spells them.
"""

import pytest

from repro import (
    DeadlockError,
    HostFailureError,
    SimTimeoutError,
    TransferFailureError,
)
from repro.platform import Platform
from repro.s4u import Engine
from repro.surf.trace import Trace


def pair_platform(speed=1e9, bandwidth=1e6, latency=0.0, traces=None):
    platform = Platform("pair")
    traces = traces or {}
    platform.add_host("alice", speed, state_trace=traces.get("alice"))
    platform.add_host("bob", speed, state_trace=traces.get("bob"))
    platform.add_link("wire", bandwidth, latency,
                      state_trace=traces.get("wire"))
    platform.connect("alice", "bob", "wire")
    return platform


class TestExecutionPhysics:
    def test_execute_duration_matches_speed(self):
        engine = Engine(pair_platform(speed=1e9))
        times = {}

        def worker(actor):
            yield actor.execute(2e9)
            times["done"] = actor.now

        engine.add_actor("worker", "alice", worker)
        engine.run()
        assert times["done"] == pytest.approx(2.0)

    def test_two_actors_share_the_host(self):
        engine = Engine(pair_platform(speed=1e9))
        times = {}

        def worker(actor, key):
            yield actor.execute(1e9)
            times[key] = actor.now

        engine.add_actor("w1", "alice", worker, "w1")
        engine.add_actor("w2", "alice", worker, "w2")
        engine.run()
        assert times["w1"] == pytest.approx(2.0)
        assert times["w2"] == pytest.approx(2.0)

    def test_actors_on_different_hosts_do_not_interfere(self):
        engine = Engine(pair_platform(speed=1e9))
        times = {}

        def worker(actor, key):
            yield actor.execute(1e9)
            times[key] = actor.now

        engine.add_actor("w1", "alice", worker, "w1")
        engine.add_actor("w2", "bob", worker, "w2")
        engine.run()
        assert times["w1"] == pytest.approx(1.0)
        assert times["w2"] == pytest.approx(1.0)

    def test_execution_priority(self):
        engine = Engine(pair_platform(speed=1e9))
        times = {}

        def worker(actor, key, priority):
            yield actor.execute(1e9, priority=priority)
            times[key] = actor.now

        engine.add_actor("high", "alice", worker, "high", 3.0)
        engine.add_actor("low", "alice", worker, "low", 1.0)
        engine.run()
        assert times["high"] < times["low"]

    def test_kill_actor_blocked_on_execution_frees_the_cpu(self):
        engine = Engine(pair_platform(speed=1e9))
        times = {}

        def hog(actor):
            yield actor.execute(1e12)

        def other(actor):
            yield actor.execute(1e9)
            times["other"] = actor.now

        def killer(actor, target):
            yield actor.sleep_for(0.5)
            yield target.kill()

        hog_actor = engine.add_actor("hog", "alice", hog)
        engine.add_actor("other", "alice", other)
        engine.add_actor("killer", "alice", killer, hog_actor)
        engine.run()
        # the other actor had half the CPU for 0.5 s, then all of it
        assert times["other"] == pytest.approx(1.25)


class TestCommunicationPhysics:
    def test_transfer_time_includes_bandwidth_and_latency(self):
        engine = Engine(pair_platform(bandwidth=1e6, latency=0.5))
        times = {}

        def sender(actor):
            yield actor.engine.mailbox("box").put("data", size=2e6)
            times["sent"] = actor.now

        def receiver(actor):
            payload = yield actor.engine.mailbox("box").get()
            times["received"] = actor.now
            times["payload"] = payload

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "bob", receiver)
        engine.run()
        assert times["received"] == pytest.approx(2.5)
        assert times["sent"] == pytest.approx(2.5)   # rendezvous semantics
        assert times["payload"] == "data"

    def test_sender_blocks_until_receiver_arrives(self):
        engine = Engine(pair_platform(bandwidth=1e6))
        times = {}

        def sender(actor):
            yield actor.engine.mailbox("box").put("data", size=1e6)
            times["sent"] = actor.now

        def late_receiver(actor):
            yield actor.sleep_for(5.0)
            yield actor.engine.mailbox("box").get()
            times["received"] = actor.now

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "bob", late_receiver)
        engine.run()
        assert times["sent"] == pytest.approx(6.0)
        assert times["received"] == pytest.approx(6.0)

    def test_two_flows_share_the_link(self):
        engine = Engine(pair_platform(bandwidth=1e6))
        times = {}

        def sender(actor, box):
            yield actor.engine.mailbox(box).put("d", size=1e6)

        def receiver(actor, box, key):
            yield actor.engine.mailbox(box).get()
            times[key] = actor.now

        engine.add_actor("s1", "alice", sender, "box1")
        engine.add_actor("s2", "alice", sender, "box2")
        engine.add_actor("r1", "bob", receiver, "box1", "r1")
        engine.add_actor("r2", "bob", receiver, "box2", "r2")
        engine.run()
        # each flow gets half the link: 2 s instead of 1 s
        assert times["r1"] == pytest.approx(2.0)
        assert times["r2"] == pytest.approx(2.0)

    def test_fifo_matching_on_one_mailbox(self):
        engine = Engine(pair_platform())
        order = []

        def sender(actor):
            yield actor.engine.mailbox("box").put("first", size=1.0)
            yield actor.engine.mailbox("box").put("second", size=1.0)

        def receiver(actor):
            order.append((yield actor.engine.mailbox("box").get()))
            order.append((yield actor.engine.mailbox("box").get()))

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "bob", receiver)
        engine.run()
        assert order == ["first", "second"]

    def test_rate_limited_put(self):
        engine = Engine(pair_platform(bandwidth=1e7))
        times = {}

        def sender(actor):
            yield actor.engine.mailbox("box").put("d", size=1e6, rate=1e5)

        def receiver(actor):
            yield actor.engine.mailbox("box").get()
            times["done"] = actor.now

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "bob", receiver)
        engine.run()
        assert times["done"] == pytest.approx(10.0)

    def test_detached_put_is_fire_and_forget(self):
        engine = Engine(pair_platform())
        times = {}

        def sender(actor):
            yield actor.engine.mailbox("box").put_async("d", size=1e6,
                                                        detached=True)
            times["sender_returned"] = actor.now

        def receiver(actor):
            yield actor.engine.mailbox("box").get()
            times["received"] = actor.now

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "bob", receiver)
        engine.run()
        assert times["sender_returned"] == pytest.approx(0.0)
        assert times["received"] == pytest.approx(1.0)


class TestPaperListing:
    def test_paper_client_server_exchange(self):
        """The paper's quickstart timings on a deterministic platform."""
        MFLOP, MBYTE = 1e6, 1e6
        platform = Platform("paper")
        platform.add_host("client-host", 1e8)
        platform.add_host("server-host", 1e8)
        platform.add_link("lan", 1.25e6, 1e-3)
        platform.connect("client-host", "server-host", "lan")
        engine = Engine(platform)
        times = {}

        def client(actor):
            yield actor.engine.mailbox("server:22").put(
                ("Remote", 30.0 * MFLOP), size=3.2 * MBYTE)
            yield actor.execute(10.50 * MFLOP)
            ack_size = yield actor.engine.mailbox("client:23").get()
            times["client_done"] = actor.now
            times["ack_size"] = ack_size

        def server(actor):
            _, flops = yield actor.engine.mailbox("server:22").get()
            yield actor.execute(flops)
            yield actor.engine.mailbox("client:23").put(
                0.01 * MBYTE, size=0.01 * MBYTE)
            times["server_done"] = actor.now

        engine.add_actor("client", "client-host", client)
        engine.add_actor("server", "server-host", server)
        engine.run()
        # transfer: 3.2 MB at 1.25 MB/s + 1 ms = 2.561 s
        transfer = 3.2 * MBYTE / 1.25e6 + 1e-3
        # server computes 30 MFlop at 100 MFlop/s = 0.3 s, ack is 10 KB
        ack_time = 0.01 * MBYTE / 1.25e6 + 1e-3
        assert times["server_done"] == pytest.approx(
            transfer + 0.3 + ack_time, rel=1e-6)
        assert times["client_done"] == pytest.approx(times["server_done"])
        assert times["ack_size"] == pytest.approx(0.01 * MBYTE)


class TestLifecycle:
    def test_actor_created_dynamically_by_another_actor(self):
        engine = Engine(pair_platform())
        log = []

        def child(actor, tag):
            yield actor.execute(1e9)
            log.append((tag, actor.now))

        def parent(actor):
            yield actor.sleep_for(1.0)
            actor.engine.add_actor("child", "alice", child, "spawned")
            yield actor.sleep_for(0.1)

        engine.add_actor("parent", "alice", parent)
        engine.run()
        assert log == [("spawned", pytest.approx(2.0))]

    def test_daemons_die_with_the_last_regular_actor(self):
        engine = Engine(pair_platform())
        log = []

        def daemon(actor):
            while True:
                yield actor.sleep_for(1.0)
                log.append(actor.now)

        def main(actor):
            yield actor.sleep_for(3.5)

        engine.add_actor("daemon", "alice", daemon, daemon=True)
        engine.add_actor("main", "alice", main)
        final = engine.run()
        assert final == pytest.approx(3.5)
        assert log == [1.0, 2.0, 3.0]

    def test_run_until_stops_at_bound(self):
        engine = Engine(pair_platform(speed=1e6))

        def worker(actor):
            yield actor.execute(1e9)   # would take 1000 s

        engine.add_actor("w", "alice", worker)
        final = engine.run(until=10.0)
        assert final == pytest.approx(10.0)
        assert engine.actor_count() == 1   # still alive, simply not finished

    def test_yield_lets_other_actors_run(self):
        engine = Engine(pair_platform())
        order = []

        def chatty(actor, tag, rounds):
            for _ in range(rounds):
                order.append(tag)
                yield actor.yield_()

        engine.add_actor("a", "alice", chatty, "a", 3)
        engine.add_actor("b", "alice", chatty, "b", 3)
        engine.run()
        # actors alternate instead of running to completion one by one
        assert order[:4] == ["a", "b", "a", "b"]

    def test_thread_context_factory(self):
        """The same rendezvous scenario runs under the thread contexts."""
        engine = Engine(pair_platform(), context_factory="thread")
        times = {}

        def sender(actor):
            actor.engine.mailbox("box").put("d", size=1e6)

        def receiver(actor):
            payload = actor.engine.mailbox("box").get()
            times["got"] = (payload, actor.now)

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "bob", receiver)
        engine.run()
        assert times["got"][0] == "d"
        assert times["got"][1] == pytest.approx(1.0)


class TestTimeouts:
    def test_receive_timeout_raises(self):
        engine = Engine(pair_platform())
        outcome = {}

        def lonely(actor):
            try:
                yield actor.engine.mailbox("nowhere").get(timeout=3.0)
            except SimTimeoutError:
                outcome["timeout_at"] = actor.now

        engine.add_actor("lonely", "alice", lonely)
        engine.run()
        assert outcome["timeout_at"] == pytest.approx(3.0)

    def test_send_timeout_raises(self):
        engine = Engine(pair_platform())
        outcome = {}

        def impatient(actor):
            try:
                yield actor.engine.mailbox("void").put("d", size=1e6,
                                                       timeout=2.0)
            except SimTimeoutError:
                outcome["timeout_at"] = actor.now

        engine.add_actor("impatient", "alice", impatient)
        engine.run()
        assert outcome["timeout_at"] == pytest.approx(2.0)

    def test_started_transfer_timeout_fails_the_peer(self):
        # A very slow transfer: the receiver times out mid-transfer and the
        # sender observes a transfer failure.
        engine = Engine(pair_platform(bandwidth=1e3))
        outcome = {}

        def sender(actor):
            try:
                yield actor.engine.mailbox("box").put("huge", size=1e9)
            except TransferFailureError:
                outcome["sender"] = ("failed", actor.now)

        def receiver(actor):
            try:
                yield actor.engine.mailbox("box").get(timeout=10.0)
            except SimTimeoutError:
                outcome["receiver"] = ("timeout", actor.now)

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "bob", receiver)
        engine.run()
        assert outcome["receiver"] == ("timeout", pytest.approx(10.0))
        assert outcome["sender"][0] == "failed"


class TestFailures:
    def test_host_failure_kills_its_actors(self):
        trace = Trace([(5.0, 0.0)], name="alice-death")
        engine = Engine(pair_platform(traces={"alice": trace}))
        log = []

        def worker(actor):
            try:
                yield actor.execute(1e12)
                log.append("finished")
            finally:
                log.append(("interrupted", actor.now))

        engine.add_actor("worker", "alice", worker)
        engine.run()
        assert ("interrupted", pytest.approx(5.0)) in log
        assert "finished" not in log

    def test_transfer_fails_when_peer_host_dies(self):
        trace = Trace([(2.0, 0.0)], name="bob-death")
        engine = Engine(pair_platform(bandwidth=1e5,
                                      traces={"bob": trace}))
        outcome = {}

        def sender(actor):
            try:
                yield actor.engine.mailbox("box").put("d", size=1e7)
            except TransferFailureError:
                outcome["sender"] = ("transfer-failure", actor.now)

        def receiver(actor):
            yield actor.engine.mailbox("box").get()

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "bob", receiver)
        engine.run()
        assert outcome["sender"] == ("transfer-failure", pytest.approx(2.0))

    def test_link_failure_fails_the_transfer(self):
        trace = Trace([(1.0, 0.0)], name="wire-death")
        engine = Engine(pair_platform(bandwidth=1e5,
                                      traces={"wire": trace}))
        outcome = {}

        def sender(actor):
            try:
                yield actor.engine.mailbox("box").put("d", size=1e7)
            except TransferFailureError:
                outcome["sender_failed_at"] = actor.now

        def receiver(actor):
            try:
                yield actor.engine.mailbox("box").get()
            except TransferFailureError:
                outcome["receiver_failed_at"] = actor.now

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "bob", receiver)
        engine.run()
        assert outcome["sender_failed_at"] == pytest.approx(1.0)
        assert outcome["receiver_failed_at"] == pytest.approx(1.0)

    def test_execute_on_dead_host_raises_host_failure(self):
        engine = Engine(pair_platform())
        outcome = {}

        def worker(actor):
            yield actor.sleep_for(1.0)
            try:
                yield actor.execute(1e9, host=actor.engine.host("bob"))
            except HostFailureError:
                outcome["refused"] = True

        def saboteur(actor):
            yield actor.sleep_for(0.5)
            actor.engine.host("bob").turn_off()

        engine.add_actor("worker", "alice", worker)
        engine.add_actor("saboteur", "alice", saboteur)
        engine.run()
        assert outcome.get("refused") is True


class TestDeadlock:
    def test_deadlock_detected_and_simulation_ends(self):
        engine = Engine(pair_platform())

        def waiter(actor):
            yield actor.engine.mailbox("never").get()

        engine.add_actor("waiter", "alice", waiter)
        engine.run()
        assert engine.deadlocked

    def test_deadlock_raises_when_requested(self):
        engine = Engine(pair_platform(), raise_on_deadlock=True)

        def waiter(actor):
            yield actor.engine.mailbox("never").get()

        engine.add_actor("waiter", "alice", waiter)
        with pytest.raises(DeadlockError):
            engine.run()

    def test_no_deadlock_flag_on_clean_termination(self):
        engine = Engine(pair_platform())

        def quick(actor):
            yield actor.sleep_for(1.0)

        engine.add_actor("quick", "alice", quick)
        engine.run()
        assert not engine.deadlocked
