"""Shared fixtures: guard against leaked parallel-solve shared memory.

The :class:`~repro.surf.shard.ParallelSolveExecutor` owns POSIX shared
memory segments named ``repro_lmm_<pid>_<seq>``.  They must be released
by ``close()`` (or the ``weakref.finalize``/``atexit`` safety nets) —
a segment that survives the test session would accumulate in
``/dev/shm`` across pytest runs.  This check is scoped to the current
process id so concurrent pytest invocations don't trip each other.
"""

import os

import pytest

_SHM_DIR = "/dev/shm"
_PREFIX = f"repro_lmm_{os.getpid()}_"


def _our_segments():
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:  # platform without /dev/shm
        return []
    return sorted(n for n in names if n.startswith(_PREFIX))


@pytest.fixture(scope="session", autouse=True)
def no_leaked_shm_segments():
    before = _our_segments()
    yield
    leaked = [n for n in _our_segments() if n not in before]
    assert not leaked, (
        f"parallel-solve shared memory leaked past the test session: {leaked}"
    )
