"""Cluster replay frontend: workload generation and fleet replay."""

import pytest

from repro.replay import ClusterJob, ClusterReplay, ClusterWorkload, \
    synthetic_workload
from repro.surf.trace import Trace


class TestSyntheticWorkload:
    def test_same_seed_same_workload(self):
        first = synthetic_workload(seed=42, num_hosts=4, num_jobs=10)
        second = synthetic_workload(seed=42, num_hosts=4, num_jobs=10)
        assert first.jobs == second.jobs
        assert first.horizon == second.horizon
        assert {name: trace.events for name, trace in
                first.availability.items()} == \
            {name: trace.events for name, trace in
             second.availability.items()}
        assert sorted(first.state) == sorted(second.state)

    def test_different_seeds_differ(self):
        first = synthetic_workload(seed=1, num_hosts=4, num_jobs=10)
        second = synthetic_workload(seed=2, num_hosts=4, num_jobs=10)
        assert first.jobs != second.jobs

    def test_shape(self):
        workload = synthetic_workload(seed=7, num_hosts=3, num_jobs=8)
        assert len(workload.jobs) == 8
        submits = [job.submit for job in workload.jobs]
        assert submits == sorted(submits)
        assert len(workload.availability) == 3
        for trace in workload.availability.values():
            trace.validate_availability()     # dips stay in [0, 1]
        assert workload.horizon > submits[-1]

    def test_pinned_hosts_are_fleet_members(self):
        workload = synthetic_workload(seed=9, num_hosts=3, num_jobs=20)
        nodes = {f"node-{i}" for i in range(3)}
        assert {job.host for job in workload.jobs if job.host} <= nodes


class TestClusterReplay:
    def test_calm_replay_completes_everything(self):
        workload = synthetic_workload(seed=11, num_hosts=4, num_jobs=10,
                                      failing_fraction=0.0)
        metrics = ClusterReplay(workload).run()
        assert metrics["completed"] == metrics["jobs"] == 10
        assert metrics["dispatched"] == 10
        assert 0.0 < metrics["makespan"] <= metrics["final_time"]
        # The availability dips fired: the speed observer saw trace events.
        assert metrics["speed_changes"] > 0
        assert metrics["host_downs"] == 0

    def test_replay_is_deterministic(self):
        workload = synthetic_workload(seed=13, num_hosts=4, num_jobs=8)
        first = ClusterReplay(workload, churn_seed=5).run()
        second = ClusterReplay(workload, churn_seed=5).run()
        assert first == second

    def test_flat_vs_sharded_identical(self):
        workload = synthetic_workload(seed=17, num_hosts=4, num_jobs=8)
        flat = ClusterReplay(workload, churn_seed=3).run(sharded=False)
        shard = ClusterReplay(workload, churn_seed=3).run(sharded=True)
        assert shard == flat

    def test_mailbox_queued_job_redelivered_after_restart(self):
        # One node, down from t=1 to t=3 via its state trace.  A job
        # submitted during the outage waits in the node mailbox and is
        # executed by the rebooted auto-restart worker.
        workload = ClusterWorkload(
            num_hosts=1,
            jobs=[ClusterJob(submit=2.0, flops=1e9, host="node-0")],
            state={"node-0": Trace([(1.0, 0.0), (3.0, 1.0)], name="pulse")},
            horizon=10.0)
        replay = ClusterReplay(workload)
        metrics = replay.run()
        assert metrics["completed"] == 1
        assert metrics["host_downs"] == 1 and metrics["host_ups"] == 1
        # Executed after the reboot, not during the outage.
        assert metrics["makespan"] > 4.0

    def test_job_killed_mid_exec_is_lost_not_hung(self):
        # The job starts at t=0.5 on node-0 and the host dies mid-exec:
        # at-most-once semantics, the run still terminates at the horizon.
        workload = ClusterWorkload(
            num_hosts=1,
            jobs=[ClusterJob(submit=0.5, flops=5e9, host="node-0")],
            state={"node-0": Trace([(1.0, 0.0), (2.0, 1.0)], name="pulse")},
            horizon=8.0)
        metrics = ClusterReplay(workload).run()
        assert metrics["completed"] == 0
        assert metrics["dispatched"] == 1
        assert metrics["final_time"] == pytest.approx(8.0)

    def test_platform_carries_workload_traces(self):
        workload = synthetic_workload(seed=19, num_hosts=3, num_jobs=4)
        platform = ClusterReplay(workload).build_platform()
        spec = platform.hosts["node-1"]
        assert spec.availability_trace is workload.availability["node-1"]


def _mid_exec_outage_workload(horizon=12.0):
    """One node, one job started at t=0.5 and killed mid-exec by an
    outage at t=1 — the canonical job-loss shape (the at-most-once twin
    above pins ``completed == 0`` on it)."""
    return ClusterWorkload(
        num_hosts=1,
        jobs=[ClusterJob(submit=0.5, flops=5e9, host="node-0")],
        state={"node-0": Trace([(1.0, 0.0), (2.5, 1.0)], name="pulse")},
        horizon=horizon)


class TestAtLeastOnce:
    def test_semantics_validated(self):
        with pytest.raises(ValueError):
            ClusterReplay(_mid_exec_outage_workload(),
                          semantics="exactly_once")

    def test_job_killed_mid_exec_is_resubmitted(self):
        workload = _mid_exec_outage_workload()
        # At-most-once loses the job...
        amo = ClusterReplay(workload).run()
        assert amo["completed"] == 0 and amo["lost"] == 1
        # ...at-least-once detects the dead node and resubmits it.
        alo = ClusterReplay(workload, semantics="at_least_once",
                            detector_period=0.25, detector_timeout=0.75,
                            ack_timeout=8.0).run()
        assert alo["completed"] == 1 and alo["lost"] == 0
        assert alo["resubmitted"] >= 1
        assert alo["suspects"] == 1
        assert alo["duplicates"] == 0
        # Resubmitted after the reboot at 2.5, then 5 s of compute.
        assert alo["makespan"] == pytest.approx(7.5, abs=0.1)

    def test_duplicate_executions_are_deduplicated(self):
        # The job is submitted *during* the outage: the original dispatch
        # waits in the node mailbox, the resubmitter re-sends it while
        # the node is suspected, and the rebooted worker executes both.
        workload = ClusterWorkload(
            num_hosts=1,
            jobs=[ClusterJob(submit=1.5, flops=1e9, host="node-0")],
            state={"node-0": Trace([(1.0, 0.0), (2.5, 1.0)], name="pulse")},
            horizon=10.0)
        metrics = ClusterReplay(workload, semantics="at_least_once",
                                detector_period=0.25, detector_timeout=0.75,
                                ack_timeout=8.0).run()
        assert metrics["completed"] == 1 and metrics["lost"] == 0
        assert metrics["duplicates"] >= 1
        assert metrics["resubmitted"] >= 1

    def test_at_least_once_deterministic_across_kernels(self):
        workload = synthetic_workload(seed=23, num_hosts=4, num_jobs=8)
        replays = [ClusterReplay(workload, churn_seed=7,
                                 semantics="at_least_once", supervised=True)
                   for _ in range(3)]
        flat = replays[0].run(sharded=False)
        again = replays[1].run(sharded=False)
        shard = replays[2].run(sharded=True)
        assert flat == again == shard

    def test_supervised_churn_fleet_loses_nothing(self):
        workload = synthetic_workload(seed=3, num_hosts=4, num_jobs=16)
        metrics = ClusterReplay(workload, churn_seed=7,
                                churn_max_failures=10,
                                semantics="at_least_once",
                                supervised=True).run()
        assert metrics["injected_failures"] == 10
        assert metrics["lost"] == 0
        assert metrics["completed"] == 16
        assert metrics["worker_restarts"] >= 1   # supervisor respawns

    def test_at_most_once_pipeline_is_untouched_by_supervision(self):
        # The supervised flag only swaps the restart machinery: a calm
        # at-most-once run completes identically either way.
        workload = synthetic_workload(seed=11, num_hosts=4, num_jobs=10,
                                      failing_fraction=0.0)
        plain = ClusterReplay(workload).run()
        supervised = ClusterReplay(workload, supervised=True).run()
        assert supervised["completed"] == plain["completed"] == 10
        assert supervised["makespan"] == plain["makespan"]
