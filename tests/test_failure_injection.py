"""Failure subsystem: s4u Link control, actor lifecycle, edge cases.

Covers the PR-4 fault-tolerance layer:

* the :class:`~repro.s4u.link.Link` endpoints (``link_by_name``,
  ``turn_off``/``turn_on``, ``set_bandwidth``/``set_latency``) and their
  effect on running transfers;
* actor lifecycle hooks — ``on_exit`` callbacks and ``auto_restart``
  reboots, with the ``Engine.on_host_state_change`` observer signals;
* the failure edge cases: a peer dying before the rendezvous matches, an
  exec whose host dies and comes back, ``ActivitySet.wait_any`` reaping a
  FAILED member, and the equivalence of a periodic state trace with the
  same pulses applied as explicit ``turn_off``/``turn_on`` calls.
"""

import math

import pytest

from repro import s4u
from repro.exceptions import (
    HostFailureError,
    PlatformError,
    SimTimeoutError,
    TransferFailureError,
)
from repro.platform import make_star
from repro.platform.platform import Platform
from repro.s4u import ActivitySet, ActivityState, FailureInjector
from repro.surf.trace import Trace


def two_host_platform(bandwidth=1e7, latency=1e-3, speed=1e9):
    platform = Platform("pair")
    platform.add_host("alice", speed)
    platform.add_host("bob", speed)
    platform.add_link("wire", bandwidth, latency)
    platform.connect("alice", "bob", "wire")
    return platform


class TestLinkApi:
    def test_link_by_name_and_lookup_error(self):
        engine = s4u.Engine(two_host_platform())
        link = engine.link_by_name("wire")
        assert link.name == "wire"
        assert link.bandwidth == 1e7
        assert link.latency == 1e-3
        assert link.is_on
        with pytest.raises(PlatformError):
            engine.link_by_name("no-such-link")

    def test_link_failure_fails_both_comm_ends(self):
        engine = s4u.Engine(two_host_platform())
        outcome = {}

        def sender(actor):
            try:
                yield engine.mailbox("m").put("x", size=1e9)
            except TransferFailureError:
                outcome["send"] = engine.now

        def receiver(actor):
            try:
                yield engine.mailbox("m").get()
            except TransferFailureError:
                outcome["recv"] = engine.now

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "bob", receiver)
        engine.timers.schedule(0.25, engine.link_by_name("wire").turn_off)
        engine.run()
        assert outcome == {"send": 0.25, "recv": 0.25}

    def test_link_failure_during_latency_phase(self):
        """A transfer still paying the route latency dies with its link."""
        engine = s4u.Engine(two_host_platform(latency=0.5))
        outcome = {}

        def sender(actor):
            try:
                yield engine.mailbox("m").put("x", size=1e6)
            except TransferFailureError:
                outcome["send"] = engine.now

        def receiver(actor):
            try:
                yield engine.mailbox("m").get()
            except TransferFailureError:
                outcome["recv"] = engine.now

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "bob", receiver)
        # 0.1 < 0.5: the transfer is still inside its latency phase.
        engine.timers.schedule(0.1, engine.link_by_name("wire").turn_off)
        engine.run()
        assert outcome == {"send": 0.1, "recv": 0.1}

    def test_restored_link_carries_new_transfers(self):
        engine = s4u.Engine(two_host_platform(latency=0.0))
        dates = {}

        def sender(actor):
            try:
                yield engine.mailbox("m").put("first", size=1e9)
            except TransferFailureError:
                pass
            yield actor.sleep_until(1.0)   # the link is back at t=0.5
            yield engine.mailbox("m").put("second", size=1e6)

        def receiver(actor):
            while True:
                try:
                    payload = yield engine.mailbox("m").get()
                except TransferFailureError:
                    continue
                dates[payload] = engine.now
                if payload == "second":
                    return

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "bob", receiver)
        link = engine.link_by_name("wire")
        engine.timers.schedule(0.25, link.turn_off)
        engine.timers.schedule(0.5, link.turn_on)
        engine.run()
        assert "first" not in dates
        assert dates["second"] == pytest.approx(1.0 + 1e6 / 1e7)

    def test_set_bandwidth_reshapes_running_transfer(self):
        """Halving the bandwidth mid-flight doubles the remaining time."""
        engine = s4u.Engine(two_host_platform(bandwidth=1e7, latency=0.0))
        dates = {}

        def sender(actor):
            yield engine.mailbox("m").put("x", size=1e7)   # 1 s at 1e7 B/s

        def receiver(actor):
            yield engine.mailbox("m").get()
            dates["done"] = engine.now

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "bob", receiver)
        engine.timers.schedule(
            0.5, lambda: engine.link_by_name("wire").set_bandwidth(5e6))
        engine.run()
        # Half the payload at 1e7 B/s, the other half at 5e6 B/s.
        assert dates["done"] == pytest.approx(0.5 + 1.0)

    def test_set_latency_only_affects_new_transfers(self):
        engine = s4u.Engine(two_host_platform(bandwidth=1e9, latency=0.1))
        dates = {}

        def sender(actor):
            yield engine.mailbox("m").put("first", size=1.0)
            yield engine.mailbox("m").put("second", size=1.0)

        def receiver(actor):
            yield engine.mailbox("m").get()
            dates["first"] = engine.now
            engine.link_by_name("wire").set_latency(0.3)
            yield engine.mailbox("m").get()
            dates["second"] = engine.now

        engine.add_actor("s", "alice", sender)
        engine.add_actor("r", "bob", receiver)
        engine.run()
        assert dates["first"] == pytest.approx(0.1, rel=1e-6)
        assert dates["second"] == pytest.approx(0.1 + 0.3, rel=1e-6)


class TestActorLifecycle:
    def test_on_exit_normal_and_killed(self):
        engine = s4u.Engine(make_star(num_hosts=2))
        exits = []

        def quick(actor):
            yield actor.sleep_for(0.1)

        def stubborn(actor):
            yield actor.sleep_for(100.0)

        def killer(actor, victim):
            yield actor.sleep_for(0.5)
            yield victim.kill()

        a = engine.add_actor("quick", "leaf-0", quick)
        b = engine.add_actor("stubborn", "leaf-0", stubborn)
        a.on_exit(lambda failed: exits.append(("quick", failed)))
        b.on_exit(lambda failed: exits.append(("stubborn", failed)))
        engine.add_actor("killer", "leaf-1", killer, b)
        engine.run()
        assert ("quick", False) in exits
        assert ("stubborn", True) in exits

    def test_on_exit_fires_on_host_failure(self):
        engine = s4u.Engine(make_star(num_hosts=2))
        exits = []

        def worker(actor):
            yield actor.execute(1e12)

        actor = engine.add_actor("w", "leaf-0", worker)
        actor.on_exit(lambda failed: exits.append(failed))
        engine.timers.schedule(0.5, engine.host("leaf-0").turn_off)
        engine.run()
        assert exits == [True]

    def test_on_exit_on_dead_actor_reports_real_outcome(self):
        """Late registration fires immediately with how the actor died."""
        engine = s4u.Engine(make_star(num_hosts=2))

        def clean(actor):
            yield actor.sleep_for(0.1)

        def doomed(actor):
            yield actor.execute(1e12)

        a = engine.add_actor("clean", "leaf-0", clean)
        b = engine.add_actor("doomed", "leaf-1", doomed)
        engine.timers.schedule(0.5, engine.host("leaf-1").turn_off)
        engine.run()
        seen = []
        a.on_exit(lambda failed: seen.append(("clean", failed)))
        b.on_exit(lambda failed: seen.append(("doomed", failed)))
        assert seen == [("clean", False), ("doomed", True)]

    def test_auto_restart_reboots_worker_on_restore(self):
        engine = s4u.Engine(make_star(num_hosts=2))
        starts, flips = [], []
        engine.on_host_state_change(
            lambda host, is_on: flips.append((host.name, is_on, engine.now)))

        def worker(actor):
            starts.append(engine.now)
            yield actor.execute(1e9)        # 1 s alone on a 1e9 host
            starts.append(("done", engine.now))

        def clock(actor):
            yield actor.sleep_for(3.0)

        engine.add_actor("w", "leaf-0", worker, auto_restart=True)
        engine.add_actor("clock", "leaf-1", clock)
        host = engine.host("leaf-0")
        engine.timers.schedule(0.25, host.turn_off)
        engine.timers.schedule(0.75, host.turn_on)
        engine.run()
        assert starts == [0.0, 0.75, ("done", 1.75)]
        assert flips == [("leaf-0", False, 0.25), ("leaf-0", True, 0.75)]
        assert engine.restart_count == 1

    def test_normal_end_is_not_restarted(self):
        engine = s4u.Engine(make_star(num_hosts=2))
        runs = []

        def worker(actor):
            runs.append(engine.now)
            yield actor.sleep_for(0.1)

        def clock(actor):
            yield actor.sleep_for(2.0)

        engine.add_actor("w", "leaf-0", worker, auto_restart=True)
        engine.add_actor("clock", "leaf-1", clock)
        host = engine.host("leaf-0")
        # The worker already finished when the host churns at t=1.
        engine.timers.schedule(1.0, host.turn_off)
        engine.timers.schedule(1.5, host.turn_on)
        engine.run()
        assert runs == [0.0]
        assert engine.restart_count == 0


class TestFailureEdgeCases:
    def test_peer_host_dies_before_rendezvous_matches(self):
        """A pending recv dies with its host; the late sender times out."""
        engine = s4u.Engine(two_host_platform())
        outcome = {}

        def receiver(actor):
            # Posts the recv, then the host dies before any sender shows up.
            yield engine.mailbox("m").get()

        def sender(actor):
            yield actor.sleep_for(0.5)     # by now bob is gone
            try:
                yield engine.mailbox("m").put("x", size=1e3, timeout=0.5)
            except SimTimeoutError:
                outcome["send"] = engine.now

        engine.add_actor("r", "bob", receiver)
        engine.add_actor("s", "alice", sender)
        engine.timers.schedule(0.25, engine.host("bob").turn_off)
        engine.run()
        assert outcome == {"send": 1.0}
        # The orphaned recv was withdrawn, not left dangling on the mailbox.
        assert engine.mailbox("m").empty

    def test_rendezvous_matched_over_broken_route_fails_both_sides(self):
        """A comm matched while its route link is down fails at match time.

        Regression: the model fails such an action synchronously, so it
        never surfaces through a step result — the engine must report it
        from ``_start_comm`` (and wake the sync caller that was about to
        become a waiter) or both peers deadlock.
        """
        engine = s4u.Engine(two_host_platform())
        outcome = {}

        def receiver(actor):
            try:
                yield engine.mailbox("m").get()    # posted before the cut
            except TransferFailureError:
                outcome["recv"] = engine.now

        def sender(actor):
            yield actor.sleep_for(0.5)             # wire died at t=0.25
            try:
                yield engine.mailbox("m").put("x", size=1e3)
            except TransferFailureError:
                outcome["send"] = engine.now

        engine.add_actor("r", "bob", receiver)
        engine.add_actor("s", "alice", sender)
        engine.timers.schedule(0.25, engine.link_by_name("wire").turn_off)
        engine.run()
        assert outcome == {"recv": 0.5, "send": 0.5}

    def test_async_rendezvous_over_broken_route_fails(self):
        """Same as above through put_async/wait and ActivitySet."""
        engine = s4u.Engine(two_host_platform())
        outcome = {}

        def receiver(actor):
            try:
                yield engine.mailbox("m").get()
            except TransferFailureError:
                outcome["recv"] = engine.now

        def sender(actor):
            yield actor.sleep_for(0.5)
            comm = yield engine.mailbox("m").put_async("x", size=1e3)
            assert comm.state is ActivityState.FAILED
            try:
                yield comm.wait()
            except TransferFailureError:
                outcome["send"] = engine.now

        engine.add_actor("r", "bob", receiver)
        engine.add_actor("s", "alice", sender)
        engine.timers.schedule(0.25, engine.link_by_name("wire").turn_off)
        engine.run()
        assert outcome == {"recv": 0.5, "send": 0.5}

    def test_exec_on_host_that_dies_and_restores(self):
        """A remote exec fails at the failure date and succeeds after."""
        engine = s4u.Engine(make_star(num_hosts=2, host_speed=1e9))
        log = []

        def runner(actor):
            remote = engine.host("leaf-1")
            try:
                yield actor.execute(2e9, host=remote)   # needs 2 s
            except HostFailureError:
                log.append(("failed", engine.now))
            yield actor.sleep_until(1.5)                # leaf-1 back at 1.0
            yield actor.execute(1e9, host=remote)
            log.append(("done", engine.now))

        engine.add_actor("runner", "leaf-0", runner)
        host = engine.host("leaf-1")
        engine.timers.schedule(0.5, host.turn_off)
        engine.timers.schedule(1.0, host.turn_on)
        engine.run()
        assert log == [("failed", 0.5), ("done", 2.5)]

    def test_wait_any_returns_failed_activity(self):
        """wait_any surfaces the failure and still reaps the member."""
        engine = s4u.Engine(two_host_platform())
        outcome = {}

        def receiver(actor):
            yield engine.mailbox("m").get()

        def sender(actor):
            comm = yield engine.mailbox("m").put_async("x", size=1e9)
            snooze = yield actor.sleep_async(30.0)
            pending = ActivitySet([comm, snooze])
            try:
                yield pending.wait_any()
            except TransferFailureError:
                outcome["date"] = engine.now
                outcome["comm_state"] = comm.state
                outcome["reaped"] = comm not in pending
                outcome["left"] = pending.size()
            snooze.cancel()

        engine.add_actor("r", "bob", receiver)
        engine.add_actor("s", "alice", sender)
        engine.timers.schedule(0.25, engine.host("bob").turn_off)
        engine.run()
        assert outcome == {"date": 0.25,
                           "comm_state": ActivityState.FAILED,
                           "reaped": True, "left": 1}

    def _churn_dates(self, use_trace):
        """Worker completion dates under off/on churn of its host.

        ``use_trace=True`` drives the churn with a periodic state trace
        attached to the platform host; ``use_trace=False`` replays the
        very same pulses as explicit ``turn_off``/``turn_on`` calls
        (through FailureInjector.schedule_trace).
        """
        trace = Trace([(0.3, 0.0), (0.5, 1.0)], period=0.8, name="churn")
        horizon = 2.4
        platform = Platform("churny")
        platform.add_host("victim", 1e9,
                          state_trace=trace if use_trace else None)
        platform.add_host("safe", 1e9)
        platform.add_link("wire", 1e8, 1e-4)
        platform.connect("victim", "safe", "wire")

        engine = s4u.Engine(platform)
        dates = []

        def worker(actor):
            while True:
                yield actor.execute(1e8)    # 0.1 s alone
                dates.append(engine.now)

        def clock(actor):
            yield actor.sleep_for(horizon)

        engine.add_actor("w", "victim", worker, daemon=True,
                         auto_restart=True)
        engine.add_actor("clock", "safe", clock)
        if not use_trace:
            injector = FailureInjector(engine, until=horizon)
            injector.schedule_trace("victim", trace)
        engine.run()
        return dates

    def test_state_trace_equals_explicit_turn_off_on(self):
        """Periodic trace churn and explicit calls give identical dates."""
        trace_dates = self._churn_dates(use_trace=True)
        explicit_dates = self._churn_dates(use_trace=False)
        assert trace_dates, "the churned worker never completed any exec"
        assert trace_dates == explicit_dates


class TestFailureInjector:
    def test_requires_a_stop_bound(self):
        engine = s4u.Engine(make_star(num_hosts=2))
        with pytest.raises(ValueError):
            FailureInjector(engine, hosts=["leaf-0"])

    def test_requires_targets_to_start(self):
        engine = s4u.Engine(make_star(num_hosts=2))
        with pytest.raises(ValueError):
            FailureInjector(engine, max_failures=1).start()

    def test_schedule_trace_mid_run_is_relative_to_now(self):
        """Trace dates are offsets from the call date, not absolute."""
        engine = s4u.Engine(make_star(num_hosts=2))
        flips = []
        engine.on_host_state_change(
            lambda host, is_on: flips.append((is_on, engine.now)))
        injector = FailureInjector(engine, until=10.0)
        trace = Trace([(0.3, 0.0), (0.5, 1.0)], name="pulse")

        def clock(actor):
            yield actor.sleep_for(1.0)   # replay armed at t=1.0, not t=0
            injector.schedule_trace("leaf-0", trace)
            yield actor.sleep_for(2.0)

        engine.add_actor("clock", "center", clock)
        engine.run()
        assert flips == [(False, 1.3), (True, 1.5)]

    def test_respects_max_failures(self):
        engine = s4u.Engine(make_star(num_hosts=4))

        def clock(actor):
            yield actor.sleep_for(50.0)

        engine.add_actor("clock", "center", clock)
        injector = FailureInjector(
            engine, seed=1, hosts=[f"leaf-{i}" for i in range(4)],
            mtbf=0.5, mean_downtime=0.2, max_failures=7)
        injector.start()
        engine.run()
        assert injector.failures == 7
        # Every injected failure got its restore (the run outlived them).
        assert injector.restores == 7
        assert all(engine.host(f"leaf-{i}").is_on for i in range(4))


class TestTimeoutFailureRaces:
    """Timeout timers racing failures/completions at the same date.

    The loop's contract: SURF completions are processed before timers at
    each date, and same-date timers fire in arm order with the loser's
    entry cancelled by ``_clear_wait`` — so exactly one outcome reaches
    the waiting actor, and no timer entry survives the run.
    """

    def test_timeout_vs_link_failure_same_date_one_outcome(self):
        def run_once():
            outcomes = []
            engine = s4u.Engine(two_host_platform())

            def sender(actor):
                try:
                    # 1e9 B over 1e7 B/s: nominally 100 s in flight.
                    yield engine.mailbox("race").put("x", size=1e9)
                except TransferFailureError:
                    outcomes.append(("sender", "failed", actor.now))

            def receiver(actor):
                try:
                    yield engine.mailbox("race").get(timeout=2.0)
                except SimTimeoutError:
                    outcomes.append(("receiver", "timeout", actor.now))
                except TransferFailureError:
                    outcomes.append(("receiver", "failed", actor.now))

            def chaos(actor):
                yield actor.sleep_until(2.0)   # same date as the timeout
                engine.link_by_name("wire").turn_off()
                engine.link_by_name("wire").turn_on()

            engine.add_actor("sender", "alice", sender)
            engine.add_actor("receiver", "bob", receiver)
            engine.add_actor("chaos", "alice", chaos)
            engine.run()
            return outcomes, engine

        outcomes, engine = run_once()
        by_actor = {}
        for who, what, date in outcomes:
            assert date == pytest.approx(2.0)
            by_actor.setdefault(who, []).append(what)
        # Exactly one outcome delivered per actor, never two.
        assert len(by_actor["receiver"]) == 1
        assert len(by_actor["sender"]) == 1
        # No pending timers survive; compacting leaks nothing afterwards.
        assert len(engine.timers) == 0
        engine.timers.compact()
        assert len(engine.timers) == 0
        # And the race resolves the same way every run.
        assert run_once()[0] == outcomes

    def test_completion_at_exact_timeout_date_wins(self):
        outcome = {}
        engine = s4u.Engine(two_host_platform())

        def computer(actor):
            activity = yield actor.exec_async(2e9)  # exactly 2 s at 1e9 f/s
            yield activity.wait(timeout=2.0)        # timer lands at t=2.0
            outcome["done"] = actor.now

        engine.add_actor("computer", "alice", computer)
        engine.run()
        # Completions are processed before timers: the result, not the
        # timeout, is delivered at t=2.0.
        assert outcome["done"] == pytest.approx(2.0)
        assert len(engine.timers) == 0

    def test_wait_any_completion_at_exact_timeout_date_wins(self):
        from repro.s4u import ActivitySet

        outcome = {}
        engine = s4u.Engine(two_host_platform())

        def computer(actor):
            # On separate hosts so neither exec shares a CPU: the fast
            # one completes at exactly the wait_any timeout date.
            fast = yield actor.exec_async(2e9)
            slow = yield actor.exec_async(8e9, host=engine.host("bob"))
            bag = ActivitySet([fast, slow])
            done = yield bag.wait_any(timeout=2.0)
            outcome["first"] = (actor.now, done is not None)
            try:
                yield bag.wait_any(timeout=0.5)
            except SimTimeoutError:
                outcome["second"] = actor.now

        engine.add_actor("computer", "alice", computer)
        engine.run()
        assert outcome["first"] == (pytest.approx(2.0), True)
        assert outcome["second"] == pytest.approx(2.5)

    def test_host_death_cancels_armed_timeout(self):
        engine = s4u.Engine(two_host_platform())

        def receiver(actor):
            yield engine.mailbox("never").get(timeout=5.0)

        def chaos(actor):
            yield actor.sleep_until(1.0)
            engine.fail_host(engine.host("bob"))

        engine.add_actor("receiver", "bob", receiver)
        engine.add_actor("chaos", "alice", chaos)
        final = engine.run()
        # The killed receiver's 5 s timer must not hold the clock open...
        assert final == pytest.approx(1.0)
        assert len(engine.timers) == 0
        # ...and its cancelled entry is compactable garbage, not state.
        assert engine.timers.compact() >= 1
        assert len(engine.timers) == 0
